"""Generate ``tests/fixtures/riverton.geojson`` — the bundled real-map fixture.

Riverton is a fictional city, but the *file* is shaped exactly like a real
OpenStreetMap export: a WGS84 ``FeatureCollection`` of ``LineString``
features with ``highway`` classes, occasional ``maxspeed`` tags (km/h and
mph spellings), interior geometry points, endpoints that almost-but-not-
quite coincide (sub-metre GPS noise between adjacent features), and a few
disconnected stub roads — every messy property the ingestion pipeline has
to normalise. Generating it keeps the repo free of third-party map data
and licensing while staying deterministic: re-running this script
reproduces the committed file byte for byte.

Usage::

    python tools/make_riverton_fixture.py [output-path]
"""

from __future__ import annotations

import json
import math
import random
import sys
from pathlib import Path

SEED = 20180703
GRID = 22                    # 22x22 intersections
BLOCK_METRES = 150.0
CENTER_LON, CENTER_LAT = -71.5482, 43.2044   # fictional Riverton, NH-ish
EDGE_DROPOUT = 0.06          # fraction of grid edges removed (dead ends, river)
NOISE_METRES = 0.35          # sub-snap endpoint noise between features
JITTER_METRES = 18.0         # intersection placement jitter

M_PER_DEG_LAT = 111_320.0


def _deg(dx_metres: float, dy_metres: float) -> tuple[float, float]:
    """Convert metre offsets about the centre into (dlon, dlat) degrees."""
    dlat = dy_metres / M_PER_DEG_LAT
    dlon = dx_metres / (M_PER_DEG_LAT * math.cos(math.radians(CENTER_LAT)))
    return dlon, dlat


def _coord(lon: float, lat: float) -> list[float]:
    """Round to ~1 cm so the committed file is stable and compact."""
    return [round(lon, 7), round(lat, 7)]


def main(output: Path) -> None:
    rng = random.Random(SEED)
    half = (GRID - 1) * BLOCK_METRES / 2.0

    # jittered intersection positions in metres about the centre
    nodes: dict[tuple[int, int], tuple[float, float]] = {}
    for row in range(GRID):
        for col in range(GRID):
            x = col * BLOCK_METRES - half + rng.uniform(-JITTER_METRES, JITTER_METRES)
            y = row * BLOCK_METRES - half + rng.uniform(-JITTER_METRES, JITTER_METRES)
            nodes[(row, col)] = (x, y)

    def road_class(row: int, col: int, horizontal: bool) -> str:
        line = row if horizontal else col
        if line % 10 == 5:
            return "primary"
        if line % 5 == 0:
            return "secondary"
        if line % 3 == 0:
            return "tertiary"
        return "residential"

    def lonlat(xy: tuple[float, float], noisy: bool) -> list[float]:
        x, y = xy
        if noisy:
            x += rng.uniform(-NOISE_METRES, NOISE_METRES)
            y += rng.uniform(-NOISE_METRES, NOISE_METRES)
        dlon, dlat = _deg(x, y)
        return _coord(CENTER_LON + dlon, CENTER_LAT + dlat)

    features: list[dict] = []

    def emit(a: tuple[int, int], b: tuple[int, int], klass: str) -> None:
        start, end = nodes[a], nodes[b]
        # interior point: real exports sample street geometry, not just ends
        mid = (
            (start[0] + end[0]) / 2.0 + rng.uniform(-6.0, 6.0),
            (start[1] + end[1]) / 2.0 + rng.uniform(-6.0, 6.0),
        )
        coordinates = [
            lonlat(start, noisy=rng.random() < 0.7),
            lonlat(mid, noisy=False),
            lonlat(end, noisy=rng.random() < 0.7),
        ]
        properties: dict[str, object] = {"highway": klass}
        roll = rng.random()
        if roll < 0.08:
            properties["maxspeed"] = "30 mph"
        elif roll < 0.16:
            properties["maxspeed"] = str(rng.choice([30, 40, 50]))
        elif roll < 0.20:
            properties["maxspeed"] = f"{rng.choice([40, 60])} km/h"
        features.append(
            {
                "type": "Feature",
                "geometry": {"type": "LineString", "coordinates": coordinates},
                "properties": properties,
            }
        )

    for row in range(GRID):
        for col in range(GRID):
            if col + 1 < GRID and rng.random() >= EDGE_DROPOUT:
                emit((row, col), (row, col + 1), road_class(row, col, horizontal=True))
            if row + 1 < GRID and rng.random() >= EDGE_DROPOUT:
                emit((row, col), (row + 1, col), road_class(row, col, horizontal=False))

    # disconnected stubs well outside the main component (service roads of a
    # neighbouring village caught by the extract's bounding box)
    for stub in range(3):
        ox = half + 2_000.0 + 400.0 * stub
        oy = -half - 1_500.0 - 300.0 * stub
        points = [(ox, oy)]
        for _ in range(3):
            last = points[-1]
            points.append((last[0] + rng.uniform(40, 90), last[1] + rng.uniform(-30, 60)))
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    "coordinates": [lonlat(p, noisy=False) for p in points],
                },
                "properties": {"highway": "service"},
            }
        )

    # one non-road feature (a point of interest) the loader must skip
    features.append(
        {
            "type": "Feature",
            "geometry": {"type": "Point", "coordinates": _coord(CENTER_LON, CENTER_LAT)},
            "properties": {"amenity": "fountain", "name": "Riverton Commons"},
        }
    )

    collection = {
        "type": "FeatureCollection",
        "name": "riverton",
        "features": features,
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(
        json.dumps(collection, separators=(",", ":"), sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"written: {output} ({len(features)} features)")


if __name__ == "__main__":
    target = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(__file__).resolve().parents[1] / "tests" / "fixtures" / "riverton.geojson"
    )
    main(target)
