"""Tests for the baseline dispatchers: tshare, kinetic, batch and nearest."""

import pytest

from repro.core.insertion.basic import BasicInsertion
from repro.dispatch import Batch, DispatcherConfig, Kinetic, NearestWorker, TShare
from repro.index.tshare_grid import TShareGridIndex
from repro.simulation.fleet import FleetState
from repro.simulation.simulator import run_simulation
from tests.conftest import make_request


class TestTShare:
    def test_builds_tshare_grid(self, small_instance, fleet):
        dispatcher = TShare(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        assert isinstance(dispatcher.grid, TShareGridIndex)

    def test_serves_nearby_request(self, small_instance, fleet):
        dispatcher = TShare(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        request = small_instance.requests[0]
        outcome = dispatcher.dispatch(request, now=request.release_time)
        assert outcome.served
        assert fleet.state_of(outcome.worker_id).route.is_feasible(small_instance.oracle)

    def test_rejects_request_with_expired_pickup_window(self, small_instance, fleet):
        dispatcher = TShare(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        request = make_request(99, 0, 63, release=0.0, deadline=400.0, penalty=10.0)
        # dispatch long after release: the pickup budget is gone
        outcome = dispatcher.dispatch(request, now=390.0)
        assert not outcome.served

    def test_search_is_single_sided(self, small_instance, fleet):
        """tshare may consider fewer candidates than the admissible grid filter."""
        dispatcher = TShare(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        request = small_instance.requests[0]
        outcome = dispatcher.dispatch(request, now=request.release_time)
        assert outcome.candidates_considered <= len(small_instance.workers)

    def test_full_simulation_runs(self, small_instance):
        result = run_simulation(small_instance, TShare(DispatcherConfig(grid_cell_metres=500.0)))
        assert result.total_requests == len(small_instance.requests)
        assert result.deadline_violations == 0


class TestKinetic:
    def test_serves_and_reorders(self, small_instance, fleet):
        dispatcher = Kinetic(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        for request in small_instance.requests[:3]:
            fleet.advance_all(request.release_time)
            outcome = dispatcher.dispatch(request, now=request.release_time)
            assert outcome.served
        for state in fleet:
            assert state.route.is_feasible(small_instance.oracle)

    def test_matches_basic_insertion_on_first_request(self, small_instance, fleet):
        """With an empty fleet the kinetic search degenerates to plain insertion,
        so the increased cost must match the basic-insertion optimum."""
        dispatcher = Kinetic(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        request = small_instance.requests[0]
        oracle = small_instance.oracle
        best = min(
            BasicInsertion().best_insertion(state.route, request, oracle).delta for state in fleet
        )
        outcome = dispatcher.dispatch(request, now=request.release_time)
        assert outcome.increased_cost == pytest.approx(best, abs=1e-6)

    def test_kinetic_can_beat_insertion_by_reordering(self, line_oracle, line_network):
        """Kinetic may reorder existing stops, something insertion cannot do."""
        from repro.core.instance import URPSMInstance
        from repro.core.objective import ObjectiveConfig, PenaltyPolicy
        from tests.conftest import make_worker

        # Existing plan visits 5 then 1; a new request 2 -> 3 is much cheaper if
        # the worker may serve 1 before 5 again; insertion keeps the 5-before-1
        # order while kinetic is free to reorder.
        worker = make_worker(0, 0, capacity=4)
        objective = ObjectiveConfig(alpha=1.0, penalty_policy=PenaltyPolicy.FIXED, penalty_value=1e6)
        instance = URPSMInstance(
            network=line_network,
            oracle=line_oracle,
            workers=[worker],
            requests=[
                make_request(0, 5, 1, release=0.0, deadline=10_000.0),
                make_request(1, 1, 5, release=0.0, deadline=10_000.0),
            ],
            objective=objective,
            name="reorder",
        )
        fleet = FleetState([worker], line_oracle)
        dispatcher = Kinetic(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(instance, fleet)
        for request in instance.requests:
            outcome = dispatcher.dispatch(request, now=0.0)
            assert outcome.served
        assert fleet.state_of(0).route.is_feasible(line_oracle)

    def test_node_budget_limits_search(self, small_instance, fleet):
        dispatcher = Kinetic(DispatcherConfig(grid_cell_metres=500.0), node_budget=1)
        dispatcher.setup(small_instance, fleet)
        request = small_instance.requests[0]
        outcome = dispatcher.dispatch(request, now=request.release_time)
        # with an absurdly small budget the dispatcher may fail to serve, but it
        # must not crash and must leave routes feasible
        for state in fleet:
            assert state.route.is_feasible(small_instance.oracle)
        assert outcome.request is request


class TestBatch:
    def test_defers_until_flush(self, small_instance, fleet):
        dispatcher = Batch(DispatcherConfig(grid_cell_metres=500.0, batch_interval=6.0))
        dispatcher.setup(small_instance, fleet)
        request = small_instance.requests[0]
        assert dispatcher.dispatch(request, now=0.0) is None
        assert dispatcher.next_flush_time() == pytest.approx(6.0)
        outcomes = dispatcher.flush(now=6.0)
        assert len(outcomes) == 1
        assert outcomes[0].served
        assert dispatcher.next_flush_time() is None

    def test_groups_by_origin_cell(self, small_instance, fleet):
        dispatcher = Batch(DispatcherConfig(grid_cell_metres=500.0, batch_interval=6.0))
        dispatcher.setup(small_instance, fleet)
        for request in small_instance.requests[:4]:
            dispatcher.dispatch(request, now=0.0)
        groups = dispatcher._grouped_requests(dispatcher.pending_requests)
        assert sum(len(group) for group in groups) == 4
        assert all(len(group) >= 1 for group in groups)
        # groups are sorted by size, largest first
        sizes = [len(group) for group in groups]
        assert sizes == sorted(sizes, reverse=True)

    def test_flush_rejects_expired_requests(self, small_instance, fleet):
        dispatcher = Batch(DispatcherConfig(grid_cell_metres=500.0, batch_interval=6.0))
        dispatcher.setup(small_instance, fleet)
        doomed = make_request(99, 3, 40, release=0.0, deadline=2.0, penalty=10.0)
        dispatcher.dispatch(doomed, now=0.0)
        outcomes = dispatcher.flush(now=6.0)
        assert len(outcomes) == 1
        assert not outcomes[0].served

    def test_full_simulation_resolves_every_request(self, small_instance):
        result = run_simulation(
            small_instance, Batch(DispatcherConfig(grid_cell_metres=500.0, batch_interval=6.0))
        )
        assert result.total_requests == len(small_instance.requests)
        assert result.served_requests + result.rejected_requests == result.total_requests


class TestNearest:
    def test_assigns_closest_feasible_worker(self, small_instance, fleet):
        dispatcher = NearestWorker(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        request = small_instance.requests[0]
        outcome = dispatcher.dispatch(request, now=request.release_time)
        assert outcome.served
        network = small_instance.network
        chosen = fleet.state_of(outcome.worker_id)
        # no other *idle* worker is strictly closer in Euclidean distance
        # (workers are all idle before the first request)
        chosen_distance = network.euclidean(small_instance.workers[outcome.worker_id].initial_location,
                                            request.origin)
        for worker in small_instance.workers:
            other_distance = network.euclidean(worker.initial_location, request.origin)
            assert chosen_distance <= other_distance + 1e-6 or worker.id != outcome.worker_id

    def test_full_simulation_runs(self, small_instance):
        result = run_simulation(small_instance, NearestWorker(DispatcherConfig(grid_cell_metres=500.0)))
        assert result.total_requests == len(small_instance.requests)
