"""DispatcherSpec + discovery: the structured dispatcher selection."""

import pytest

from repro.dispatch import (
    ALGORITHMS,
    Batch,
    DispatcherConfig,
    DispatcherSpec,
    PruneGreedyDP,
    list_dispatchers,
    make_dispatcher,
    suggest_dispatchers,
)
from repro.exceptions import ConfigurationError
from repro.sharding.dispatcher import ShardedDispatcher


class TestDiscovery:
    def test_list_dispatchers_matches_the_registry(self):
        assert list_dispatchers() == sorted(ALGORITHMS)

    def test_list_dispatchers_includes_sharded_variants_on_request(self):
        names = list_dispatchers(include_sharded=True)
        assert "pruneGreedyDP" in names
        assert "sharded:pruneGreedyDP" in names

    def test_suggestions_for_typos(self):
        assert "pruneGreedyDP" in suggest_dispatchers("pruneGreedy")
        assert "tshare" in suggest_dispatchers("tshar")


class TestParse:
    def test_plain_name(self):
        spec = DispatcherSpec.parse("batch")
        assert spec.algorithm == "batch"
        assert not spec.is_sharded
        assert spec.name == "batch"

    def test_sharded_prefix(self):
        spec = DispatcherSpec.parse("sharded:tshare")
        assert spec.algorithm == "tshare"
        assert spec.is_sharded
        assert spec.name == "sharded:tshare"

    def test_bare_sharded_defaults_to_prune_greedy_dp(self):
        spec = DispatcherSpec.parse("sharded")
        assert spec.algorithm == "pruneGreedyDP"
        assert spec.is_sharded

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            DispatcherSpec.parse("pruneGreedy")

    def test_unknown_sharded_inner_raises(self):
        with pytest.raises(ConfigurationError, match="sharded inner"):
            DispatcherSpec.parse("sharded:bogus")

    def test_parse_accepts_knob_overrides(self):
        spec = DispatcherSpec.parse("batch", batch_interval=42.0)
        assert spec.batch_interval == 42.0

    def test_parse_ors_a_sharded_override_with_the_prefix(self):
        assert DispatcherSpec.parse("sharded:batch", sharded=True).is_sharded
        assert DispatcherSpec.parse("batch", sharded=True).is_sharded
        assert not DispatcherSpec.parse("batch", sharded=False).is_sharded

    def test_parse_rejects_an_algorithm_override(self):
        with pytest.raises(ConfigurationError, match="name argument"):
            DispatcherSpec.parse("batch", algorithm="nearest")


class TestValidation:
    def test_num_shards_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="num_shards"):
            DispatcherSpec(num_shards=0).validate()

    def test_unknown_strategy_only_checked_when_sharded(self):
        # unsharded specs ignore the strategy field entirely
        DispatcherSpec(shard_strategy="bogus").validate()
        with pytest.raises(ConfigurationError, match="shard strategy"):
            DispatcherSpec(shard_strategy="bogus", num_shards=2).validate()

    def test_negative_grid_cell_rejected(self):
        with pytest.raises(ConfigurationError, match="grid_cell_metres"):
            DispatcherSpec(grid_cell_metres=-1.0).validate()


class TestBuild:
    def test_builds_the_registry_class(self):
        assert isinstance(DispatcherSpec.parse("pruneGreedyDP").build(), PruneGreedyDP)
        assert isinstance(DispatcherSpec.parse("batch").build(), Batch)

    def test_builds_the_sharded_wrapper(self):
        dispatcher = DispatcherSpec.parse("sharded:batch", num_shards=3).build()
        assert isinstance(dispatcher, ShardedDispatcher)
        assert dispatcher.name == "sharded:batch"
        assert dispatcher.num_shards == 3

    def test_num_shards_above_one_implies_sharding(self):
        dispatcher = DispatcherSpec(algorithm="nearest", num_shards=2).build()
        assert isinstance(dispatcher, ShardedDispatcher)

    def test_spec_knobs_reach_the_config(self):
        dispatcher = DispatcherSpec.parse(
            "kinetic", kinetic_node_budget=123, grid_cell_metres=750.0
        ).build()
        assert dispatcher.config.kinetic_node_budget == 123
        assert dispatcher.config.grid_cell_metres == 750.0

    def test_default_grid_cell_fills_unpinned_specs(self):
        dispatcher = DispatcherSpec.parse("nearest").build(default_grid_cell_metres=1234.0)
        assert dispatcher.config.grid_cell_metres == 1234.0

    def test_explicit_config_wins(self):
        config = DispatcherConfig(grid_cell_metres=999.0)
        dispatcher = DispatcherSpec.parse("nearest").build(config=config)
        assert dispatcher.config is config


class TestConfigRoundTrip:
    def test_from_config_to_config_round_trips(self):
        config = DispatcherConfig(
            grid_cell_metres=1500.0,
            reject_unprofitable=True,
            batch_interval=9.0,
            kinetic_node_budget=77,
            num_shards=2,
            shard_strategy="kd",
            shard_escalate_k=5,
        )
        spec = DispatcherSpec.from_config(config, algorithm="tshare")
        assert spec.to_config() == config

    def test_with_algorithm_keeps_the_knobs(self):
        spec = DispatcherSpec.parse("batch", batch_interval=17.0, num_shards=2)
        renamed = spec.with_algorithm("sharded:nearest")
        assert renamed.algorithm == "nearest"
        assert renamed.is_sharded
        assert renamed.batch_interval == 17.0
        assert renamed.num_shards == 2


class TestMakeDispatcherCompat:
    def test_unknown_name_still_raises_key_error(self):
        with pytest.raises(KeyError, match="unknown dispatcher"):
            make_dispatcher("does-not-exist")

    def test_key_error_message_carries_suggestions(self):
        with pytest.raises(KeyError, match="did you mean"):
            make_dispatcher("pruneGreedy")
