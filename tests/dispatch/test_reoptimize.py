"""Tests for the relocate re-optimisation extension."""

import pytest

from repro.core.route import empty_route
from repro.core.types import StopKind
from repro.dispatch import DispatcherConfig, PruneGreedyDP, PruneGreedyDPReopt
from repro.dispatch.reoptimize import reinsertion_improvement, remove_request
from repro.simulation.fleet import FleetState
from repro.simulation.simulator import run_simulation
from tests.conftest import make_request, make_worker, route_with_requests


class TestRemoveRequest:
    def test_removes_both_stops(self, line_oracle):
        worker = make_worker(0, 0)
        first = make_request(1, origin=1, destination=3)
        second = make_request(2, origin=2, destination=4)
        route = route_with_requests(worker, line_oracle, [first, second])
        stripped = remove_request(route, 1, line_oracle)
        assert stripped is not None
        assert {stop.request.id for stop in stripped.stops} == {2}
        assert stripped.is_feasible(line_oracle)

    def test_missing_request_returns_none(self, line_oracle):
        worker = make_worker(0, 0)
        route = route_with_requests(worker, line_oracle, [make_request(1, origin=1, destination=3)])
        assert remove_request(route, 99, line_oracle) is None

    def test_onboard_request_is_not_removable(self, line_oracle):
        from repro.core.route import Route
        from repro.core.types import dropoff_stop

        worker = make_worker(0, 2)
        request = make_request(1, origin=0, destination=4)
        route = Route(worker=worker, origin=2, start_time=10.0, stops=[dropoff_stop(request)])
        route.refresh(line_oracle)
        assert remove_request(route, 1, line_oracle) is None

    def test_original_route_unchanged(self, line_oracle):
        worker = make_worker(0, 0)
        request = make_request(1, origin=1, destination=3)
        route = route_with_requests(worker, line_oracle, [request])
        remove_request(route, 1, line_oracle)
        assert len(route.stops) == 2


class TestReinsertionImprovement:
    def test_moves_request_to_obviously_better_worker(self, line_oracle):
        """A request assigned to a far worker moves to an idle worker sitting on it."""
        far_worker = make_worker(0, 0, capacity=4)
        near_worker = make_worker(1, 4, capacity=4)
        fleet = FleetState([far_worker, near_worker], line_oracle)
        request = make_request(7, origin=4, destination=5, deadline=10_000.0)
        # deliberately assign to the far worker
        far_state = fleet.state_of(0)
        far_state.adopt_route(
            route_with_requests(far_worker, line_oracle, [request]), request=request
        )

        before = sum(state.route.planned_cost(line_oracle) for state in fleet)
        report = reinsertion_improvement(fleet, line_oracle)
        after = sum(state.route.planned_cost(line_oracle) for state in fleet)

        assert report.moves == 1
        assert report.cost_reduction == pytest.approx(before - after, abs=1e-6)
        assert after < before
        assert fleet.state_of(0).route.is_empty
        assert {stop.request.id for stop in fleet.state_of(1).route.stops} == {7}
        # the service record follows the request to the new worker
        assert 7 in fleet.state_of(1).assigned_requests
        assert 7 not in fleet.state_of(0).assigned_requests

    def test_no_move_when_already_optimal(self, line_oracle):
        worker_a = make_worker(0, 0, capacity=4)
        worker_b = make_worker(1, 5, capacity=4)
        fleet = FleetState([worker_a, worker_b], line_oracle)
        request = make_request(3, origin=0, destination=1, deadline=10_000.0)
        state = fleet.state_of(0)
        state.adopt_route(route_with_requests(worker_a, line_oracle, [request]), request=request)
        report = reinsertion_improvement(fleet, line_oracle)
        assert report.moves == 0
        assert report.cost_reduction == 0.0

    def test_routes_stay_feasible_after_pass(self, small_instance, fleet):
        dispatcher = PruneGreedyDP(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        for request in small_instance.requests:
            fleet.advance_all(request.release_time)
            dispatcher.dispatch(request, request.release_time)
        reinsertion_improvement(fleet, small_instance.oracle)
        for state in fleet:
            assert state.route.is_feasible(small_instance.oracle)

    def test_max_moves_bounds_the_pass(self, line_oracle):
        workers = [make_worker(i, 0, capacity=4) for i in range(2)]
        fleet = FleetState(workers, line_oracle)
        state = fleet.state_of(0)
        requests = [make_request(i, origin=4, destination=5, deadline=10_000.0) for i in range(3)]
        route = empty_route(workers[0])
        route.refresh(line_oracle)
        for request in requests:
            route = route.with_insertion(request, route.num_stops, route.num_stops, line_oracle)
        state.route = route
        report = reinsertion_improvement(fleet, line_oracle, max_moves=1)
        assert report.moves <= 1


class TestReoptimizingDispatcher:
    def test_registered_and_runs_end_to_end(self, small_instance):
        result = run_simulation(
            small_instance,
            PruneGreedyDPReopt(DispatcherConfig(grid_cell_metres=500.0), reoptimize_every=2),
        )
        assert result.total_requests == len(small_instance.requests)
        assert result.deadline_violations == 0

    def test_never_worse_than_plain_prune_greedy_dp(self, small_instance):
        plain = run_simulation(
            small_instance, PruneGreedyDP(DispatcherConfig(grid_cell_metres=500.0))
        )
        reopt = run_simulation(
            small_instance,
            PruneGreedyDPReopt(DispatcherConfig(grid_cell_metres=500.0), reoptimize_every=2),
        )
        assert reopt.served_requests >= plain.served_requests - 1
        assert reopt.unified_cost <= plain.unified_cost * 1.05

    def test_zero_interval_disables_reoptimisation(self, small_instance):
        dispatcher = PruneGreedyDPReopt(
            DispatcherConfig(grid_cell_metres=500.0), reoptimize_every=0
        )
        result = run_simulation(small_instance, dispatcher)
        assert dispatcher.total_moves == 0
        assert result.total_requests == len(small_instance.requests)
