"""The array-native decision phase must be behaviourally invisible.

End-to-end equivalence between the vectorized hot path (batched lower
bounds, argsorted Lemma 8 scan, prefetching linear DP, fleet fast paths) and
the scalar walk it replaces: identical served requests, unified cost and
exact-query counters on full simulations, for both GreedyDP (no pruning) and
pruneGreedyDP (pre-ordered pruning).
"""

import pytest

from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.route import Route
from repro.dispatch import DispatcherConfig, GreedyDP, PruneGreedyDP
from repro.simulation.simulator import Simulator
from repro.workloads.scenarios import (
    ScenarioConfig,
    build_instance,
    build_network,
    make_oracle,
)

_CONFIG = ScenarioConfig(
    city="small-grid", num_workers=20, num_requests=120, seed=2018
)
_NETWORK = build_network(_CONFIG)


def _run(dispatcher_class, vectorized: bool, legacy_fleet: bool = False):
    oracle = make_oracle(_NETWORK, _CONFIG)
    instance = build_instance(_CONFIG, network=_NETWORK, oracle=oracle)
    dispatcher = dispatcher_class(
        DispatcherConfig(grid_cell_metres=_CONFIG.grid_km * 1000.0),
        insertion=LinearDPInsertion(prefetch=vectorized),
        vectorized=vectorized,
    )
    simulator = Simulator(instance, dispatcher)
    if legacy_fleet:
        simulator.fleet.materialise_fast_path = False
    result = simulator.run()
    return result, oracle.counters


@pytest.mark.parametrize(
    "dispatcher_class", [GreedyDP, PruneGreedyDP], ids=["GreedyDP", "pruneGreedyDP"]
)
class TestVectorizedEquivalence:
    def test_vectorized_matches_scalar_end_to_end(self, dispatcher_class):
        scalar_result, scalar_counters = _run(dispatcher_class, vectorized=False)
        vector_result, vector_counters = _run(dispatcher_class, vectorized=True)
        assert vector_result.served_requests == scalar_result.served_requests
        assert vector_result.unified_cost == scalar_result.unified_cost
        assert vector_result.total_penalty == scalar_result.total_penalty
        assert vector_result.decision_rejections == scalar_result.decision_rejections
        assert vector_result.insertions_evaluated == scalar_result.insertions_evaluated
        assert vector_counters.distance_queries == scalar_counters.distance_queries
        assert vector_counters.dijkstra_runs == scalar_counters.dijkstra_runs

    def test_fleet_fast_path_is_behaviour_neutral(self, dispatcher_class):
        fast_result, fast_counters = _run(dispatcher_class, vectorized=True)
        slow_result, slow_counters = _run(
            dispatcher_class, vectorized=True, legacy_fleet=True
        )
        assert fast_result.served_requests == slow_result.served_requests
        assert fast_result.unified_cost == slow_result.unified_cost
        assert fast_counters.distance_queries == slow_counters.distance_queries
        assert fast_counters.dijkstra_runs == slow_counters.dijkstra_runs


class TestLegacyReconstruction:
    def test_full_legacy_toggles_match_array_native(self):
        """The benchmark's pre-PR reconstruction agrees on every compared metric."""
        oracle = make_oracle(_NETWORK, _CONFIG)
        oracle.legacy_reference_mode = True
        instance = build_instance(_CONFIG, network=_NETWORK, oracle=oracle)
        dispatcher = PruneGreedyDP(
            DispatcherConfig(grid_cell_metres=_CONFIG.grid_km * 1000.0),
            insertion=LinearDPInsertion(prefetch=False),
            vectorized=False,
        )
        simulator = Simulator(instance, dispatcher)
        simulator.fleet.materialise_fast_path = False
        Route.legacy_refresh = True
        try:
            legacy_result = simulator.run()
        finally:
            Route.legacy_refresh = False
        legacy_counters = oracle.counters

        vector_result, vector_counters = _run(PruneGreedyDP, vectorized=True)
        assert vector_result.served_requests == legacy_result.served_requests
        assert vector_result.unified_cost == legacy_result.unified_cost
        assert vector_counters.distance_queries == legacy_counters.distance_queries
        assert vector_counters.dijkstra_runs == legacy_counters.dijkstra_runs


class TestCacheStatisticsSurface:
    def test_simulation_result_exposes_cache_statistics(self):
        result, _ = _run(PruneGreedyDP, vectorized=True)
        assert "distance_cache_hit_rate" in result.extra
        assert "path_cache_hits" in result.extra
        row = result.as_row()
        assert "path_cache_hit_rate" in row

    def test_reporting_appends_cache_columns(self):
        from repro.experiments.reporting import format_results

        result, _ = _run(PruneGreedyDP, vectorized=True)
        table = format_results([result])
        assert "distance_cache_hit_rate" in table
