"""Test package."""
