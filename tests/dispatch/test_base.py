"""Tests for the dispatcher base class helpers and the registry."""

import pytest

from repro.dispatch import ALGORITHMS, DispatcherConfig, make_dispatcher
from repro.dispatch.greedy_dp import PruneGreedyDP
from tests.conftest import make_request


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        assert {"pruneGreedyDP", "GreedyDP", "tshare", "kinetic", "batch"} <= set(ALGORITHMS)

    def test_make_dispatcher_builds_named_algorithm(self):
        dispatcher = make_dispatcher("pruneGreedyDP")
        assert isinstance(dispatcher, PruneGreedyDP)
        assert dispatcher.name == "pruneGreedyDP"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown dispatcher"):
            make_dispatcher("does-not-exist")


class TestCandidateFiltering:
    def test_setup_populates_grid(self, small_instance, fleet):
        dispatcher = PruneGreedyDP(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        assert dispatcher.grid is not None
        assert len(dispatcher.grid) == len(small_instance.workers)

    def test_candidate_filter_never_drops_reachable_workers(self, small_instance, fleet):
        """The grid filter is admissible: every worker that could physically reach
        the origin before the deadline must survive the filter."""
        dispatcher = PruneGreedyDP(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        oracle = small_instance.oracle
        request = small_instance.requests[0]
        candidates = set(dispatcher.candidate_worker_ids(request, now=request.release_time))
        for state in fleet:
            reach = oracle.distance(state.position, request.origin)
            if request.release_time + reach <= request.deadline:
                assert state.worker.id in candidates

    def test_expired_request_has_no_candidates(self, small_instance, fleet):
        dispatcher = PruneGreedyDP(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        request = make_request(99, 0, 10, release=0.0, deadline=100.0)
        assert dispatcher.candidate_worker_ids(request, now=200.0) == []

    def test_memory_estimate_positive_after_setup(self, small_instance, fleet):
        dispatcher = PruneGreedyDP(DispatcherConfig(grid_cell_metres=500.0))
        assert dispatcher.memory_estimate_bytes() == 0
        dispatcher.setup(small_instance, fleet)
        assert dispatcher.memory_estimate_bytes() > 0

    def test_sync_grid_follows_worker_movement(self, small_instance, fleet):
        dispatcher = PruneGreedyDP(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        # teleport a worker by mutating its route origin, then re-sync
        state = fleet.state_of(0)
        state.route.origin = small_instance.workers[3].initial_location
        dispatcher.sync_grid()
        cell = dispatcher.grid.cell_of_vertex(small_instance.workers[3].initial_location)
        assert 0 in dispatcher.grid.members_in_cell(cell)
