"""Tests for GreedyDP and pruneGreedyDP (decision + planning phases)."""

import pytest

from repro.core.objective import ObjectiveConfig, PenaltyPolicy
from repro.dispatch import DispatcherConfig, GreedyDP, PruneGreedyDP
from repro.simulation.fleet import FleetState
from repro.simulation.simulator import run_simulation
from tests.conftest import make_request


@pytest.fixture(params=[GreedyDP, PruneGreedyDP], ids=["GreedyDP", "pruneGreedyDP"])
def dispatcher_class(request):
    return request.param


class TestDispatch:
    def test_serves_request_with_generous_deadline(self, small_instance, fleet, dispatcher_class):
        dispatcher = dispatcher_class(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        request = small_instance.requests[0]
        outcome = dispatcher.dispatch(request, now=request.release_time)
        assert outcome.served
        assert outcome.worker_id in {worker.id for worker in small_instance.workers}
        state = fleet.state_of(outcome.worker_id)
        assert request.id in state.assigned_requests
        assert state.route.is_feasible(small_instance.oracle)

    def test_picks_minimum_increase_worker(self, small_instance, fleet, dispatcher_class):
        from repro.core.insertion.linear_dp import LinearDPInsertion

        dispatcher = dispatcher_class(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        request = small_instance.requests[0]
        oracle = small_instance.oracle
        operator = LinearDPInsertion()
        best = min(
            operator.best_insertion(state.route, request, oracle).delta for state in fleet
        )
        outcome = dispatcher.dispatch(request, now=request.release_time)
        assert outcome.increased_cost == pytest.approx(best, abs=1e-6)

    def test_rejects_unreachable_request(self, small_instance, fleet, dispatcher_class):
        dispatcher = dispatcher_class(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        impossible = make_request(99, 0, 63, release=0.0, deadline=1.0, penalty=10.0)
        outcome = dispatcher.dispatch(impossible, now=0.0)
        assert not outcome.served

    def test_decision_phase_rejects_unprofitable_request(self, small_instance, fleet, dispatcher_class):
        """With a penalty far below the minimal possible detour, the decision
        phase must reject without planning (Algorithm 4, line 5)."""
        dispatcher = dispatcher_class(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        cheap = make_request(99, 30, 40, release=0.0, deadline=5000.0, penalty=0.001)
        outcome = dispatcher.dispatch(cheap, now=0.0)
        assert not outcome.served
        assert outcome.decision_rejected

    def test_sequential_requests_all_feasible(self, small_instance, fleet, dispatcher_class):
        dispatcher = dispatcher_class(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        for request in small_instance.requests:
            fleet.advance_all(request.release_time)
            dispatcher.dispatch(request, now=request.release_time)
        for state in fleet:
            assert state.route.is_feasible(small_instance.oracle)


class TestPruningEquivalence:
    def test_prune_and_plain_pick_same_cost(self, small_instance):
        """Lemma 8 pruning must not change the chosen insertion cost."""
        oracle = small_instance.oracle
        outcomes = {}
        for cls in (GreedyDP, PruneGreedyDP):
            fleet = FleetState(small_instance.workers, oracle)
            dispatcher = cls(DispatcherConfig(grid_cell_metres=500.0))
            dispatcher.setup(small_instance, fleet)
            request = small_instance.requests[0]
            outcomes[cls.__name__] = dispatcher.dispatch(request, now=request.release_time)
        assert outcomes["GreedyDP"].served == outcomes["PruneGreedyDP"].served
        assert outcomes["GreedyDP"].increased_cost == pytest.approx(
            outcomes["PruneGreedyDP"].increased_cost, abs=1e-6
        )

    def test_pruning_evaluates_no_more_insertions(self, small_instance):
        oracle = small_instance.oracle
        evaluated = {}
        for cls in (GreedyDP, PruneGreedyDP):
            fleet = FleetState(small_instance.workers, oracle)
            dispatcher = cls(DispatcherConfig(grid_cell_metres=500.0))
            dispatcher.setup(small_instance, fleet)
            request = small_instance.requests[0]
            outcome = dispatcher.dispatch(request, now=request.release_time)
            evaluated[cls.__name__] = outcome.insertions_evaluated
        assert evaluated["PruneGreedyDP"] <= evaluated["GreedyDP"]

    def test_pruning_saves_distance_queries_end_to_end(self, small_instance):
        oracle = small_instance.oracle
        queries = {}
        for cls in (GreedyDP, PruneGreedyDP):
            result = run_simulation(
                small_instance, cls(DispatcherConfig(grid_cell_metres=500.0))
            )
            queries[cls.__name__] = result.distance_queries
        assert queries["PruneGreedyDP"] <= queries["GreedyDP"]


class TestObjectiveSpecialCases:
    def test_alpha_zero_never_rejects_in_decision(self, city_network, city_oracle):
        """With alpha = 0 (maximise served requests) the decision phase never
        rejects: penalties always exceed alpha * LB = 0."""
        from repro.core.instance import URPSMInstance
        from tests.conftest import make_worker

        objective = ObjectiveConfig(alpha=0.0, penalty_policy=PenaltyPolicy.FIXED, penalty_value=1.0)
        instance = URPSMInstance(
            network=city_network,
            oracle=city_oracle,
            workers=[make_worker(0, 0, capacity=4)],
            requests=[make_request(0, 10, 40, release=0.0, deadline=4000.0, penalty=1.0)],
            objective=objective,
            name="alpha-zero",
        )
        result = run_simulation(instance, PruneGreedyDP(DispatcherConfig(grid_cell_metres=500.0)))
        assert result.served_requests == 1
        assert result.decision_rejections == 0

    def test_reject_unprofitable_option(self, small_instance, fleet):
        dispatcher = PruneGreedyDP(
            DispatcherConfig(grid_cell_metres=500.0, reject_unprofitable=True)
        )
        dispatcher.setup(small_instance, fleet)
        # penalty slightly above the Euclidean lower bound but far below the
        # real detour: the planning phase must reject it under this option
        request = make_request(99, 0, 63, release=0.0, deadline=50000.0, penalty=1.0)
        outcome = dispatcher.dispatch(request, now=0.0)
        assert not outcome.served
