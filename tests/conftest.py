"""Shared fixtures for the test suite.

The fixtures centre on a small, fully deterministic grid city with a dense
all-pairs distance oracle, which keeps every test fast while exercising real
shortest-path distances (triangle inequality, detours, asymmetric layouts).
"""

from __future__ import annotations

import pytest

from repro.core.objective import ObjectiveConfig, PenaltyPolicy
from repro.core.route import Route, empty_route
from repro.core.types import Request, Worker
from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle
from repro.utils.geometry import Point


def build_line_network(num_vertices: int = 6, spacing: float = 100.0, speed: float = 10.0) -> RoadNetwork:
    """A path graph 0 - 1 - ... - (n-1) with uniform edge costs (spacing/speed)."""
    network = RoadNetwork(name="line")
    for index in range(num_vertices):
        network.add_vertex(index, Point(index * spacing, 0.0))
    for index in range(num_vertices - 1):
        network.add_edge(index, index + 1, speed=speed, road_class="line")
    return network


@pytest.fixture(scope="session")
def line_network() -> RoadNetwork:
    """Path graph with 6 vertices and 10-second edges."""
    return build_line_network()


@pytest.fixture(scope="session")
def line_oracle(line_network: RoadNetwork) -> DistanceOracle:
    """APSP-backed oracle over :func:`line_network`."""
    return DistanceOracle(line_network, precompute="apsp")


@pytest.fixture(scope="session")
def city_network() -> RoadNetwork:
    """A small 8x8 grid city used by the heavier tests."""
    return grid_city(rows=8, columns=8, block_metres=200.0, removed_block_fraction=0.05, seed=3)


@pytest.fixture(scope="session")
def city_oracle(city_network: RoadNetwork) -> DistanceOracle:
    """APSP-backed oracle over :func:`city_network`."""
    return DistanceOracle(city_network, precompute="apsp")


@pytest.fixture()
def default_objective() -> ObjectiveConfig:
    """alpha = 1, p_r = 10 x dis(o_r, d_r) — the paper's Table 5 default."""
    return ObjectiveConfig(alpha=1.0, penalty_policy=PenaltyPolicy.PROPORTIONAL, penalty_value=10.0)


def make_worker(worker_id: int = 0, location: int = 0, capacity: int = 4) -> Worker:
    """Shorthand worker constructor used across test modules."""
    return Worker(id=worker_id, initial_location=location, capacity=capacity)


def make_request(
    request_id: int,
    origin: int,
    destination: int,
    release: float = 0.0,
    deadline: float = 10_000.0,
    penalty: float = 100.0,
    capacity: int = 1,
) -> Request:
    """Shorthand request constructor with a generous default deadline."""
    return Request(
        id=request_id,
        origin=origin,
        destination=destination,
        release_time=release,
        deadline=deadline,
        penalty=penalty,
        capacity=capacity,
    )


def route_with_requests(
    worker: Worker,
    oracle: DistanceOracle,
    requests: list[Request],
    start_time: float = 0.0,
) -> Route:
    """Build a feasible route by appending each request's pickup and drop-off in order."""
    route = empty_route(worker, start_time=start_time)
    route.refresh(oracle)
    for request in requests:
        route = route.with_insertion(request, route.num_stops, route.num_stops, oracle)
    return route


@pytest.fixture()
def simple_worker() -> Worker:
    """A capacity-4 worker starting at vertex 0."""
    return make_worker()


@pytest.fixture()
def small_instance(city_network, city_oracle):
    """Four workers, six requests with generous deadlines on the 8x8 grid city."""
    from repro.core.instance import URPSMInstance

    vertices = sorted(city_network.vertices())
    workers = [
        make_worker(0, vertices[0], capacity=4),
        make_worker(1, vertices[15], capacity=4),
        make_worker(2, vertices[35], capacity=2),
        make_worker(3, vertices[-1], capacity=4),
    ]
    requests = [
        make_request(0, vertices[3], vertices[20], release=0.0, deadline=2000.0, penalty=5000.0),
        make_request(1, vertices[8], vertices[30], release=10.0, deadline=2000.0, penalty=5000.0),
        make_request(2, vertices[22], vertices[44], release=20.0, deadline=2200.0, penalty=5000.0),
        make_request(3, vertices[5], vertices[50], release=30.0, deadline=2500.0, penalty=5000.0),
        make_request(4, vertices[40], vertices[10], release=40.0, deadline=2600.0, penalty=5000.0),
        make_request(5, vertices[12], vertices[55], release=50.0, deadline=2700.0, penalty=5000.0),
    ]
    objective = ObjectiveConfig(
        alpha=1.0, penalty_policy=PenaltyPolicy.FIXED, penalty_value=5000.0
    )
    instance = URPSMInstance(
        network=city_network,
        oracle=city_oracle,
        workers=workers,
        requests=requests,
        objective=objective,
        name="dispatch-fixture",
    )
    instance.validate()
    return instance


@pytest.fixture()
def fleet(small_instance):
    """Fresh fleet state for :func:`small_instance`."""
    from repro.simulation.fleet import FleetState

    return FleetState(small_instance.workers, small_instance.oracle)
