"""Seeded chaos harness for the shard-worker cluster.

Shared by ``tests/cluster/test_recovery.py`` and
``benchmarks/bench_chaos.py`` (the module name carries no ``test_`` prefix,
so pytest does not collect it as a test file).

Faults are **deterministic**: each one anchors to a shard and a per-shard
command ordinal (how many commands the front door successfully sent to that
shard before the fault point), not to wall-clock timing, so a chaos run is
exactly reproducible — and comparable bit-for-bit against its fault-free
twin. :func:`seeded_faults` derives random-but-reproducible fault plans from
a seed through the repo's spawn-key stream derivation.

Fault kinds:

* ``kill`` — SIGKILL the shard's worker process at the fault point
  (``phase="before_send"`` kills between commands, i.e. between batch
  windows; ``phase="after_send"`` kills mid-round-trip, after the command
  crossed the pipe but before the reply);
* ``transient_send`` / ``transient_recv`` — raise
  :class:`~repro.cluster.recovery.TransientRPCError` ``count`` times at the
  fault point (the retry/backoff path, never lethal below the retry budget);
* ``delay`` — make the worker sleep ``seconds`` before replying to its
  ``at_command``-th received command (the ``dispatch_timeout`` path).
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field

from repro.cluster.recovery import FaultInjector, TransientRPCError
from repro.cluster.service import ClusterMatchingService
from repro.dispatch import DispatcherConfig
from repro.utils.rng import derive_spawned_seed, make_rng
from repro.workloads.scenarios import ScenarioConfig, build_instance

#: the chaos scenario: small enough for CI, large enough that all four
#: shards see traffic and batch windows accumulate multiple requests.
DEFAULT_SCENARIO = ScenarioConfig(
    city="small-grid", num_workers=14, num_requests=80, seed=2018
)
DEFAULT_SHARDS = 4


@dataclass(frozen=True)
class Fault:
    """One deterministic fault, anchored to a shard + command ordinal."""

    kind: str  #: ``kill`` | ``transient_send`` | ``transient_recv`` | ``delay``
    shard: int
    at_command: int = 0
    phase: str = "before_send"  #: kill faults: ``before_send`` | ``after_send``
    count: int = 1  #: transient faults: times the error is raised
    seconds: float = 0.0  #: delay faults: worker-side reply delay


class ChaosInjector(FaultInjector):
    """Fires a fault plan at exact protocol points; records what fired."""

    def __init__(self, faults) -> None:
        self.faults = list(faults)
        self.fired: list[tuple[str, int, int]] = []
        self._once: set[int] = set()
        self._budget: dict[int, int] = {}

    # ------------------------------------------------------------------ hooks

    def delays_for(self, shard_id: int) -> tuple[tuple[int, float], ...]:
        return tuple(
            (fault.at_command, fault.seconds)
            for fault in self.faults
            if fault.kind == "delay" and fault.shard == shard_id
        )

    def before_send(self, handle, command, ordinal: int, attempt: int) -> None:
        for fault in self.faults:
            if fault.shard != handle.shard_id or fault.at_command != ordinal:
                continue
            if fault.kind == "kill" and fault.phase == "before_send":
                if attempt == 0 and self._fire_once(fault):
                    self.fired.append(("kill", handle.shard_id, ordinal))
                    self._kill(handle)
            elif fault.kind == "transient_send" and self._spend(fault):
                self.fired.append(("transient_send", handle.shard_id, ordinal))
                raise TransientRPCError(
                    f"injected send fault on shard {handle.shard_id}"
                )

    def after_send(self, handle, command, ordinal: int) -> None:
        for fault in self.faults:
            if (
                fault.kind == "kill"
                and fault.phase == "after_send"
                and fault.shard == handle.shard_id
                and fault.at_command == ordinal
                and self._fire_once(fault)
            ):
                self.fired.append(("kill_after_send", handle.shard_id, ordinal))
                self._kill(handle)

    def before_recv(self, handle) -> None:
        for fault in self.faults:
            if (
                fault.kind == "transient_recv"
                and fault.shard == handle.shard_id
                # handle.commands was incremented by the successful send this
                # receive is waiting on, so the in-flight ordinal is commands-1
                and fault.at_command == handle.commands - 1
                and self._spend(fault)
            ):
                self.fired.append(("transient_recv", handle.shard_id, fault.at_command))
                raise TransientRPCError(
                    f"injected recv fault on shard {handle.shard_id}"
                )

    # -------------------------------------------------------------- internals

    def _fire_once(self, fault: Fault) -> bool:
        key = id(fault)
        if key in self._once:
            return False
        self._once.add(key)
        return True

    def _spend(self, fault: Fault) -> bool:
        key = id(fault)
        used = self._budget.get(key, 0)
        if used >= fault.count:
            return False
        self._budget[key] = used + 1
        return True

    @staticmethod
    def _kill(handle) -> None:
        if handle.process.is_alive():
            os.kill(handle.process.pid, signal.SIGKILL)
        # join so the death is visible to the very next pipe operation —
        # the fault point stays exact instead of racing process teardown
        handle.process.join(10)


def seeded_faults(
    seed: int,
    *,
    num_shards: int = DEFAULT_SHARDS,
    kinds: tuple[str, ...] = ("kill", "transient_send", "delay"),
    count: int = 3,
    max_ordinal: int = 12,
) -> list[Fault]:
    """A reproducible random fault plan derived from ``seed``."""
    rng = make_rng(derive_spawned_seed(seed, "chaos-faults"))
    faults = []
    for _ in range(count):
        kind = kinds[int(rng.integers(len(kinds)))]
        shard = int(rng.integers(num_shards))
        ordinal = int(rng.integers(max_ordinal))
        if kind == "kill":
            phase = "after_send" if rng.random() < 0.5 else "before_send"
            faults.append(Fault(kind, shard, ordinal, phase=phase))
        elif kind == "delay":
            faults.append(Fault(kind, shard, ordinal, seconds=float(rng.uniform(0.05, 0.2))))
        else:
            faults.append(Fault(kind, shard, ordinal, count=int(rng.integers(1, 3))))
    return faults


@dataclass
class ChaosRun:
    """Everything a gate needs from one chaos replay."""

    result: object  #: the :class:`SimulationResult`
    fingerprint: dict
    recovery_log: list[tuple[str, int]]
    fired: list[tuple[str, int, int]]
    worker_failures: int
    worker_restarts: int
    retries: int
    degraded_dispatches: int
    shard_health: tuple[str, ...]
    orphans: list = field(default_factory=list)


def result_fingerprint(result) -> dict:
    """The exact-comparison fingerprint of one replay (bit-identity gate)."""
    return {
        "served": result.served_requests,
        "rejected": result.rejected_requests,
        "unified_cost": result.unified_cost,
        "mean_wait_s": result.mean_wait_seconds,
        "mean_detour_ratio": result.mean_detour_ratio,
    }


def run_chaos(
    inner: str,
    faults=(),
    *,
    scenario: ScenarioConfig = DEFAULT_SCENARIO,
    num_shards: int = DEFAULT_SHARDS,
    batch_interval: float | None = None,
    dispatch_timeout: float = 60.0,
    retry_attempts: int = 3,
    retry_backoff_s: float = 0.0,
    max_restarts: int = 2,
    restart_delay_s: float = 0.0,
    instance=None,
) -> ChaosRun:
    """Replay the chaos scenario through a cluster session with ``faults``.

    ``retry_backoff_s`` defaults to 0 so injected transient faults retry
    without real sleeps (jitter × 0 = 0); the retry *path* is identical.
    """
    config_kwargs = {"grid_cell_metres": scenario.grid_km * 1000.0}
    if batch_interval is not None:
        config_kwargs["batch_interval"] = batch_interval
    injector = ChaosInjector(faults) if faults else None
    service = ClusterMatchingService.build(
        instance if instance is not None else build_instance(scenario),
        inner=inner,
        num_shards=num_shards,
        config=DispatcherConfig(**config_kwargs),
        seed=scenario.seed,
        dispatch_timeout=dispatch_timeout,
        retry_attempts=retry_attempts,
        retry_backoff_s=retry_backoff_s,
        max_restarts=max_restarts,
        restart_delay_s=restart_delay_s,
        fault_injector=injector,
    )
    dispatcher = service.dispatcher
    with service:
        result = service.replay()
    return ChaosRun(
        result=result,
        fingerprint=result_fingerprint(result),
        recovery_log=list(dispatcher.recovery_log),
        fired=list(injector.fired) if injector is not None else [],
        worker_failures=dispatcher.worker_failures,
        worker_restarts=dispatcher.worker_restarts,
        retries=dispatcher.retries,
        degraded_dispatches=dispatcher.degraded_dispatches,
        shard_health=dispatcher.shard_health(),
        orphans=dispatcher.child_processes(),
    )


__all__ = [
    "ChaosInjector",
    "ChaosRun",
    "DEFAULT_SCENARIO",
    "DEFAULT_SHARDS",
    "Fault",
    "result_fingerprint",
    "run_chaos",
    "seeded_faults",
]
