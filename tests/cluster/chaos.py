"""Seeded chaos harness for the shard-worker cluster.

Shared by ``tests/cluster/test_recovery.py`` and
``benchmarks/bench_chaos.py`` (the module name carries no ``test_`` prefix,
so pytest does not collect it as a test file).

Faults are **deterministic**: each one anchors to a shard and a per-shard
command ordinal (how many commands the front door successfully sent to that
shard before the fault point), not to wall-clock timing, so a chaos run is
exactly reproducible — and comparable bit-for-bit against its fault-free
twin. :func:`seeded_faults` derives random-but-reproducible fault plans from
a seed through the repo's spawn-key stream derivation.

Fault kinds:

* ``kill`` — SIGKILL the shard's worker process at the fault point
  (``phase="before_send"`` kills between commands, i.e. between batch
  windows; ``phase="after_send"`` kills mid-round-trip, after the command
  crossed the pipe but before the reply);
* ``transient_send`` / ``transient_recv`` — raise
  :class:`~repro.cluster.recovery.TransientRPCError` ``count`` times at the
  fault point (the retry/backoff path, never lethal below the retry budget);
* ``delay`` — make the worker sleep ``seconds`` before replying to its
  ``at_command``-th received command (the ``dispatch_timeout`` path).

Faults can alternatively anchor to **network-update ordinals**
(``at_update`` + ``window``): a kill fires immediately before the shard's
``at_update``-th :class:`~repro.cluster.messages.NetworkUpdateCommand` is
sent (``window="before"``), right after it crossed the pipe but before its
barrier acknowledgement (``"during"``), or before the first command that
follows the acknowledged update (``"after"``) — the three positions a crash
can take relative to a live topology mutation. :func:`closure_plan` builds a
deterministic timed close→reopen plan over connectivity-safe edges, and
:func:`run_chaos` drives it through the service exactly like the scenario
runner drives disruption programs.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field

from repro.cluster.messages import NetworkUpdateCommand
from repro.cluster.recovery import FaultInjector, TransientRPCError
from repro.cluster.service import ClusterMatchingService
from repro.dispatch import DispatcherConfig
from repro.network.graph import connected_components
from repro.utils.rng import derive_spawned_seed, make_rng
from repro.workloads.scenarios import ScenarioConfig, build_instance

#: the chaos scenario: small enough for CI, large enough that all four
#: shards see traffic and batch windows accumulate multiple requests.
DEFAULT_SCENARIO = ScenarioConfig(
    city="small-grid", num_workers=14, num_requests=80, seed=2018
)
DEFAULT_SHARDS = 4


@dataclass(frozen=True)
class Fault:
    """One deterministic fault, anchored to a shard + command ordinal.

    When ``at_update`` is set, the fault anchors to the shard's per-shard
    network-update ordinal instead of ``at_command``: ``window`` places the
    kill ``"before"`` the update command is sent, ``"during"`` the barrier
    round-trip (sent, acknowledgement lost), or ``"after"`` the update is
    acknowledged (the kill fires before the shard's next command of any
    kind). Update-anchored faults are kills — the windows are defined by
    the broadcast protocol, not the retry loop.
    """

    kind: str  #: ``kill`` | ``transient_send`` | ``transient_recv`` | ``delay``
    shard: int
    at_command: int = 0
    phase: str = "before_send"  #: kill faults: ``before_send`` | ``after_send``
    count: int = 1  #: transient faults: times the error is raised
    seconds: float = 0.0  #: delay faults: worker-side reply delay
    at_update: int | None = None  #: anchor to the Nth NetworkUpdateCommand
    window: str = "during"  #: update faults: ``before`` | ``during`` | ``after``


class ChaosInjector(FaultInjector):
    """Fires a fault plan at exact protocol points; records what fired."""

    def __init__(self, faults) -> None:
        self.faults = list(faults)
        self.fired: list[tuple[str, int, int]] = []
        self._once: set[int] = set()
        self._budget: dict[int, int] = {}
        #: per-shard count of NetworkUpdateCommands successfully sent —
        #: the anchor stream for ``at_update`` faults.
        self._updates_seen: dict[int, int] = {}

    # ------------------------------------------------------------------ hooks

    def delays_for(self, shard_id: int) -> tuple[tuple[int, float], ...]:
        return tuple(
            (fault.at_command, fault.seconds)
            for fault in self.faults
            if fault.kind == "delay" and fault.shard == shard_id
        )

    def before_send(self, handle, command, ordinal: int, attempt: int) -> None:
        seen = self._updates_seen.get(handle.shard_id, 0)
        for fault in self.faults:
            if fault.shard != handle.shard_id:
                continue
            if fault.at_update is not None:
                if fault.kind != "kill" or attempt != 0:
                    continue
                if (
                    fault.window == "before"
                    and isinstance(command, NetworkUpdateCommand)
                    and seen == fault.at_update
                    and self._fire_once(fault)
                ):
                    self.fired.append(
                        ("kill_before_update", handle.shard_id, fault.at_update)
                    )
                    self._kill(handle)
                elif (
                    fault.window == "after"
                    and seen == fault.at_update + 1
                    and self._fire_once(fault)
                ):
                    self.fired.append(
                        ("kill_after_update", handle.shard_id, fault.at_update)
                    )
                    self._kill(handle)
                continue
            if fault.at_command != ordinal:
                continue
            if fault.kind == "kill" and fault.phase == "before_send":
                if attempt == 0 and self._fire_once(fault):
                    self.fired.append(("kill", handle.shard_id, ordinal))
                    self._kill(handle)
            elif fault.kind == "transient_send" and self._spend(fault):
                self.fired.append(("transient_send", handle.shard_id, ordinal))
                raise TransientRPCError(
                    f"injected send fault on shard {handle.shard_id}"
                )

    def after_send(self, handle, command, ordinal: int) -> None:
        seen = self._updates_seen.get(handle.shard_id, 0)
        for fault in self.faults:
            if fault.shard != handle.shard_id:
                continue
            if fault.at_update is not None:
                if (
                    fault.kind == "kill"
                    and fault.window == "during"
                    and isinstance(command, NetworkUpdateCommand)
                    and seen == fault.at_update
                    and self._fire_once(fault)
                ):
                    self.fired.append(
                        ("kill_during_update", handle.shard_id, fault.at_update)
                    )
                    self._kill(handle)
                continue
            if (
                fault.kind == "kill"
                and fault.phase == "after_send"
                and fault.at_command == ordinal
                and self._fire_once(fault)
            ):
                self.fired.append(("kill_after_send", handle.shard_id, ordinal))
                self._kill(handle)
        if isinstance(command, NetworkUpdateCommand):
            self._updates_seen[handle.shard_id] = seen + 1

    def before_recv(self, handle) -> None:
        for fault in self.faults:
            if (
                fault.kind == "transient_recv"
                and fault.shard == handle.shard_id
                # handle.commands was incremented by the successful send this
                # receive is waiting on, so the in-flight ordinal is commands-1
                and fault.at_command == handle.commands - 1
                and self._spend(fault)
            ):
                self.fired.append(("transient_recv", handle.shard_id, fault.at_command))
                raise TransientRPCError(
                    f"injected recv fault on shard {handle.shard_id}"
                )

    # -------------------------------------------------------------- internals

    def _fire_once(self, fault: Fault) -> bool:
        key = id(fault)
        if key in self._once:
            return False
        self._once.add(key)
        return True

    def _spend(self, fault: Fault) -> bool:
        key = id(fault)
        used = self._budget.get(key, 0)
        if used >= fault.count:
            return False
        self._budget[key] = used + 1
        return True

    @staticmethod
    def _kill(handle) -> None:
        if handle.process.is_alive():
            os.kill(handle.process.pid, signal.SIGKILL)
        # join so the death is visible to the very next pipe operation —
        # the fault point stays exact instead of racing process teardown
        handle.process.join(10)


def seeded_faults(
    seed: int,
    *,
    num_shards: int = DEFAULT_SHARDS,
    kinds: tuple[str, ...] = ("kill", "transient_send", "delay"),
    count: int = 3,
    max_ordinal: int = 12,
) -> list[Fault]:
    """A reproducible random fault plan derived from ``seed``."""
    rng = make_rng(derive_spawned_seed(seed, "chaos-faults"))
    faults = []
    for _ in range(count):
        kind = kinds[int(rng.integers(len(kinds)))]
        shard = int(rng.integers(num_shards))
        ordinal = int(rng.integers(max_ordinal))
        if kind == "kill":
            phase = "after_send" if rng.random() < 0.5 else "before_send"
            faults.append(Fault(kind, shard, ordinal, phase=phase))
        elif kind == "delay":
            faults.append(Fault(kind, shard, ordinal, seconds=float(rng.uniform(0.05, 0.2))))
        else:
            faults.append(Fault(kind, shard, ordinal, count=int(rng.integers(1, 3))))
    return faults


@dataclass(frozen=True)
class UpdateAction:
    """One timed live network mutation driven through the service."""

    time: float
    kind: str  #: ``close`` | ``reopen``
    u: int
    v: int
    length: float = 0.0
    speed: float = 10.0
    road_class: str = "residential"

    def apply(self, network) -> None:
        if self.kind == "close":
            network.remove_edge(self.u, self.v)
        else:
            network.add_edge(
                self.u, self.v, length=self.length, speed=self.speed,
                road_class=self.road_class,
            )


def closure_plan(
    instance,
    *,
    closures: int = 1,
    close_fraction: float = 0.35,
    reopen_fraction: float = 0.65,
) -> tuple[UpdateAction, ...]:
    """A deterministic timed close→reopen plan over connectivity-safe edges.

    Edges are picked in iteration order, skipping any whose removal would
    disconnect the network; the closure lands at the release time of the
    request ``close_fraction`` of the way through the workload and reopens
    at ``reopen_fraction``, so kills anchored before/during/after the update
    window land inside live traffic.
    """
    network = instance.network
    releases = sorted(request.release_time for request in instance.requests)
    t_close = releases[int(len(releases) * close_fraction)]
    t_reopen = releases[int(len(releases) * reopen_fraction)]
    picked = []
    for edge in list(network.edges()):
        if len(picked) >= closures:
            break
        removed = network.remove_edge(edge.u, edge.v)
        keep = connected_components(network).count == 1
        network.add_edge(
            removed.u, removed.v, length=removed.length, speed=removed.speed,
            road_class=removed.road_class,
        )
        if keep:
            picked.append(removed)
    actions = []
    for edge in picked:
        actions.append(UpdateAction(
            t_close, "close", edge.u, edge.v, edge.length, edge.speed,
            edge.road_class,
        ))
        actions.append(UpdateAction(
            t_reopen, "reopen", edge.u, edge.v, edge.length, edge.speed,
            edge.road_class,
        ))
    return tuple(sorted(actions, key=lambda action: action.time))


@dataclass
class ChaosRun:
    """Everything a gate needs from one chaos replay."""

    result: object  #: the :class:`SimulationResult`
    fingerprint: dict
    recovery_log: list[tuple[str, int]]
    fired: list[tuple[str, int, int]]
    worker_failures: int
    worker_restarts: int
    retries: int
    degraded_dispatches: int
    shard_health: tuple[str, ...]
    orphans: list = field(default_factory=list)
    network_updates: int = 0
    update_ack_retries: int = 0
    replica_rebuilds: tuple[int, ...] = ()


def result_fingerprint(result) -> dict:
    """The exact-comparison fingerprint of one replay (bit-identity gate)."""
    return {
        "served": result.served_requests,
        "rejected": result.rejected_requests,
        "unified_cost": result.unified_cost,
        "mean_wait_s": result.mean_wait_seconds,
        "mean_detour_ratio": result.mean_detour_ratio,
    }


def run_chaos(
    inner: str,
    faults=(),
    *,
    scenario: ScenarioConfig = DEFAULT_SCENARIO,
    num_shards: int = DEFAULT_SHARDS,
    batch_interval: float | None = None,
    dispatch_timeout: float = 60.0,
    retry_attempts: int = 3,
    retry_backoff_s: float = 0.0,
    max_restarts: int = 2,
    restart_delay_s: float = 0.0,
    instance=None,
    updates: tuple = (),
) -> ChaosRun:
    """Replay the chaos scenario through a cluster session with ``faults``.

    ``retry_backoff_s`` defaults to 0 so injected transient faults retry
    without real sleeps (jitter × 0 = 0); the retry *path* is identical.

    ``updates`` is an optional timed :class:`UpdateAction` plan (see
    :func:`closure_plan`); when present the replay interleaves submissions
    with ``advance_to`` + ``apply_network_update`` exactly the way the
    scenario runner drives disruption programs.
    """
    config_kwargs = {"grid_cell_metres": scenario.grid_km * 1000.0}
    if batch_interval is not None:
        config_kwargs["batch_interval"] = batch_interval
    injector = ChaosInjector(faults) if faults else None
    if instance is None:
        instance = build_instance(scenario)
    service = ClusterMatchingService.build(
        instance,
        inner=inner,
        num_shards=num_shards,
        config=DispatcherConfig(**config_kwargs),
        seed=scenario.seed,
        dispatch_timeout=dispatch_timeout,
        retry_attempts=retry_attempts,
        retry_backoff_s=retry_backoff_s,
        max_restarts=max_restarts,
        restart_delay_s=restart_delay_s,
        fault_injector=injector,
    )
    dispatcher = service.dispatcher
    with service:
        if updates:
            timeline = sorted(updates, key=lambda action: action.time)
            cursor = 0
            for request in instance.requests:
                while (
                    cursor < len(timeline)
                    and timeline[cursor].time <= request.release_time
                ):
                    action = timeline[cursor]
                    service.advance_to(action.time)
                    service.apply_network_update(action.apply)
                    cursor += 1
                service.submit(request)
            while cursor < len(timeline):
                action = timeline[cursor]
                service.advance_to(action.time)
                service.apply_network_update(action.apply)
                cursor += 1
            result = service.drain()
        else:
            result = service.replay()
    return ChaosRun(
        result=result,
        fingerprint=result_fingerprint(result),
        recovery_log=list(dispatcher.recovery_log),
        fired=list(injector.fired) if injector is not None else [],
        worker_failures=dispatcher.worker_failures,
        worker_restarts=dispatcher.worker_restarts,
        retries=dispatcher.retries,
        degraded_dispatches=dispatcher.degraded_dispatches,
        shard_health=dispatcher.shard_health(),
        orphans=dispatcher.child_processes(),
        network_updates=dispatcher.network_updates_applied,
        update_ack_retries=dispatcher.update_ack_retries,
        replica_rebuilds=tuple(
            handle.replica_rebuilds for handle in dispatcher._handles
        ),
    )


__all__ = [
    "ChaosInjector",
    "ChaosRun",
    "DEFAULT_SCENARIO",
    "DEFAULT_SHARDS",
    "Fault",
    "UpdateAction",
    "closure_plan",
    "result_fingerprint",
    "run_chaos",
    "seeded_faults",
]
