"""Self-healing cluster: recovery semantics under deterministic chaos.

The properties gated here:

* a worker kill **between batch windows** leaves the replay bit-identical to
  the fault-free run (same seed, K=4) — the degraded executor and the
  rebuilt replica decide exactly what the lost worker would have;
* a kill **mid-round-trip** (command sent, reply never arrives) loses no
  request and decides none twice: authoritative state only mutates when a
  reply is applied, so the degraded re-execution is exactly-once — and
  therefore also bit-identical;
* transient RPC errors are retried with backoff and never kill a worker
  below the retry budget;
* a worker exceeding ``dispatch_timeout`` is marked down only after the
  timeout → retry ladder is exhausted, in that order, without hanging;
* shutdown is clean from any state — mid-recovery included — reaping every
  child process and supervisor respawn;
* recovery telemetry flows end to end (dispatcher counters → snapshot →
  ``SimulationResult.extra``).
"""

import os
import signal

from repro.cluster.recovery import ShardHealth
from repro.cluster.service import ClusterMatchingService
from repro.dispatch import DispatcherConfig
from repro.workloads.scenarios import build_instance

from tests.cluster.chaos import (
    DEFAULT_SCENARIO,
    ChaosInjector,
    Fault,
    run_chaos,
    seeded_faults,
)


def _subsequence(log: list[tuple[str, int]], shard: int, events: list[str]) -> bool:
    """Whether ``events`` appear for ``shard`` in order (gaps allowed)."""
    shard_events = [event for event, shard_id in log if shard_id == shard]
    position = 0
    for event in shard_events:
        if position < len(events) and event == events[position]:
            position += 1
    return position == len(events)


# ------------------------------------------------------- bit-identity gates


def test_kill_between_windows_bit_identical_batch():
    baseline = run_chaos("batch", batch_interval=30.0)
    chaos = run_chaos(
        "batch",
        [Fault("kill", shard=0, at_command=1, phase="before_send")],
        batch_interval=30.0,
    )
    assert chaos.fired, "the kill fault never fired — anchor it to a live ordinal"
    assert chaos.worker_failures == 1
    assert chaos.worker_restarts == 1
    assert chaos.degraded_dispatches > 0
    assert chaos.fingerprint == baseline.fingerprint
    assert chaos.orphans == [] and baseline.orphans == []


def test_kill_between_commands_bit_identical_immediate():
    baseline = run_chaos("pruneGreedyDP")
    chaos = run_chaos(
        "pruneGreedyDP",
        [Fault("kill", shard=1, at_command=2, phase="before_send")],
    )
    assert chaos.fired
    assert chaos.worker_failures == 1
    assert chaos.fingerprint == baseline.fingerprint


def test_chaos_rerun_is_deterministic():
    faults = seeded_faults(DEFAULT_SCENARIO.seed)
    first = run_chaos("batch", faults, batch_interval=30.0)
    second = run_chaos("batch", faults, batch_interval=30.0)
    assert first.fingerprint == second.fingerprint
    assert first.fired == second.fired
    assert first.worker_failures == second.worker_failures
    assert first.degraded_dispatches == second.degraded_dispatches


# ------------------------------------------- mid-flight kills lose nothing


def test_kill_mid_flush_no_loss_no_double_decision():
    """Satellite: worker dies after the flush command shipped, before the reply.

    The window it carried — deferrals and worker-held re-deferrals alike —
    must resolve exactly once through the degraded executor: the totals are
    complete and the metrics bit-match the fault-free run (the authoritative
    fleet never saw the lost replica's work).
    """
    baseline = run_chaos("batch", batch_interval=30.0)
    chaos = run_chaos(
        "batch",
        [
            # the delay pins the worker asleep before it can reply, so the
            # after_send kill deterministically wins the race with the reply
            Fault("delay", shard=0, at_command=1, seconds=0.5),
            Fault("kill", shard=0, at_command=1, phase="after_send"),
        ],
        batch_interval=30.0,
    )
    assert ("kill_after_send", 0, 1) in chaos.fired
    assert chaos.worker_failures == 1
    total = DEFAULT_SCENARIO.num_requests
    assert chaos.result.total_requests == total
    assert chaos.result.served_requests + chaos.result.rejected_requests == total
    assert chaos.fingerprint == baseline.fingerprint


def test_kill_mid_dispatch_immediate_exactly_once():
    baseline = run_chaos("pruneGreedyDP")
    chaos = run_chaos(
        "pruneGreedyDP",
        [
            Fault("delay", shard=2, at_command=3, seconds=0.5),
            Fault("kill", shard=2, at_command=3, phase="after_send"),
        ],
    )
    assert ("kill_after_send", 2, 3) in chaos.fired
    assert chaos.worker_failures == 1
    assert chaos.fingerprint == baseline.fingerprint


# -------------------------------------------------------------- retry path


def test_transient_send_errors_retry_without_killing():
    baseline = run_chaos("pruneGreedyDP")
    chaos = run_chaos(
        "pruneGreedyDP",
        [Fault("transient_send", shard=0, at_command=1, count=2)],
        retry_attempts=3,
    )
    assert ("transient_send", 0, 1) in chaos.fired
    assert chaos.retries == 2
    assert chaos.worker_failures == 0
    assert chaos.worker_restarts == 0
    assert all(health == ShardHealth.UP for health in chaos.shard_health)
    assert chaos.fingerprint == baseline.fingerprint
    assert [event for event, _ in chaos.recovery_log] == ["retry", "retry"]


def test_transient_recv_errors_retry_without_killing():
    baseline = run_chaos("batch", batch_interval=30.0)
    chaos = run_chaos(
        "batch",
        [Fault("transient_recv", shard=1, at_command=0, count=2)],
        retry_attempts=3,
        batch_interval=30.0,
    )
    assert ("transient_recv", 1, 0) in chaos.fired
    assert chaos.retries >= 2
    assert chaos.worker_failures == 0
    assert chaos.fingerprint == baseline.fingerprint


def test_exhausted_send_retries_mark_worker_down():
    # the fault budget (10) outlasts the retry budget (3); with no respawns
    # allowed the shard goes down once and serves degraded thereafter
    chaos = run_chaos(
        "pruneGreedyDP",
        [Fault("transient_send", shard=0, at_command=1, count=10)],
        retry_attempts=3,
        max_restarts=0,
    )
    baseline = run_chaos("pruneGreedyDP")
    assert chaos.worker_failures == 1
    assert chaos.retries == 3  # every attempt of the doomed send, then down
    assert _subsequence(chaos.recovery_log, 0, ["retry", "retry", "retry", "worker_down"])
    assert chaos.fingerprint == baseline.fingerprint


def test_persistent_send_fault_burns_restart_budget_then_degrades():
    """A fault that re-fires on the respawn's first send re-kills each
    incarnation; the ladder ends in permanent degraded mode, still
    bit-identical."""
    baseline = run_chaos("pruneGreedyDP")
    chaos = run_chaos(
        "pruneGreedyDP",
        [Fault("transient_send", shard=0, at_command=1, count=10)],
        retry_attempts=3,
        max_restarts=2,
    )
    assert chaos.worker_failures == 3  # original + both respawns
    assert chaos.worker_restarts == 2
    assert chaos.retries == 9
    assert chaos.shard_health[0] == ShardHealth.DEGRADED
    assert _subsequence(chaos.recovery_log, 0, ["worker_down", "respawn_adopted", "degraded_permanent"])
    assert chaos.fingerprint == baseline.fingerprint


# --------------------------------------------------------- timeout ordering


def test_dispatch_timeout_then_retry_then_mark_down():
    """Satellite: slow worker exceeds the deadline; ordering is visible.

    The recovery log must show timeout → retry → timeout → worker_down for
    the delayed shard, the run must not hang, and the shard must keep
    serving (degraded: respawn budget 0) with bit-identical results — the
    straggler's eventual reply is discarded, never applied.
    """
    baseline = run_chaos("pruneGreedyDP")
    chaos = run_chaos(
        "pruneGreedyDP",
        [Fault("delay", shard=0, at_command=0, seconds=2.0)],
        dispatch_timeout=0.3,
        retry_attempts=2,
        max_restarts=0,
    )
    assert chaos.worker_failures == 1
    assert chaos.worker_restarts == 0
    assert _subsequence(
        chaos.recovery_log, 0, ["timeout", "retry", "timeout", "worker_down", "degraded_permanent"]
    )
    assert chaos.shard_health[0] == ShardHealth.DEGRADED
    assert chaos.fingerprint == baseline.fingerprint


# ------------------------------------------------------- respawn lifecycle


def test_respawned_worker_is_adopted_and_serves():
    chaos = run_chaos(
        "batch",
        [Fault("kill", shard=0, at_command=0, phase="before_send")],
        batch_interval=30.0,
    )
    events = [event for event, shard in chaos.recovery_log if shard == 0]
    assert "respawn_scheduled" in events
    assert "respawn_adopted" in events
    assert events.index("respawn_scheduled") < events.index("respawn_adopted")
    assert chaos.worker_restarts == 1
    # once adopted, the shard finishes the run process-backed
    assert chaos.shard_health[0] == ShardHealth.UP


def test_restart_budget_exhausted_serves_degraded_forever():
    baseline = run_chaos("batch", batch_interval=30.0)
    chaos = run_chaos(
        "batch",
        [Fault("kill", shard=0, at_command=1, phase="before_send")],
        batch_interval=30.0,
        max_restarts=0,
    )
    assert chaos.worker_failures == 1
    assert chaos.worker_restarts == 0
    assert _subsequence(chaos.recovery_log, 0, ["worker_down", "degraded_permanent"])
    assert chaos.shard_health[0] == ShardHealth.DEGRADED
    assert chaos.fingerprint == baseline.fingerprint


def test_restart_delay_defers_adoption_in_simulated_time():
    chaos = run_chaos(
        "batch",
        [Fault("kill", shard=0, at_command=1, phase="before_send")],
        batch_interval=30.0,
        restart_delay_s=1e9,  # never due within the scenario horizon
    )
    baseline = run_chaos("batch", batch_interval=30.0)
    assert chaos.worker_failures == 1
    assert chaos.worker_restarts == 0  # scheduled, never adopted
    assert chaos.shard_health[0] == ShardHealth.RECOVERING
    assert chaos.fingerprint == baseline.fingerprint
    assert chaos.orphans == []  # the unadopted respawn was reaped at close


# ------------------------------------------------- shutdown from any state


def _build_service(inner: str, **kwargs) -> ClusterMatchingService:
    config = DispatcherConfig(grid_cell_metres=DEFAULT_SCENARIO.grid_km * 1000.0)
    return ClusterMatchingService.build(
        build_instance(DEFAULT_SCENARIO),
        inner=inner,
        num_shards=4,
        config=config,
        seed=DEFAULT_SCENARIO.seed,
        **kwargs,
    )


def test_context_manager_shutdown_mid_recovery_reaps_everything():
    """Satellite: ``__exit__`` while a respawn is in flight leaves no orphans."""
    service = _build_service("pruneGreedyDP", restart_delay_s=1e9)
    dispatcher = service.dispatcher
    with service:
        requests = service.instance.requests
        for request in requests[:10]:
            service.submit(request)
        victim = dispatcher._handles[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(timeout=10)
        for request in requests[10:20]:
            service.submit(request)  # detection -> respawn scheduled, never due
        assert dispatcher.worker_failures == 1
        assert victim.health == ShardHealth.RECOVERING
    # context exit: supervisor threads joined, every child reaped
    assert dispatcher._supervisor.threads_alive() == 0
    assert dispatcher._supervisor.spawned() == []
    assert dispatcher.child_processes() == []
    assert not any(handle.process.is_alive() for handle in dispatcher._handles)


def test_close_is_idempotent_after_recovery():
    chaos = run_chaos(
        "pruneGreedyDP",
        [Fault("kill", shard=0, at_command=1, phase="before_send")],
    )
    assert chaos.orphans == []


# ------------------------------------------------------ telemetry plumbing


def test_snapshot_exposes_recovery_telemetry():
    service = _build_service("pruneGreedyDP")
    dispatcher = service.dispatcher
    with service:
        requests = service.instance.requests
        for request in requests[:5]:
            service.submit(request)
        snapshot = service.snapshot()
        assert snapshot.worker_failures == 0
        assert snapshot.shard_health == ("up", "up", "up", "up")
        victim = dispatcher._handles[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(timeout=10)
        for request in requests[5:15]:
            service.submit(request)
        snapshot = service.snapshot()
        assert snapshot.worker_failures == 1
        assert snapshot.shard_health[0] in (ShardHealth.RECOVERING, ShardHealth.UP)
        assert snapshot.worker_restarts + (
            1 if snapshot.shard_health[0] == ShardHealth.RECOVERING else 0
        ) >= 1


def test_result_extra_metrics_carry_recovery_counters():
    chaos = run_chaos(
        "batch",
        [Fault("kill", shard=0, at_command=1, phase="before_send")],
        batch_interval=30.0,
    )
    extra = chaos.result.extra
    assert extra["cluster_worker_failures"] == 1.0
    assert extra["cluster_worker_restarts"] == 1.0
    assert extra["cluster_degraded_dispatches"] >= 1.0
    assert "cluster_retries" in extra
    assert extra["cluster_shard0_health"] == 2.0  # adopted back: up
    row = chaos.result.as_row()
    assert row["cluster_worker_failures"] == 1.0
    assert row["cluster_worker_restarts"] == 1.0


def test_chaos_injector_delay_plan_reaches_workers():
    injector = ChaosInjector([Fault("delay", shard=2, at_command=5, seconds=0.25)])
    assert injector.delays_for(2) == ((5, 0.25),)
    assert injector.delays_for(0) == ()


def test_shard_oracle_warm_starts_from_artifact_store_after_refresh(tmp_path):
    from repro.cluster.worker import make_shard_oracle
    from repro.network.generators import grid_city
    from repro.network.graph import connected_components
    from repro.network.oracle import DistanceOracle

    scenario = DEFAULT_SCENARIO
    network = grid_city(rows=6, columns=6, block_metres=200.0,
                        removed_block_fraction=0.0, seed=7)
    oracle = DistanceOracle(network, backend="ch", artifact_dir=tmp_path)
    instance = build_instance(scenario, network=network, oracle=oracle)

    config = DispatcherConfig(
        grid_cell_metres=scenario.grid_km * 1000.0, shard_oracle_backend="ch"
    )
    shard_oracle = make_shard_oracle(instance, config, num_shards=2)
    # shard-local oracles inherit the instance oracle's artifact store
    assert shard_oracle.artifact_store is not None
    assert shard_oracle.artifact_store.root == oracle.artifact_store.root

    # close an edge the way a worker replays an update: the authoritative
    # oracle refreshes (and saves) first, then the shard-local one — which
    # must warm-start from the store instead of rebuilding
    edge = None
    for candidate in list(network.edges()):
        removed = network.remove_edge(candidate.u, candidate.v)
        safe = connected_components(network).count == 1
        network.add_edge(removed.u, removed.v, length=removed.length,
                         speed=removed.speed, road_class=removed.road_class)
        if safe:
            edge = removed
            break
    assert edge is not None
    network.remove_edge(edge.u, edge.v)
    oracle.refresh_topology()
    assert oracle.artifact_loaded is False  # fresh build, now persisted
    shard_oracle.refresh_topology()
    assert shard_oracle.artifact_loaded is True

    # warm-started answers are bitwise-identical to a cold build
    fresh = DistanceOracle(network, backend="ch")
    vertices = sorted(network.vertices())
    for source in vertices[:4]:
        for target in vertices[-4:]:
            assert shard_oracle.distance(source, target) == fresh.distance(
                source, target
            )

    # reopen round-trip: both oracles warm-start the original topology
    network.add_edge(edge.u, edge.v, length=edge.length, speed=edge.speed,
                     road_class=edge.road_class)
    oracle.refresh_topology()
    shard_oracle.refresh_topology()
    assert oracle.artifact_loaded is True
    assert shard_oracle.artifact_loaded is True
