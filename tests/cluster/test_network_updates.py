"""Fault-tolerant live network updates on the cluster serving path.

The properties gated here:

* a timed close→reopen plan broadcast through
  :meth:`MatchingService.apply_network_update` reaches every shard worker —
  each replica rebuilds and acknowledges under the update barrier;
* the replay is deterministic and, under kills anchored **before**,
  **during**, or **after** an update window, bit-identical to the fault-free
  run with the same plan — recovery rebuilds replicas from the authoritative
  fleet plus the cumulative mutation journal;
* a respawn scheduled *before* an update but adopted *after* it replays the
  missed mutation from the journal (``update_replayed``) instead of serving
  a stale map;
* a shard serving degraded (restart budget exhausted) keeps following
  updates through the authoritative network it shares with the front door;
* the replica ordinal cursor is exactly-once: a duplicated update command is
  refused, never silently re-applied;
* update telemetry flows end to end (dispatcher counters → snapshot →
  ``SimulationResult.extra``).
"""

import pytest

from repro.cluster.messages import NetworkUpdateCommand, UpdateReply
from repro.cluster.recovery import ShardHealth
from repro.cluster.service import ClusterMatchingService
from repro.dispatch import DispatcherConfig
from repro.workloads.scenarios import build_instance

from tests.cluster.chaos import (
    DEFAULT_SCENARIO,
    DEFAULT_SHARDS,
    Fault,
    closure_plan,
    run_chaos,
)


@pytest.fixture(scope="module")
def plan():
    # derived from a throwaway instance: closure_plan only reads edge
    # metadata and release times, so the runs can build fresh instances
    return closure_plan(build_instance(DEFAULT_SCENARIO))


@pytest.fixture(scope="module")
def baseline(plan):
    """The fault-free run with the update plan — the bit-identity anchor."""
    return run_chaos("pruneGreedyDP", updates=plan)


def _events(log, name):
    return [entry for entry in log if entry[0] == name]


# ------------------------------------------------------------ broadcast path


def test_broadcast_reaches_every_shard(baseline, plan):
    assert baseline.network_updates == len(plan) == 2
    assert baseline.replica_rebuilds == (2,) * DEFAULT_SHARDS
    assert baseline.worker_failures == 0
    assert baseline.shard_health == (ShardHealth.UP,) * DEFAULT_SHARDS
    assert baseline.orphans == []
    # one update_sent + one update_ack per shard per update, nothing dropped
    for shard in range(DEFAULT_SHARDS):
        sent = [e for e in _events(baseline.recovery_log, "update_sent") if e[1] == shard]
        acked = [e for e in _events(baseline.recovery_log, "update_ack") if e[1] == shard]
        assert len(sent) == len(plan)
        assert len(acked) == len(plan)


def test_update_run_rerun_is_deterministic(baseline, plan):
    again = run_chaos("pruneGreedyDP", updates=plan)
    assert again.fingerprint == baseline.fingerprint
    assert again.replica_rebuilds == baseline.replica_rebuilds


def test_update_telemetry_flows_to_result_extra(baseline):
    extra = baseline.result.extra
    assert extra["cluster_network_updates"] == 2.0
    assert "cluster_update_ack_retries" in extra
    for shard in range(DEFAULT_SHARDS):
        assert extra[f"cluster_shard{shard}_replica_rebuilds"] == 2.0
    row = baseline.result.as_row()
    assert row["cluster_network_updates"] == 2.0


# ------------------------------------------- kills anchored to update windows


@pytest.mark.parametrize("window", ["before", "during", "after"])
def test_kill_in_update_window_bit_identical(baseline, plan, window):
    chaos = run_chaos(
        "pruneGreedyDP",
        [Fault("kill", shard=1, at_update=0, window=window)],
        updates=plan,
    )
    assert chaos.fired == [(f"kill_{window}_update", 1, 0)]
    assert chaos.worker_failures == 1
    assert chaos.worker_restarts == 1
    assert chaos.fingerprint == baseline.fingerprint
    assert chaos.orphans == []


def test_respawn_replays_missed_update_from_journal(baseline, plan):
    # killed long before the closure; the respawn only becomes ready after
    # the closure landed, so adoption must replay it from the journal
    chaos = run_chaos(
        "pruneGreedyDP",
        [Fault("kill", shard=0, at_command=1)],
        updates=plan,
        restart_delay_s=plan[0].time + 1.0,
    )
    assert chaos.fired == [("kill", 0, 1)]
    assert ("update_replayed", 0) in chaos.recovery_log
    assert chaos.fingerprint == baseline.fingerprint
    # the replayed update counts as a rebuild: totals match the clean run
    assert chaos.replica_rebuilds == baseline.replica_rebuilds
    assert chaos.orphans == []


def test_degraded_shard_follows_updates(baseline, plan):
    # no restart budget: shard 2 serves degraded through both updates
    chaos = run_chaos(
        "pruneGreedyDP",
        [Fault("kill", shard=2, at_command=1)],
        updates=plan,
        max_restarts=0,
    )
    assert chaos.shard_health[2] == ShardHealth.DEGRADED
    assert ("update_degraded", 2) in chaos.recovery_log
    assert chaos.degraded_dispatches >= 1
    # degraded serving shares the authoritative (already-updated) network:
    # the outcome stays bit-identical to the fault-free run
    assert chaos.fingerprint == baseline.fingerprint
    assert chaos.orphans == []


def test_kill_during_update_batch_windows_bit_identical(plan):
    base = run_chaos("batch", batch_interval=30.0, updates=plan)
    chaos = run_chaos(
        "batch",
        [Fault("kill", shard=0, at_update=1, window="during")],
        batch_interval=30.0,
        updates=plan,
    )
    assert chaos.fired == [("kill_during_update", 0, 1)]
    assert chaos.fingerprint == base.fingerprint
    assert chaos.orphans == []


# ---------------------------------------------------------------- exactly-once


def test_worker_rejects_duplicate_update():
    instance = build_instance(DEFAULT_SCENARIO)
    service = ClusterMatchingService.build(
        instance,
        inner="pruneGreedyDP",
        num_shards=2,
        config=DispatcherConfig(
            grid_cell_metres=DEFAULT_SCENARIO.grid_km * 1000.0
        ),
        seed=DEFAULT_SCENARIO.seed,
    )
    with service:
        for request in instance.requests[:5]:
            service.submit(request)
        edge = next(iter(instance.network.edges()))
        service.close_edge(edge.u, edge.v)
        dispatcher = service.dispatcher
        update = dispatcher._applied_updates[0]
        handle = dispatcher._handles[0]
        # re-send the already-applied update raw over the pipe: the replica
        # ordinal cursor must refuse it rather than mutate twice
        handle.connection.send(
            NetworkUpdateCommand(dispatcher.fleet.clock, update)
        )
        reply = handle.connection.recv()
        assert isinstance(reply, UpdateReply)
        assert reply.error is not None and "out of sync" in reply.error
