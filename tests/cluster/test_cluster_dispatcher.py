"""Behaviour of the cluster front door: construction, lifecycle, backpressure."""

import pytest

from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.service import ClusterMatchingService
from repro.dispatch import DispatcherConfig, make_dispatcher
from repro.exceptions import ConfigurationError
from repro.service import DecisionStatus, RejectionReason
from repro.workloads.scenarios import ScenarioConfig, build_instance

_CONFIG = ScenarioConfig(city="small-grid", num_workers=10, num_requests=40, seed=13)


def _cluster_service(**kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("config", DispatcherConfig(grid_cell_metres=_CONFIG.grid_km * 1000.0))
    return ClusterMatchingService.build(build_instance(_CONFIG), **kwargs)


class TestConstruction:
    def test_registry_prefix_builds_the_front_door(self):
        dispatcher = make_dispatcher("cluster:GreedyDP", DispatcherConfig(num_shards=4))
        assert isinstance(dispatcher, ClusterDispatcher)
        assert dispatcher.name == "cluster:GreedyDP"
        assert dispatcher.num_shards == 4

    def test_bare_cluster_defaults_to_prune_greedy_dp(self):
        dispatcher = make_dispatcher("cluster")
        assert dispatcher.name == "cluster:pruneGreedyDP"

    def test_unknown_inner_rejected(self):
        with pytest.raises(KeyError):
            make_dispatcher("cluster:magic")

    def test_nested_wrappers_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterDispatcher(inner="sharded:pruneGreedyDP")
        with pytest.raises(ConfigurationError):
            ClusterDispatcher(inner="cluster:batch")

    def test_non_positive_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterDispatcher(num_shards=0)

    def test_always_requires_exact_positions(self):
        # replica determinism needs the authoritative fleet materialised at
        # every decision point, matching the sharded dispatcher at K > 1
        assert ClusterDispatcher(inner="pruneGreedyDP").requires_exact_positions


class TestLifecycle:
    def test_workers_spawn_and_context_manager_reaps_them(self):
        service = _cluster_service()
        dispatcher = service.dispatcher
        processes = [handle.process for handle in dispatcher._handles]
        assert len(processes) == 2
        assert all(process.is_alive() for process in processes)
        with service:
            pass
        assert not any(process.is_alive() for process in processes)

    def test_close_is_idempotent(self):
        service = _cluster_service()
        service.close()
        service.close()
        assert not any(h.process.is_alive() for h in service.dispatcher._handles)

    def test_drain_returns_result_and_leaves_no_orphans(self):
        service = _cluster_service()
        for request in service.instance.requests[:10]:
            service.submit(request)
        result = service.drain()
        assert result.total_requests == 10
        assert not any(h.process.is_alive() for h in service.dispatcher._handles)

    def test_extra_metrics_surface_cluster_counters(self):
        service = _cluster_service()
        result = service.replay()
        for key in (
            "cluster_shards",
            "cluster_local_hits",
            "cluster_escalations",
            "cluster_cross_shard_moves",
            "cluster_commands_sent",
            "cluster_worker_failures",
        ):
            assert key in result.extra
        assert result.extra["cluster_shards"] == 2.0
        assert result.extra["cluster_worker_failures"] == 0.0


class TestBackpressure:
    def test_saturated_window_admission_rejects(self):
        service = _cluster_service(
            inner="batch",
            num_shards=1,
            max_pending=2,
            config=DispatcherConfig(
                grid_cell_metres=_CONFIG.grid_km * 1000.0, batch_interval=1e6
            ),
        )
        with service:
            decisions = [service.submit(r) for r in service.instance.requests[:4]]
            assert [d.status for d in decisions[:2]] == [DecisionStatus.DEFERRED] * 2
            for decision in decisions[2:]:
                assert decision.status is DecisionStatus.REJECTED
                assert decision.reason is RejectionReason.SATURATED
            assert service.snapshot().queue_depth == 2
            assert service.dispatcher.admission_rejections == 2

    def test_unsaturated_window_reports_queue_depth(self):
        service = _cluster_service(
            inner="batch",
            config=DispatcherConfig(
                grid_cell_metres=_CONFIG.grid_km * 1000.0, batch_interval=1e6
            ),
        )
        with service:
            for request in service.instance.requests[:3]:
                service.submit(request)
            snapshot = service.snapshot()
            assert snapshot.queue_depth == 3
            assert snapshot.decisions_pending == 3
