"""Cluster replay must be metric-identical to the in-process sharded wrapper.

The shard worker replicas are kept deterministic through three ingredients
(plan snapshots, membership deltas, clock-replayed member advancement — see
``repro.cluster.worker``), so at the same shard count K a cluster replay and
an in-process ``sharded:<inner>`` replay see identical state at every
decision point and must produce identical metrics.

At K>1 the agreement is bit-exact: both regimes materialise exact positions
at every arrival and flush, the replicas replay the authoritative
``advance_all`` clock sequence, and decision anchors either match the
authoritative floats or are adopted from the replica's left-to-right
edge-cost summation, which the in-process run performs identically.

At K=1 the in-process wrapper deliberately stays bit-locked to the *lazy*
unsharded dispatcher (workers advance only when touched), while the cluster
must materialise exact positions to keep its replica in sync. Partial
advancement's anchor arithmetic is grouping-dependent
(``start_time = arr[0] + moved_cost`` associates edge costs by advancement
step), so the two regimes place pickup/dropoff stamps a few ULP apart.
Decisions and served sets still match exactly; the derived means are gated
at 1e-9 relative.
"""

import pytest

from repro.dispatch import DispatcherConfig, make_dispatcher
from repro.simulation.simulator import Simulator
from repro.workloads.scenarios import ScenarioConfig, build_instance

_CONFIG = ScenarioConfig(city="small-grid", num_workers=14, num_requests=80, seed=2018)


def _fingerprint(algorithm: str, shards: int) -> dict:
    instance = build_instance(_CONFIG)
    config = DispatcherConfig(
        grid_cell_metres=_CONFIG.grid_km * 1000.0, num_shards=shards
    )
    dispatcher = make_dispatcher(algorithm, config)
    try:
        result = Simulator(instance, dispatcher).run()
    finally:
        close = getattr(dispatcher, "close", None)
        if close is not None:
            close()
    return {
        "served": result.served_requests,
        "unified_cost": result.unified_cost,
        "mean_wait": result.mean_wait_seconds,
        "mean_detour": result.mean_detour_ratio,
    }


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("inner", ["pruneGreedyDP", "batch"])
def test_cluster_matches_in_process_sharded(inner, shards):
    expected = _fingerprint(f"sharded:{inner}", shards)
    actual = _fingerprint(f"cluster:{inner}", shards)
    if shards > 1:
        assert actual == expected
    else:
        # lazy (in-process K=1) vs exact-positions (cluster) float
        # association — see module docstring
        assert actual["served"] == expected["served"]
        for key in ("unified_cost", "mean_wait", "mean_detour"):
            assert actual[key] == pytest.approx(expected[key], rel=1e-9, abs=1e-9)
