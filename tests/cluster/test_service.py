"""ClusterMatchingService: spec routing, serialisation, determinism."""

import pytest

from repro.cluster.service import ClusterMatchingService
from repro.exceptions import ConfigurationError
from repro.service import MatchingService, PlatformSpec
from repro.workloads.scenarios import ScenarioConfig

_SCENARIO = ScenarioConfig(city="small-grid", num_workers=10, num_requests=40, seed=13)


def _cluster_spec(num_shards: int = 2, **cluster_knobs) -> PlatformSpec:
    return (PlatformSpec.builder()
            .city(_SCENARIO.city, seed=_SCENARIO.seed)
            .workload(num_workers=_SCENARIO.num_workers,
                      num_requests=_SCENARIO.num_requests)
            .dispatcher("pruneGreedyDP")
            .cluster(num_shards=num_shards, **cluster_knobs)
            .build())


class TestSpecRouting:
    def test_from_spec_builds_cluster_facade(self):
        with MatchingService.from_spec(_cluster_spec()) as service:
            assert isinstance(service, ClusterMatchingService)
            assert service.dispatcher.name == "cluster:pruneGreedyDP"
            assert service.dispatcher.num_shards == 2

    def test_cluster_spec_round_trips_through_dict(self):
        spec = _cluster_spec(max_pending=7, dispatch_timeout=12.5)
        restored = PlatformSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.cluster
        assert restored.cluster_max_pending == 7
        assert restored.cluster_dispatch_timeout == 12.5

    def test_cluster_spec_rejects_legacy_engine(self):
        with pytest.raises(ConfigurationError):
            (PlatformSpec.builder()
             .city(_SCENARIO.city, seed=_SCENARIO.seed)
             .workload(num_workers=4, num_requests=10)
             .cluster(num_shards=2)
             .engine("legacy")
             .build())

    def test_cluster_spec_rejects_bad_backpressure_limit(self):
        with pytest.raises(ConfigurationError):
            _cluster_spec(max_pending=0)


class TestDeterminism:
    def test_same_spec_replays_identically(self):
        # satellite: per-worker RNG seeding (derive_spawned_seed) makes two
        # replays of one spec bit-identical despite process-level parallelism
        fingerprints = []
        for _ in range(2):
            with MatchingService.from_spec(_cluster_spec()) as service:
                result = service.replay()
            fingerprints.append((
                result.served_requests,
                result.rejected_requests,
                result.unified_cost,
                result.mean_wait_seconds,
                result.mean_detour_ratio,
            ))
        assert fingerprints[0] == fingerprints[1]
