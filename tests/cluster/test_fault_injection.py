"""Crashed-worker resilience: kill a shard worker mid-replay.

The front door must detect the dead worker (broken pipe / liveness probe),
keep the shard serving — in-process degraded failover until the supervisor's
respawned worker is adopted — finish the replay with a complete
:class:`SimulationResult`, and reap every child process, supervisor respawns
included: no hang, no orphans, no dropped request.
"""

import os
import signal

from repro.dispatch import DispatcherConfig
from repro.cluster.service import ClusterMatchingService
from repro.workloads.scenarios import ScenarioConfig, build_instance

_CONFIG = ScenarioConfig(city="small-grid", num_workers=14, num_requests=80, seed=2018)


def _service(inner: str, **config_overrides) -> ClusterMatchingService:
    config = DispatcherConfig(
        grid_cell_metres=_CONFIG.grid_km * 1000.0, **config_overrides
    )
    return ClusterMatchingService.build(
        build_instance(_CONFIG), inner=inner, num_shards=4, config=config
    )


def _kill_one_mid_replay(service: ClusterMatchingService):
    dispatcher = service.dispatcher
    processes = [handle.process for handle in dispatcher._handles]
    requests = service.instance.requests
    half = len(requests) // 2
    for request in requests[:half]:
        service.submit(request)
    victim = next(h for h in dispatcher._handles if h.alive)
    os.kill(victim.process.pid, signal.SIGKILL)
    victim.process.join(timeout=10)
    for request in requests[half:]:
        service.submit(request)
    result = service.drain()
    return result, dispatcher, processes


def test_killed_worker_immediate_dispatch():
    result, dispatcher, processes = _kill_one_mid_replay(_service("pruneGreedyDP"))
    assert result.total_requests == _CONFIG.num_requests
    assert result.served_requests + result.rejected_requests == _CONFIG.num_requests
    assert result.served_requests > 0
    assert dispatcher.worker_failures >= 1
    assert result.extra["cluster_worker_failures"] >= 1.0
    # exactly one failure: the other three shards shut down cleanly at drain
    assert dispatcher.worker_failures == 1
    # the supervisor respawned the victim and the front door adopted it back
    assert dispatcher.worker_restarts == 1
    assert result.extra["cluster_worker_restarts"] == 1.0
    assert not any(process.is_alive() for process in processes)
    # supervisor respawns are reaped too — nothing left running anywhere
    assert dispatcher.child_processes() == []
    assert dispatcher._supervisor.spawned() == []


def test_killed_worker_batch_windows_re_deferred():
    result, dispatcher, processes = _kill_one_mid_replay(
        _service("batch", batch_interval=30.0)
    )
    assert result.total_requests == _CONFIG.num_requests
    assert result.served_requests + result.rejected_requests == _CONFIG.num_requests
    assert result.served_requests > 0
    assert dispatcher.worker_failures >= 1
    assert not any(process.is_alive() for process in processes)
    assert dispatcher.child_processes() == []
