"""Tests for the synthetic request-stream and fleet generators."""

import pytest

from repro.core.objective import ObjectiveConfig, PenaltyPolicy
from repro.network.generators import grid_city
from repro.network.oracle import DistanceOracle
from repro.workloads.requests import (
    RequestGeneratorConfig,
    generate_requests,
    poisson_request_stream,
)
from repro.workloads.workers import WorkerGeneratorConfig, generate_workers


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=8, columns=8, block_metres=200.0, removed_block_fraction=0.0, seed=4)


@pytest.fixture(scope="module")
def oracle(network):
    return DistanceOracle(network, precompute="apsp")


@pytest.fixture(scope="module")
def objective():
    return ObjectiveConfig(alpha=1.0, penalty_policy=PenaltyPolicy.PROPORTIONAL, penalty_value=10.0)


class TestRequestGenerator:
    def test_count_and_ordering(self, network, oracle, objective):
        config = RequestGeneratorConfig(count=60, seed=1)
        requests = generate_requests(network, oracle, objective, config)
        assert len(requests) == 60
        releases = [request.release_time for request in requests]
        assert releases == sorted(releases)
        assert len({request.id for request in requests}) == 60

    def test_deadline_offset(self, network, oracle, objective):
        config = RequestGeneratorConfig(count=20, deadline_seconds=300.0, seed=2)
        requests = generate_requests(network, oracle, objective, config)
        for request in requests:
            assert request.deadline == pytest.approx(request.release_time + 300.0)

    def test_penalty_is_proportional_to_direct_distance(self, network, oracle, objective):
        config = RequestGeneratorConfig(count=20, seed=3)
        requests = generate_requests(network, oracle, objective, config)
        for request in requests:
            direct = oracle.distance(request.origin, request.destination)
            assert request.penalty == pytest.approx(10.0 * direct, rel=1e-9)

    def test_vertices_exist_and_trips_nontrivial(self, network, oracle, objective):
        config = RequestGeneratorConfig(count=30, min_direct_seconds=30.0, seed=4)
        requests = generate_requests(network, oracle, objective, config)
        vertices = set(network.vertices())
        for request in requests:
            assert request.origin in vertices and request.destination in vertices
            assert request.origin != request.destination

    def test_deterministic_given_seed(self, network, oracle, objective):
        config = RequestGeneratorConfig(count=25, seed=5)
        first = generate_requests(network, oracle, objective, config)
        second = generate_requests(network, oracle, objective, config)
        assert [(r.origin, r.destination, r.release_time) for r in first] == [
            (r.origin, r.destination, r.release_time) for r in second
        ]

    def test_poisson_stream_respects_horizon(self, network, oracle, objective):
        requests = poisson_request_stream(
            network, oracle, objective, rate_per_second=0.05, horizon_seconds=1000.0,
            deadline_seconds=600.0, seed=6,
        )
        assert requests, "expected a non-empty stream"
        assert all(request.release_time <= 1000.0 for request in requests)
        releases = [request.release_time for request in requests]
        assert releases == sorted(releases)


class TestWorkerGenerator:
    def test_count_and_unique_ids(self, network):
        workers = generate_workers(network, WorkerGeneratorConfig(count=40, seed=1))
        assert len(workers) == 40
        assert len({worker.id for worker in workers}) == 40

    def test_locations_are_valid_vertices(self, network):
        workers = generate_workers(network, WorkerGeneratorConfig(count=40, seed=2))
        vertices = set(network.vertices())
        assert all(worker.initial_location in vertices for worker in workers)

    def test_capacities_positive(self, network):
        workers = generate_workers(network, WorkerGeneratorConfig(count=40, nominal_capacity=3, seed=3))
        assert all(worker.capacity >= 1 for worker in workers)

    def test_deterministic_given_seed(self, network):
        first = generate_workers(network, WorkerGeneratorConfig(count=20, seed=4))
        second = generate_workers(network, WorkerGeneratorConfig(count=20, seed=4))
        assert [(w.initial_location, w.capacity) for w in first] == [
            (w.initial_location, w.capacity) for w in second
        ]
