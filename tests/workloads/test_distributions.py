"""Tests for the demand distributions (hotspots, rush hours, capacities)."""

import numpy as np
import pytest

from repro.network.generators import grid_city
from repro.utils.rng import make_rng
from repro.workloads.distributions import (
    HotspotModel,
    NYC_PASSENGER_COUNT_DISTRIBUTION,
    RushHourProfile,
    sample_request_capacity,
    sample_worker_capacity,
)


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=8, columns=8, block_metres=200.0, removed_block_fraction=0.0, seed=2)


class TestHotspotModel:
    def test_samples_are_valid_vertices(self, network):
        model = HotspotModel(network=network, rng=make_rng(1))
        vertices = set(network.vertices())
        for _ in range(50):
            assert model.sample_vertex() in vertices

    def test_pairs_are_distinct(self, network):
        model = HotspotModel(network=network, rng=make_rng(2))
        for _ in range(50):
            origin, destination = model.sample_pair()
            assert origin != destination

    def test_demand_is_spatially_concentrated(self, network):
        """With no uniform share, samples concentrate on few vertices."""
        model = HotspotModel(network=network, num_hotspots=2, uniform_share=0.0,
                             spread_fraction=0.02, rng=make_rng(3))
        draws = [model.sample_vertex() for _ in range(300)]
        unique = len(set(draws))
        assert unique < network.num_vertices / 2

    def test_deterministic_given_seed(self, network):
        first = HotspotModel(network=network, rng=make_rng(7))
        second = HotspotModel(network=network, rng=make_rng(7))
        assert [first.sample_vertex() for _ in range(20)] == [
            second.sample_vertex() for _ in range(20)
        ]


class TestRushHourProfile:
    def test_release_times_sorted_and_bounded(self):
        profile = RushHourProfile(horizon_seconds=3600.0)
        times = profile.sample_release_times(200, make_rng(4))
        assert len(times) == 200
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0.0 and times[-1] <= 3600.0

    def test_peaks_have_higher_rate_than_base(self):
        profile = RushHourProfile(horizon_seconds=3600.0)
        assert profile.rate_at(0.75) > profile.rate_at(0.05)
        assert profile.rate_at(0.33) > profile.rate_at(0.05)

    def test_zero_count(self):
        profile = RushHourProfile(horizon_seconds=3600.0)
        assert profile.sample_release_times(0, make_rng(5)).size == 0

    def test_evening_peak_attracts_mass(self):
        profile = RushHourProfile(horizon_seconds=1.0)
        times = profile.sample_release_times(2000, make_rng(6))
        evening = np.sum((times > 0.65) & (times < 0.85))
        early = np.sum((times > 0.0) & (times < 0.2))
        assert evening > early


class TestCapacities:
    def test_request_capacity_within_nyc_support(self):
        rng = make_rng(8)
        support = set(NYC_PASSENGER_COUNT_DISTRIBUTION)
        for _ in range(100):
            assert sample_request_capacity(rng) in support

    def test_request_capacity_mostly_single_passenger(self):
        rng = make_rng(9)
        draws = [sample_request_capacity(rng) for _ in range(500)]
        assert draws.count(1) > 250

    def test_worker_capacity_at_least_one(self):
        rng = make_rng(10)
        assert all(sample_worker_capacity(rng, 1) >= 1 for _ in range(100))

    def test_worker_capacity_centres_on_nominal(self):
        rng = make_rng(11)
        draws = [sample_worker_capacity(rng, 10) for _ in range(500)]
        assert abs(np.mean(draws) - 10) < 0.5
