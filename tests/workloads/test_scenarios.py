"""Tests for scenario construction (city + fleet + requests -> instance)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.scenarios import (
    CITY_BUILDERS,
    ScenarioConfig,
    build_instance,
    build_network,
    dataset_statistics,
    make_oracle,
    paper_default_scenario,
)


class TestScenarioConfig:
    def test_with_overrides(self):
        base = ScenarioConfig(num_workers=100)
        changed = base.with_overrides(num_workers=50, deadline_minutes=5.0)
        assert changed.num_workers == 50
        assert changed.deadline_minutes == 5.0
        assert base.num_workers == 100  # original untouched

    def test_objective_reflects_alpha_and_penalty(self):
        config = ScenarioConfig(alpha=0.5, penalty_factor=20.0)
        objective = config.objective()
        assert objective.alpha == 0.5
        assert objective.penalty_for(2.0) == pytest.approx(40.0)

    def test_paper_default_scenario(self):
        config = paper_default_scenario("chengdu-like", num_requests=10)
        assert config.city == "chengdu-like"
        assert config.num_requests == 10
        assert config.deadline_minutes == 10.0
        assert config.grid_km == 2.0


class TestBuilders:
    def test_unknown_city_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown city"):
            build_network(ScenarioConfig(city="atlantis"))

    def test_all_registered_cities_build(self):
        for city in CITY_BUILDERS:
            network = build_network(ScenarioConfig(city=city, seed=3))
            assert network.num_vertices > 10

    def test_build_instance_small(self):
        config = ScenarioConfig(city="small-grid", num_workers=5, num_requests=20, seed=1)
        instance = build_instance(config)
        instance.validate()
        assert instance.num_workers == 5
        assert instance.num_requests == 20
        assert instance.objective.alpha == config.alpha

    def test_build_instance_reuses_network_and_oracle(self):
        config = ScenarioConfig(city="small-grid", num_workers=4, num_requests=10, seed=1)
        network = build_network(config)
        oracle = make_oracle(network, config)
        instance = build_instance(config, network=network, oracle=oracle)
        assert instance.network is network
        assert instance.oracle is oracle

    def test_same_seed_same_instance(self):
        config = ScenarioConfig(city="small-grid", num_workers=4, num_requests=15, seed=9)
        first = build_instance(config)
        second = build_instance(config)
        assert [(r.origin, r.destination) for r in first.requests] == [
            (r.origin, r.destination) for r in second.requests
        ]
        assert [w.initial_location for w in first.workers] == [
            w.initial_location for w in second.workers
        ]

    def test_different_seeds_differ(self):
        base = ScenarioConfig(city="small-grid", num_workers=4, num_requests=15)
        first = build_instance(base.with_overrides(seed=1))
        second = build_instance(base.with_overrides(seed=2))
        assert [(r.origin, r.destination) for r in first.requests] != [
            (r.origin, r.destination) for r in second.requests
        ]


class TestOracleSelection:
    def test_auto_uses_apsp_for_small_networks(self):
        config = ScenarioConfig(city="small-grid", seed=1)
        network = build_network(config)
        oracle = make_oracle(network, config)
        assert oracle._apsp is not None

    def test_explicit_hub_labels(self):
        config = ScenarioConfig(city="small-grid", seed=1, use_hub_labels=True)
        network = build_network(config)
        oracle = make_oracle(network, config)
        assert oracle.has_hub_labels

    def test_none_mode_builds_plain_oracle(self):
        config = ScenarioConfig(city="small-grid", seed=1, oracle_precompute="none")
        network = build_network(config)
        oracle = make_oracle(network, config)
        assert not oracle.has_hub_labels
        assert oracle._apsp is None


class TestDatasetStatistics:
    def test_table4_fields(self):
        stats = dataset_statistics(ScenarioConfig(city="small-grid", num_requests=123, seed=1))
        assert stats["dataset"] == "small-grid"
        assert stats["requests"] == 123.0
        assert stats["vertices"] > 0
        assert stats["edges"] > 0
