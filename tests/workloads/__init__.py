"""Test package."""
