"""End-to-end integration tests: full scenarios, all algorithms, paper-shaped claims.

These tests assert the qualitative findings of Section 6 at a miniature scale:

* every algorithm resolves every request and keeps all routes feasible;
* pruneGreedyDP / GreedyDP dominate tshare on unified cost and served rate;
* the Lemma 8 pruning saves shortest-distance queries without changing the
  outcome quality;
* more workers / longer deadlines never hurt the unified cost.
"""

import pytest

from repro.dispatch import ALGORITHMS, DispatcherConfig, make_dispatcher
from repro.simulation.simulator import run_simulation
from repro.workloads.scenarios import ScenarioConfig, build_instance, build_network, make_oracle

_CONFIG = ScenarioConfig(
    city="small-grid",
    num_workers=12,
    num_requests=70,
    deadline_minutes=10.0,
    penalty_factor=10.0,
    seed=11,
)
_NETWORK = build_network(_CONFIG)
_ORACLE = make_oracle(_NETWORK, _CONFIG)
_PAPER_ALGORITHMS = ["pruneGreedyDP", "GreedyDP", "tshare", "kinetic", "batch"]


def _run(algorithm: str, config: ScenarioConfig = _CONFIG):
    instance = build_instance(config, network=_NETWORK, oracle=_ORACLE)
    dispatcher = make_dispatcher(algorithm, DispatcherConfig(grid_cell_metres=config.grid_km * 1000))
    return run_simulation(instance, dispatcher)


@pytest.fixture(scope="module")
def results():
    return {algorithm: _run(algorithm) for algorithm in _PAPER_ALGORITHMS}


class TestAllAlgorithms:
    def test_registry_and_run_complete(self, results):
        assert set(results) <= set(ALGORITHMS)
        for algorithm, result in results.items():
            assert result.total_requests == _CONFIG.num_requests, algorithm
            assert result.served_requests + result.rejected_requests == result.total_requests

    def test_no_deadline_violations(self, results):
        for algorithm, result in results.items():
            assert result.deadline_violations == 0, algorithm

    def test_unified_cost_consistency(self, results):
        for algorithm, result in results.items():
            assert result.unified_cost == pytest.approx(
                result.alpha * result.total_travel_cost + result.total_penalty
            ), algorithm

    def test_served_rate_within_bounds(self, results):
        for result in results.values():
            assert 0.0 <= result.served_rate <= 1.0


class TestPaperShapedClaims:
    def test_dp_algorithms_not_worse_than_tshare_on_unified_cost(self, results):
        # At this miniature scale tshare's lossy candidate search rarely fires,
        # so the costs are near-identical; the clear separation the paper reports
        # emerges at the benchmark scale (see benchmarks/bench_fig3_workers.py).
        assert results["pruneGreedyDP"].unified_cost <= results["tshare"].unified_cost * 1.05
        assert results["GreedyDP"].unified_cost <= results["tshare"].unified_cost * 1.05

    def test_dp_algorithms_serve_at_least_as_many_as_tshare(self, results):
        assert results["pruneGreedyDP"].served_rate >= results["tshare"].served_rate
        assert results["GreedyDP"].served_rate >= results["tshare"].served_rate

    def test_pruning_saves_queries_without_losing_quality(self, results):
        prune = results["pruneGreedyDP"]
        plain = results["GreedyDP"]
        assert prune.distance_queries <= plain.distance_queries
        assert prune.unified_cost <= plain.unified_cost * 1.10

    def test_prune_greedy_close_to_kinetic_quality(self, results):
        """The paper finds pruneGreedyDP competitive with kinetic on effectiveness."""
        assert results["pruneGreedyDP"].unified_cost <= results["kinetic"].unified_cost * 1.25


class TestMonotonicity:
    def test_more_workers_do_not_hurt(self):
        small = _run("pruneGreedyDP", _CONFIG.with_overrides(num_workers=6))
        large = _run("pruneGreedyDP", _CONFIG.with_overrides(num_workers=24))
        assert large.unified_cost <= small.unified_cost * 1.05
        assert large.served_rate >= small.served_rate - 0.05

    def test_longer_deadlines_do_not_hurt(self):
        tight = _run("pruneGreedyDP", _CONFIG.with_overrides(deadline_minutes=5.0))
        loose = _run("pruneGreedyDP", _CONFIG.with_overrides(deadline_minutes=25.0))
        assert loose.served_rate >= tight.served_rate - 0.05
        assert loose.unified_cost <= tight.unified_cost * 1.05
