"""Integration tests of the three special-case reductions of Section 3.2.

The URPSM objective with specific (alpha, penalty) settings must behave like
the classic objectives it generalises:

* alpha=0, p_r=1      -> the unified cost equals the number of unserved requests;
* alpha=1, p_r=inf    -> every feasible request is served (no voluntary rejection);
* alpha=c_w, p_r=c_r*dis -> minimising UC maximises platform revenue (Eq. 4).
"""

import math

import pytest

from repro.core.instance import URPSMInstance
from repro.core.objective import (
    max_revenue_objective,
    max_served_requests_objective,
    min_total_distance_objective,
    platform_revenue,
)
from repro.dispatch import DispatcherConfig, PruneGreedyDP
from repro.simulation.simulator import run_simulation
from repro.workloads.requests import RequestGeneratorConfig, generate_requests
from repro.workloads.scenarios import ScenarioConfig, build_network, make_oracle
from repro.workloads.workers import WorkerGeneratorConfig, generate_workers

_CONFIG = ScenarioConfig(city="small-grid", seed=13)
_NETWORK = build_network(_CONFIG)
_ORACLE = make_oracle(_NETWORK, _CONFIG)


def _instance(objective, num_workers=10, num_requests=50, deadline_seconds=600.0):
    workers = generate_workers(_NETWORK, WorkerGeneratorConfig(count=num_workers, seed=3))
    requests = generate_requests(
        _NETWORK,
        _ORACLE,
        objective,
        RequestGeneratorConfig(count=num_requests, deadline_seconds=deadline_seconds, seed=4),
    )
    return URPSMInstance(
        network=_NETWORK,
        oracle=_ORACLE,
        workers=workers,
        requests=requests,
        objective=objective,
        name="reduction-test",
    )


def _run(instance):
    return run_simulation(instance, PruneGreedyDP(DispatcherConfig(grid_cell_metres=1000.0)))


class TestMaxServedRequests:
    def test_unified_cost_equals_unserved_count(self):
        objective = max_served_requests_objective()
        result = _run(_instance(objective))
        assert result.unified_cost == pytest.approx(result.rejected_requests)

    def test_no_decision_rejections_with_alpha_zero(self):
        objective = max_served_requests_objective()
        result = _run(_instance(objective))
        assert result.decision_rejections == 0


class TestMinTotalDistance:
    def test_infinite_penalty_forces_service_of_feasible_requests(self):
        objective = min_total_distance_objective()
        result = _run(_instance(objective, num_workers=14, deadline_seconds=1200.0))
        # the decision phase can never reject (penalty inf); rejections can only
        # come from physical infeasibility
        assert result.decision_rejections == 0
        if result.rejected_requests == 0:
            assert math.isfinite(result.unified_cost)
            assert result.unified_cost == pytest.approx(result.total_travel_cost)

    def test_unified_cost_is_travel_cost_when_all_served(self):
        objective = min_total_distance_objective()
        result = _run(_instance(objective, num_workers=20, num_requests=25,
                                deadline_seconds=1800.0))
        if result.rejected_requests == 0:
            assert result.unified_cost == pytest.approx(result.total_travel_cost)


class TestMaxRevenue:
    def test_revenue_identity_holds_end_to_end(self):
        """Eq. (4): revenue = c_r * sum_direct - UC for every executed plan."""
        worker_cost, fare = 1.0, 12.0
        objective = max_revenue_objective(worker_cost, fare)
        instance = _instance(objective)
        result = _run(instance)

        direct = {
            request.id: _ORACLE.distance(request.origin, request.destination)
            for request in instance.requests
        }
        total_direct = sum(direct.values())
        served_ids = set(direct) - {r.id for r in _rejected_requests(instance, result)}
        revenue = platform_revenue(
            result.total_travel_cost,
            [direct[request_id] for request_id in served_ids],
            worker_cost,
            fare,
        )
        assert revenue == pytest.approx(fare * total_direct - result.unified_cost, rel=1e-6)


def _rejected_requests(instance, result):
    """Reconstruct the rejected set from the penalty total (ids are not stored)."""
    # The metrics expose counts, not identities; re-run the accounting by
    # matching total penalty: rejected requests have penalty = fare * direct.
    # For the identity test we only need the *served* direct distances, so we
    # re-simulate cheaply to collect outcomes.
    from repro.simulation.simulator import Simulator
    from repro.dispatch import PruneGreedyDP, DispatcherConfig

    simulator = Simulator(instance, PruneGreedyDP(DispatcherConfig(grid_cell_metres=1000.0)))
    simulator.run()
    return simulator.metrics.rejected_requests
