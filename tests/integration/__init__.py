"""Test package."""
