"""Tests for the ``repro scenarios`` and ``repro stress`` sub-commands."""

import json

from repro.cli import main


class TestScenariosCommand:
    def test_lists_presets(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "rush-hour-chaos" in out
        assert "baseline" in out
        assert "empty (plain base config)" in out

    def test_describes_one_preset(self, capsys):
        assert main(["scenarios", "multi-class"]) == 0
        out = capsys.readouterr().out
        assert "workload classes" in out
        assert "ridesharing" in out

    def test_json_output_is_loadable(self, capsys):
        assert main(["scenarios", "mixed-fleet", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "mixed-fleet"
        assert len(payload["fleet"]) == 3

    def test_unknown_preset_suggests(self, capsys):
        assert main(["scenarios", "mixed-flet"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "mixed-fleet" in err


class TestStressCommand:
    def test_small_sweep_writes_report(self, tmp_path, capsys):
        output = tmp_path / "BENCH_stress.json"
        code = main([
            "stress", "--scenarios", "1", "--seed", "99",
            "--dispatchers", "pruneGreedyDP", "--reruns", "0",
            "--quiet", "--output", str(output),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 crashes" in out
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["ok"] is True
        assert payload["total_runs"] == 1
