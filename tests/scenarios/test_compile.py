"""Tests for scenario-program compilation (fleet/workload/surge/disruption lowering)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    DemandSurge,
    FleetClass,
    NetworkDisruption,
    ScenarioProgram,
    WorkloadClass,
    compile_program,
    get_preset,
)
from repro.scenarios.compile import BASE_CLASS
from repro.network.graph import connected_components
from repro.workloads.scenarios import ScenarioConfig, build_instance


@pytest.fixture(scope="module")
def config():
    return ScenarioConfig(city="small-grid", num_workers=8, num_requests=40,
                          horizon_hours=1.5, seed=11)


class TestEmptyProgram:
    def test_bit_identical_to_build_instance(self, config):
        base = build_instance(config)
        compiled = compile_program(config)
        assert compiled.instance.workers == base.workers
        assert compiled.instance.requests == base.requests
        assert compiled.timeline == ()
        assert set(compiled.request_classes.values()) == {BASE_CLASS}
        assert set(compiled.worker_classes.values()) == {BASE_CLASS}

    def test_compile_is_deterministic(self, config):
        program = get_preset("rush-hour-chaos")
        first = compile_program(config, program)
        second = compile_program(config, program)
        assert first.instance.requests == second.instance.requests
        assert first.instance.workers == second.instance.workers
        assert first.timeline == second.timeline


class TestFleetClasses:
    def test_classes_replace_scalar_fleet(self, config):
        program = ScenarioProgram(
            fleet=(
                FleetClass(name="sedan", count=5, capacity=2),
                FleetClass(name="van", count=3, capacity=6),
            )
        )
        compiled = compile_program(config, program)
        workers = compiled.instance.workers
        assert len(workers) == 8
        assert [worker.id for worker in workers] == list(range(8))
        by_class = {}
        for worker in workers:
            by_class.setdefault(compiled.worker_classes[worker.id], []).append(worker)
        assert len(by_class["sedan"]) == 5
        assert len(by_class["van"]) == 3
        # a class *is* its capacity (no Gaussian draw)
        assert {worker.capacity for worker in by_class["sedan"]} == {2}
        assert {worker.capacity for worker in by_class["van"]} == {6}

    def test_class_shifts_materialise(self, config):
        program = ScenarioProgram(
            fleet=(
                FleetClass(name="day", count=6, shift_hours=0.5),
                FleetClass(name="always", count=2),
            )
        )
        compiled = compile_program(config, program)
        dynamics = compiled.instance.dynamics
        assert dynamics is not None
        shifted = {shift.worker_id for shift in dynamics.shifts}
        day_ids = {wid for wid, label in compiled.worker_classes.items() if label == "day"}
        assert shifted and shifted <= day_ids


class TestWorkloadClasses:
    def test_classes_replace_scalar_stream(self, config):
        program = ScenarioProgram(
            workload=(
                WorkloadClass(name="ride", count=20),
                WorkloadClass(name="food", count=10, deadline_minutes=5.0, capacity=1),
            )
        )
        compiled = compile_program(config, program)
        requests = compiled.instance.requests
        assert len(requests) == 30
        assert [request.id for request in requests] == list(range(30))
        releases = [request.release_time for request in requests]
        assert releases == sorted(releases)
        food = [r for r in requests if compiled.request_classes[r.id] == "food"]
        assert len(food) == 10
        assert all(request.capacity == 1 for request in food)
        assert all(
            request.deadline == pytest.approx(request.release_time + 300.0)
            for request in food
        )


class TestSurges:
    def test_surge_adds_burst_inside_window(self, config):
        surge = DemandSurge(name="concert", start_hours=0.5, duration_minutes=10.0,
                            count=15, capacity=2)
        compiled = compile_program(config, ScenarioProgram(surges=(surge,)))
        requests = compiled.instance.requests
        assert len(requests) == config.num_requests + 15
        surge_requests = [
            r for r in requests if compiled.request_classes[r.id] == "surge:concert"
        ]
        assert len(surge_requests) == 15
        start, end = 0.5 * 3600.0, 0.5 * 3600.0 + 600.0
        assert all(start <= r.release_time <= end for r in surge_requests)
        assert all(r.capacity == 2 for r in surge_requests)

    def test_surge_origins_are_concentrated(self, config):
        surge = DemandSurge(name="concert", start_hours=0.5, duration_minutes=10.0,
                            count=20, spread_fraction=0.02)
        compiled = compile_program(config, ScenarioProgram(surges=(surge,)))
        origins = {
            r.origin
            for r in compiled.instance.requests
            if compiled.request_classes[r.id] == "surge:concert"
        }
        # 20 bursty trips from a tight venue cluster reuse far fewer origins
        # than 20 city-wide trips would
        assert len(origins) <= 10


class TestDisruptions:
    def test_timeline_is_chronological_and_reopens(self, config):
        program = ScenarioProgram(
            disruptions=(
                NetworkDisruption(name="works", start_hours=0.25, duration_minutes=30.0,
                                  edge_count=2),
                NetworkDisruption(name="collapse", start_hours=1.0, edge_count=1),
            )
        )
        compiled = compile_program(config, program)
        times = [action.time for action in compiled.timeline]
        assert times == sorted(times)
        kinds = [(action.kind, action.disruption) for action in compiled.timeline]
        assert ("close", "works") in kinds
        assert ("reopen", "works") in kinds
        assert ("close", "collapse") in kinds
        close = next(a for a in compiled.timeline if a.disruption == "works" and
                     a.kind == "close")
        reopen = next(a for a in compiled.timeline if a.disruption == "works" and
                      a.kind == "reopen")
        assert reopen.edges == close.edges
        assert reopen.time == pytest.approx(close.time + 1800.0)

    def test_closures_never_disconnect(self, config):
        program = ScenarioProgram(
            disruptions=(
                NetworkDisruption(name=f"blast-{i}", start_hours=0.1 * (i + 1),
                                  edge_count=3)
                for i in range(3)
            )
        )
        program = ScenarioProgram(name="blasts",
                                  disruptions=tuple(program.disruptions))
        compiled = compile_program(config, program)
        network = compiled.instance.network
        for action in compiled.timeline:
            action.apply(network)
            components = connected_components(network)
            assert components.count == 1, f"disconnected after {action.disruption}"

    def test_apply_round_trip_restores_edges(self, config):
        program = ScenarioProgram(
            disruptions=(
                NetworkDisruption(name="works", start_hours=0.25, duration_minutes=10.0,
                                  edge_count=2),
            )
        )
        compiled = compile_program(config, program)
        network = compiled.instance.network
        close, reopen = compiled.timeline
        before = network.num_edges
        close.apply(network)
        assert network.num_edges == before - len(close.edges)
        reopen.apply(network)
        assert network.num_edges == before
        for spec in close.edges:
            edge = network.edge(spec.u, spec.v)
            assert edge.length == spec.length
            assert edge.speed == spec.speed


class TestValidationAtCompile:
    def test_invalid_program_rejected(self, config):
        program = ScenarioProgram(fleet=(FleetClass(name="bad", count=-1),))
        with pytest.raises(ConfigurationError):
            compile_program(config, program)
