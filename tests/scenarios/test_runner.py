"""Tests for running scenario programs through the serving code path."""

from dataclasses import replace

import pytest

from repro.dispatch.registry import DispatcherSpec
from repro.exceptions import ConfigurationError, UnsupportedNetworkUpdateError
from repro.scenarios import (
    NetworkDisruption,
    ScenarioProgram,
    get_preset,
    run_program,
)
from repro.service.facade import replay_workload
from repro.service.spec import PlatformSpec
from repro.workloads.scenarios import ScenarioConfig


@pytest.fixture(scope="module")
def config():
    return ScenarioConfig(city="small-grid", num_workers=8, num_requests=40,
                          horizon_hours=1.5, seed=11)


@pytest.fixture(scope="module")
def spec(config):
    return PlatformSpec(scenario=config)


class TestEmptyProgram:
    def test_reproduces_plain_replay_bit_for_bit(self, spec):
        plain = replay_workload(PlatformSpec(scenario=spec.scenario))
        empty = run_program(PlatformSpec(scenario=spec.scenario)).result
        assert empty.unified_cost == plain.unified_cost
        assert empty.total_travel_cost == plain.total_travel_cost
        assert empty.served_requests == plain.served_requests
        assert empty.rejected_requests == plain.rejected_requests
        assert empty.distance_queries == plain.distance_queries


class TestDisruptionRuns:
    def test_street_closures_preset_completes(self, spec):
        outcome = run_program(spec, get_preset("street-closures"))
        assert outcome.result.total_requests == 40
        assert outcome.compiled.has_disruptions
        assert outcome.result.served_requests > 0

    def test_disruption_changes_outcome(self, spec):
        baseline = run_program(spec).result
        disrupted = run_program(
            spec,
            ScenarioProgram(
                disruptions=(
                    NetworkDisruption(name="big", start_hours=0.2, edge_count=8),
                )
            ),
        ).result
        # the same workload routed around 8 missing streets costs differently
        assert disrupted.total_travel_cost != baseline.total_travel_cost

    def test_rerun_is_deterministic(self, spec):
        program = get_preset("street-closures")
        first = run_program(spec, program).result
        second = run_program(spec, program).result
        assert first.unified_cost == second.unified_cost
        assert first.total_travel_cost == second.total_travel_cost
        assert first.served_requests == second.served_requests

    def test_legacy_engine_rejected(self, config):
        legacy_spec = PlatformSpec(scenario=config, engine="legacy")
        with pytest.raises(ConfigurationError, match="legacy"):
            run_program(legacy_spec, get_preset("street-closures"))


class TestClassStats:
    def test_multi_class_stats_cover_every_class(self, config):
        spec = PlatformSpec(
            scenario=ScenarioConfig(city="small-grid", num_workers=10,
                                    num_requests=30, horizon_hours=1.5, seed=3)
        )
        outcome = run_program(spec, get_preset("multi-class"))
        assert set(outcome.class_stats) >= {"ridesharing", "food", "parcel"}
        for label, stats in outcome.class_stats.items():
            assert stats["served"] <= stats["requests"], label
            assert 0.0 <= stats["served_rate"] <= 1.0, label

    def test_completion_observer_fires(self, spec):
        seen = []
        outcome = run_program(spec, on_completion=lambda record, now: seen.append(record))
        assert len(seen) == len(outcome.completions)
        assert len(seen) >= outcome.result.served_requests


class TestClusterRuns:
    def test_mixed_fleet_on_cluster(self, config):
        cluster_spec = PlatformSpec(
            scenario=config,
            dispatcher=DispatcherSpec.parse("cluster:pruneGreedyDP"),
        )
        outcome = run_program(cluster_spec, get_preset("mixed-fleet"))
        assert outcome.result.total_requests == 40
        assert len(outcome.compiled.instance.workers) == 100
        assert outcome.result.served_requests > 0

    def test_street_closures_on_cluster_bit_identical_to_sharded(self, config):
        program = get_preset("street-closures")
        sharded_spec = PlatformSpec(
            scenario=config,
            dispatcher=replace(
                DispatcherSpec.parse("sharded:pruneGreedyDP"), num_shards=4
            ),
        )
        cluster_spec = PlatformSpec(
            scenario=config,
            dispatcher=replace(
                DispatcherSpec.parse("cluster:pruneGreedyDP"), num_shards=4
            ),
        )
        sharded = run_program(sharded_spec, program).result
        cluster_outcome = run_program(cluster_spec, program)
        cluster = cluster_outcome.result
        # the PR 6 contract extends to disruption programs: bit-identical at
        # K>1 on served metrics (distance_queries differ by design — replicas
        # duplicate oracle work)
        assert cluster.served_requests == sharded.served_requests
        assert cluster.rejected_requests == sharded.rejected_requests
        assert cluster.unified_cost == sharded.unified_cost
        assert cluster.mean_wait_seconds == sharded.mean_wait_seconds
        assert cluster.mean_detour_ratio == sharded.mean_detour_ratio
        # the broadcast telemetry counts one update per timed action
        timeline = len(cluster_outcome.compiled.timeline)
        assert cluster.extra["cluster_network_updates"] == float(timeline)

    def test_bare_notify_raises_typed_error(self, config):
        cluster_spec = PlatformSpec(
            scenario=config,
            dispatcher=DispatcherSpec.parse("cluster:pruneGreedyDP"),
        )
        from repro.service.facade import MatchingService

        with MatchingService.from_spec(cluster_spec) as service:
            with pytest.raises(UnsupportedNetworkUpdateError):
                service.dispatcher.notify_network_changed()
