"""Tests for the seeded scenario fuzzer / stress harness."""

import pytest

from repro.scenarios import (
    default_stress_dispatchers,
    generate_stress_scenario,
    get_preset,
    list_presets,
    run_stress,
    suggest_presets,
)
from repro.exceptions import ConfigurationError


class TestGeneration:
    def test_same_key_same_scenario(self):
        first = generate_stress_scenario(2018, 3)
        second = generate_stress_scenario(2018, 3)
        assert first == second

    def test_different_indices_differ(self):
        configs = [generate_stress_scenario(2018, i)[0] for i in range(6)]
        assert len({config.seed for config in configs}) == 6

    def test_scenarios_are_small(self):
        for index in range(10):
            config, program = generate_stress_scenario(7, index)
            assert 6 <= config.num_workers <= 14
            assert 30 <= config.num_requests <= 80
            program.validate()

    def test_allow_disruptions_flag(self):
        for index in range(10):
            _config, program = generate_stress_scenario(7, index, allow_disruptions=False)
            assert program.disruptions == ()


class TestDefaultDispatchers:
    def test_covers_registry_plus_distribution_modes(self):
        names = default_stress_dispatchers()
        assert "pruneGreedyDP" in names
        assert "batch" in names
        assert "sharded:pruneGreedyDP" in names
        assert "cluster:pruneGreedyDP" in names


class TestSweep:
    def test_small_sweep_is_clean_and_deterministic(self):
        kwargs = dict(master_seed=99, reruns=1)
        report = run_stress(2, ["pruneGreedyDP", "batch"], **kwargs)
        assert report.ok, (report.crashes, report.nondeterministic, report.violations)
        assert len(report.runs) == 4
        again = run_stress(2, ["pruneGreedyDP", "batch"], **kwargs)
        assert [run["served_rate"] for run in report.runs] == [
            run["served_rate"] for run in again.runs
        ]

    def test_report_round_trips_to_dict(self):
        report = run_stress(1, ["pruneGreedyDP"], master_seed=5, reruns=0)
        payload = report.to_dict()
        assert payload["ok"] == report.ok
        assert payload["total_runs"] == 1
        assert payload["master_seed"] == 5

    def test_crash_is_reported_not_raised(self, monkeypatch):
        import repro.scenarios.stress as stress_module

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic dispatcher explosion")

        monkeypatch.setattr(stress_module, "run_program", boom)
        report = run_stress(1, ["pruneGreedyDP"], master_seed=5, reruns=0)
        assert not report.ok
        assert len(report.crashes) == 1
        assert "synthetic dispatcher explosion" in report.crashes[0]["error"]
        assert report.runs[0]["crashed"] is True


class TestPresetLookup:
    def test_every_preset_validates(self):
        for name in list_presets():
            get_preset(name).validate()

    def test_suggestions_on_typo(self):
        assert "mixed-fleet" in suggest_presets("mixed-flet")
        with pytest.raises(ConfigurationError, match="did you mean"):
            get_preset("mixed-flet")

    def test_baseline_is_empty(self):
        assert get_preset("baseline").is_empty
