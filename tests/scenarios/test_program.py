"""Tests for the declarative scenario-program value types."""

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    DemandSurge,
    FleetClass,
    NetworkDisruption,
    ScenarioProgram,
    WorkloadClass,
)


def kitchen_sink() -> ScenarioProgram:
    return ScenarioProgram(
        name="sink",
        description="everything at once",
        fleet=(
            FleetClass(name="sedan", count=5, capacity=2, shift_hours=1.0, hotspot_share=0.3),
            FleetClass(name="van", count=2, capacity=6),
        ),
        workload=(
            WorkloadClass(name="ride", count=20),
            WorkloadClass(name="food", count=10, deadline_minutes=8.0, capacity=1,
                          penalty_factor=12.0),
        ),
        surges=(
            DemandSurge(name="concert", start_hours=1.0, duration_minutes=15.0, count=12),
        ),
        disruptions=(
            NetworkDisruption(name="closure", start_hours=0.5, duration_minutes=30.0,
                              edge_count=2),
        ),
    )


class TestValidation:
    def test_kitchen_sink_validates(self):
        assert kitchen_sink().validate() is not None

    def test_empty_program_is_empty(self):
        program = ScenarioProgram()
        assert program.is_empty
        program.validate()

    def test_non_empty_program_is_not_empty(self):
        assert not kitchen_sink().is_empty

    @pytest.mark.parametrize(
        "component",
        [
            FleetClass(name="x", count=-1),
            FleetClass(name="x", count=1, capacity=0),
            FleetClass(name="x", count=1, shift_hours=-0.5),
            FleetClass(name="x", count=1, hotspot_share=1.5),
            FleetClass(name="", count=1),
            WorkloadClass(name="x", count=-2),
            WorkloadClass(name="x", count=1, deadline_minutes=0.0),
            WorkloadClass(name="x", count=1, penalty_factor=-1.0),
            WorkloadClass(name="x", count=1, capacity=0),
            DemandSurge(name="x", start_hours=-1.0, duration_minutes=10.0, count=5),
            DemandSurge(name="x", start_hours=1.0, duration_minutes=0.0, count=5),
            DemandSurge(name="x", start_hours=1.0, duration_minutes=10.0, count=5,
                        spread_fraction=0.0),
            NetworkDisruption(name="x", start_hours=-0.1),
            NetworkDisruption(name="x", start_hours=0.1, duration_minutes=0.0),
            NetworkDisruption(name="x", start_hours=0.1, edge_count=0),
        ],
    )
    def test_invalid_components_rejected(self, component):
        with pytest.raises(ConfigurationError):
            component.validate()

    def test_duplicate_component_names_rejected(self):
        program = ScenarioProgram(
            surges=(
                DemandSurge(name="s", start_hours=1.0, duration_minutes=10.0, count=5),
                DemandSurge(name="s", start_hours=2.0, duration_minutes=10.0, count=5),
            )
        )
        with pytest.raises(ConfigurationError, match="duplicate surge name"):
            program.validate()

    def test_all_zero_fleet_rejected(self):
        program = ScenarioProgram(fleet=(FleetClass(name="ghost", count=0),))
        with pytest.raises(ConfigurationError, match="zero workers"):
            program.validate()

    def test_without_disruptions_strips_only_disruptions(self):
        program = kitchen_sink()
        stripped = program.without_disruptions()
        assert stripped.disruptions == ()
        assert stripped.fleet == program.fleet
        assert stripped.surges == program.surges


class TestSerialisation:
    def test_dict_round_trip(self):
        program = kitchen_sink()
        assert ScenarioProgram.from_dict(program.to_dict()) == program

    def test_unknown_program_field_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            ScenarioProgram.from_dict({"surgees": []})

    def test_unknown_component_field_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            ScenarioProgram.from_dict(
                {"fleet": [{"name": "a", "count": 3, "capcity": 2}]}
            )

    def test_component_list_required(self):
        with pytest.raises(ConfigurationError, match="must be a list"):
            ScenarioProgram.from_dict({"fleet": {"name": "a", "count": 3}})

    def test_json_file_round_trip(self, tmp_path):
        program = kitchen_sink()
        path = tmp_path / "program.json"
        program.to_json(path)
        assert ScenarioProgram.from_file(path) == program

    def test_toml_file_loads(self, tmp_path):
        path = tmp_path / "program.toml"
        path.write_text(
            """
name = "tomltest"
description = "loaded from toml"

[[fleet]]
name = "sedan"
count = 4
capacity = 2

[[surges]]
name = "concert"
start_hours = 1.0
duration_minutes = 15.0
count = 10
""",
            encoding="utf-8",
        )
        program = ScenarioProgram.from_file(path)
        assert program.name == "tomltest"
        assert program.fleet[0].capacity == 2
        assert program.surges[0].count == 10

    def test_unsupported_suffix_rejected(self, tmp_path):
        path = tmp_path / "program.yaml"
        path.write_text("name: nope\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unsupported scenario program format"):
            ScenarioProgram.from_file(path)
