"""Test package."""
