"""Tests for live road-network mutation (street closures and reopenings).

Covers the three layers the scenario runtime relies on: edge removal on the
graph itself, lazy CSR invalidation, and full oracle re-derivation via
``refresh_topology`` — including the content-addressed artifact store keying
on the mutated network's content hash.
"""

import pytest

from repro.artifacts.store import ArtifactStore
from repro.exceptions import RoadNetworkError
from repro.network.generators import grid_city
from repro.network.graph import connected_components
from repro.network.oracle import DistanceOracle, network_content_hash
from repro.network.shortest_path import shortest_distance


@pytest.fixture()
def network():
    return grid_city(rows=6, columns=6, block_metres=200.0,
                     removed_block_fraction=0.0, seed=1)


def _some_edge(network):
    # pick a removable edge whose loss keeps the grid connected
    for edge in network.edges():
        removed = network.remove_edge(edge.u, edge.v)
        if connected_components(network).count == 1:
            network.add_edge(removed.u, removed.v, length=removed.length,
                             speed=removed.speed, road_class=removed.road_class)
            return removed
        network.add_edge(removed.u, removed.v, length=removed.length,
                         speed=removed.speed, road_class=removed.road_class)
    raise AssertionError("no removable edge found")


class TestRemoveEdge:
    def test_removes_both_directions(self, network):
        edge = _some_edge(network)
        before = network.num_edges
        removed = network.remove_edge(edge.u, edge.v)
        assert network.num_edges == before - 1
        assert not network.has_edge(edge.u, edge.v)
        assert edge.v not in network.neighbours(edge.u)
        assert edge.u not in network.neighbours(edge.v)
        assert removed.length == edge.length

    def test_missing_edge_raises(self, network):
        edge = _some_edge(network)
        network.remove_edge(edge.u, edge.v)
        with pytest.raises(RoadNetworkError):
            network.remove_edge(edge.u, edge.v)

    def test_reopen_restores_metadata(self, network):
        edge = _some_edge(network)
        removed = network.remove_edge(edge.u, edge.v)
        network.add_edge(removed.u, removed.v, length=removed.length,
                         speed=removed.speed, road_class=removed.road_class)
        restored = network.edge(edge.u, edge.v)
        assert restored.length == edge.length
        assert restored.speed == edge.speed
        assert restored.road_class == edge.road_class


class TestCSRInvalidation:
    def test_csr_rebuilds_after_removal(self, network):
        csr_before = network.csr
        edge = _some_edge(network)
        network.remove_edge(edge.u, edge.v)
        csr_after = network.csr
        assert csr_after is not csr_before
        assert len(csr_after.indices) == len(csr_before.indices) - 2
        # rebuilt rows no longer list the removed neighbour
        u_pos = csr_after.position_of(edge.u)
        row = csr_after.indices[csr_after.indptr[u_pos]:csr_after.indptr[u_pos + 1]]
        assert csr_after.position_of(edge.v) not in row

    def test_csr_cached_when_topology_unchanged(self, network):
        assert network.csr is network.csr


class TestOracleRefresh:
    @pytest.mark.parametrize("backend", ["dijkstra", "apsp", "ch", "hub_labels"])
    def test_distances_exact_after_close_and_reopen(self, network, backend):
        oracle = DistanceOracle(network, backend=backend)
        edge = _some_edge(network)
        baseline = oracle.distance(edge.u, edge.v)

        network.remove_edge(edge.u, edge.v)
        oracle.refresh_topology()
        detour = oracle.distance(edge.u, edge.v)
        assert detour == pytest.approx(shortest_distance(network, edge.u, edge.v))
        assert detour > baseline

        network.add_edge(edge.u, edge.v, length=edge.length, speed=edge.speed,
                         road_class=edge.road_class)
        oracle.refresh_topology()
        assert oracle.distance(edge.u, edge.v) == pytest.approx(baseline)

    def test_counters_accumulate_across_refresh(self, network):
        oracle = DistanceOracle(network, backend="dijkstra")
        vertices = sorted(network.vertices())
        oracle.distance(vertices[0], vertices[-1])
        queries_before = oracle.counters.distance_queries
        assert queries_before > 0
        edge = _some_edge(network)
        network.remove_edge(edge.u, edge.v)
        oracle.refresh_topology()
        oracle.distance(vertices[0], vertices[-1])
        assert oracle.counters.distance_queries > queries_before


class TestArtifactStoreAfterMutation:
    def test_content_hash_tracks_topology(self, network, tmp_path):
        oracle = DistanceOracle(network, backend="apsp", artifact_dir=tmp_path)
        original_hash = oracle.content_hash
        assert original_hash == network_content_hash(network)

        edge = _some_edge(network)
        network.remove_edge(edge.u, edge.v)
        oracle.refresh_topology()
        assert oracle.content_hash == network_content_hash(network)
        assert oracle.content_hash != original_hash
        # the mutated topology is a fresh build, saved under its own hash
        assert oracle.artifact_loaded is False

        network.add_edge(edge.u, edge.v, length=edge.length, speed=edge.speed,
                         road_class=edge.road_class)
        oracle.refresh_topology()
        assert oracle.content_hash == original_hash
        # reopening restores the original topology: its artifact is cached
        assert oracle.artifact_loaded is True

    def test_warm_start_bitwise_equal_to_fresh_build(self, network, tmp_path):
        # first oracle builds + saves both topologies (close, then reopen)
        oracle = DistanceOracle(network, backend="ch", artifact_dir=tmp_path)
        edge = _some_edge(network)
        network.remove_edge(edge.u, edge.v)
        oracle.refresh_topology()
        network.add_edge(edge.u, edge.v, length=edge.length, speed=edge.speed,
                         road_class=edge.road_class)
        oracle.refresh_topology()
        assert oracle.artifact_loaded is True

        # a second oracle over the closed topology warm-starts from the
        # store and answers bitwise-identically to a cold build
        network.remove_edge(edge.u, edge.v)
        warm = DistanceOracle(network, backend="ch", artifact_dir=tmp_path)
        assert warm.artifact_loaded is True
        fresh = DistanceOracle(network, backend="ch")
        vertices = sorted(network.vertices())
        for source in vertices[:4]:
            for target in vertices[-4:]:
                assert warm.distance(source, target) == fresh.distance(source, target)

    def test_mutated_artifacts_coexist_in_store(self, network, tmp_path):
        oracle = DistanceOracle(network, backend="apsp", artifact_dir=tmp_path)
        first_hash = oracle.content_hash
        edge = _some_edge(network)
        network.remove_edge(edge.u, edge.v)
        oracle.refresh_topology()
        second_hash = oracle.content_hash
        store = ArtifactStore(tmp_path)
        assert store.has(first_hash, "apsp")
        assert store.has(second_hash, "apsp")
