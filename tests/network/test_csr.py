"""CSR adjacency structure and CSR-vs-dict shortest-path equivalence.

The CSR rewrite must be *exactly* equivalent to the seed's dict-of-dict
search: the property tests assert equality (``==`` on floats, not approx)
between :func:`~repro.network.shortest_path.dijkstra` (CSR) and
:func:`~repro.network.shortest_path.dijkstra_reference` (the seed code) on
random generator networks.
"""

import numpy as np
import pytest

from repro.exceptions import RoadNetworkError
from repro.network.generators import grid_city, random_geometric_city, ring_radial_city
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import (
    bidirectional_dijkstra,
    bidirectional_dijkstra_reference,
    dijkstra,
    dijkstra_reference,
    path_cost,
    single_source_distances_array,
)
from repro.utils.geometry import Point


def _networks():
    yield grid_city(rows=6, columns=7, block_metres=220.0, seed=11)
    yield ring_radial_city(rings=4, radials=9, ring_spacing_metres=500.0, seed=3)
    for seed in (1, 7, 42):
        yield random_geometric_city(num_vertices=120, seed=seed)


NETWORKS = list(_networks())
NETWORK_IDS = [f"{network.name}-{index}" for index, network in enumerate(NETWORKS)]


class TestCSRStructure:
    @pytest.mark.parametrize("network", NETWORKS, ids=NETWORK_IDS)
    def test_csr_mirrors_adjacency(self, network):
        csr = network.csr
        assert csr.num_vertices == network.num_vertices
        assert csr.indptr[-1] == len(csr.indices) == 2 * network.num_edges
        for position, vertex in enumerate(csr.vertex_ids_list):
            neighbours = {
                csr.vertex_ids_list[csr.indices_list[slot]]: csr.costs_list[slot]
                for slot in range(csr.indptr_list[position], csr.indptr_list[position + 1])
            }
            assert neighbours == network.neighbours(vertex)

    def test_csr_invalidated_on_mutation(self):
        network = RoadNetwork()
        network.add_vertex(0, Point(0, 0))
        network.add_vertex(1, Point(100, 0))
        network.add_edge(0, 1)
        first = network.csr
        assert first is network.csr  # cached while unchanged
        network.add_vertex(2, Point(200, 0))
        network.add_edge(1, 2)
        rebuilt = network.csr
        assert rebuilt is not first
        assert rebuilt.num_vertices == 3

    def test_positions_of_rejects_unknown_vertices(self):
        network = grid_city(rows=3, columns=3, block_metres=100.0, seed=0)
        csr = network.csr
        known = list(network.vertices())[:3]
        assert list(csr.positions_of(known)) == [csr.position[v] for v in known]
        with pytest.raises(RoadNetworkError):
            csr.positions_of([known[0], 10_000_000])


class TestDijkstraEquivalence:
    @pytest.mark.parametrize("network", NETWORKS, ids=NETWORK_IDS)
    def test_full_search_equals_reference(self, network):
        for source in sorted(network.vertices())[::17]:
            assert dijkstra(network, source) == dijkstra_reference(network, source)

    @pytest.mark.parametrize("network", NETWORKS, ids=NETWORK_IDS)
    def test_bounded_search_equals_reference(self, network):
        source = sorted(network.vertices())[0]
        full = dijkstra_reference(network, source)
        bound = float(np.median(list(full.values())))
        assert dijkstra(network, source, max_cost=bound) == dijkstra_reference(
            network, source, max_cost=bound
        )

    @pytest.mark.parametrize("network", NETWORKS, ids=NETWORK_IDS)
    def test_targeted_search_equals_reference(self, network):
        vertices = sorted(network.vertices())
        source, targets = vertices[0], set(vertices[-4:])
        csr_result = dijkstra(network, source, targets=targets)
        reference = dijkstra_reference(network, source, targets=targets)
        for target in targets:
            assert csr_result[target] == reference[target]

    @pytest.mark.parametrize("network", NETWORKS, ids=NETWORK_IDS)
    def test_array_variant_matches_dict(self, network):
        source = sorted(network.vertices())[1]
        array = single_source_distances_array(network, source)
        expected = dijkstra_reference(network, source)
        csr = network.csr
        for vertex, distance in expected.items():
            assert array[csr.position[vertex]] == distance


class TestBidirectionalEquivalence:
    @pytest.mark.parametrize("network", NETWORKS, ids=NETWORK_IDS)
    def test_cost_matches_reference(self, network):
        vertices = sorted(network.vertices())
        pairs = list(zip(vertices[::13], reversed(vertices[::11])))[:8]
        for u, v in pairs:
            cost, path = bidirectional_dijkstra(network, u, v)
            reference_cost, _ = bidirectional_dijkstra_reference(network, u, v)
            assert cost == reference_cost
            assert path[0] == u and path[-1] == v
            assert path_cost(network, path) == pytest.approx(cost)
