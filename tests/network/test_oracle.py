"""Tests for the shared distance oracle (exact queries, lower bounds, counters)."""

import pytest

from repro.network.generators import grid_city
from repro.network.landmarks import build_landmark_index
from repro.network.oracle import DistanceOracle
from repro.network.shortest_path import shortest_distance


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=6, columns=6, block_metres=200.0, removed_block_fraction=0.0, seed=1)


@pytest.fixture(
    scope="module",
    params=[None, "hub_labels", "apsp"],
    ids=["dijkstra", "hub-labels", "apsp"],
)
def oracle(request, network):
    return DistanceOracle(network, precompute=request.param)


class TestExactQueries:
    def test_distance_matches_reference(self, oracle, network):
        vertices = sorted(network.vertices())
        pairs = [(vertices[0], vertices[-1]), (vertices[3], vertices[17]), (vertices[8], vertices[8])]
        for u, v in pairs:
            assert oracle.distance(u, v) == pytest.approx(shortest_distance(network, u, v))

    def test_distance_is_symmetric(self, oracle, network):
        vertices = sorted(network.vertices())
        u, v = vertices[2], vertices[29]
        assert oracle.distance(u, v) == pytest.approx(oracle.distance(v, u))

    def test_path_is_consistent_with_distance(self, oracle, network):
        vertices = sorted(network.vertices())
        u, v = vertices[0], vertices[20]
        path = oracle.path(u, v)
        assert path[0] == u and path[-1] == v
        total = sum(network.edge_cost(a, b) for a, b in zip(path, path[1:]))
        assert total == pytest.approx(oracle.distance(u, v))

    def test_path_same_vertex(self, oracle):
        assert oracle.path(4, 4) == [4]


class TestLowerBounds:
    def test_lower_bound_is_admissible(self, oracle, network):
        vertices = sorted(network.vertices())
        for u, v in zip(vertices[::5], vertices[::7]):
            assert oracle.lower_bound(u, v) <= oracle.distance(u, v) + 1e-9

    def test_lower_bound_zero_for_same_vertex(self, oracle):
        assert oracle.lower_bound(3, 3) == 0.0

    def test_landmark_index_tightens_bound(self, network):
        plain = DistanceOracle(network)
        with_landmarks = DistanceOracle(network, landmark_index=build_landmark_index(network, count=4))
        vertices = sorted(network.vertices())
        u, v = vertices[0], vertices[-1]
        assert with_landmarks.lower_bound(u, v) >= plain.lower_bound(u, v) - 1e-9
        assert with_landmarks.lower_bound(u, v) <= with_landmarks.distance(u, v) + 1e-9


class TestCountersAndCaches:
    def test_counters_increment(self, network):
        oracle = DistanceOracle(network)
        oracle.distance(0, 5)
        oracle.lower_bound(0, 5)
        oracle.path(0, 5)
        snapshot = oracle.counters.snapshot()
        assert snapshot["distance_queries"] == 1
        assert snapshot["lower_bound_queries"] == 1
        assert snapshot["path_queries"] == 1

    def test_reset_counters(self, network):
        oracle = DistanceOracle(network)
        oracle.distance(0, 5)
        oracle.reset_counters()
        assert oracle.counters.distance_queries == 0

    def test_cache_statistics_exposed(self, network):
        oracle = DistanceOracle(network)
        oracle.distance(0, 5)
        oracle.distance(0, 5)
        stats = oracle.cache_statistics()
        assert stats["distance_cache_size"] >= 1
        assert 0.0 <= stats["distance_cache_hit_rate"] <= 1.0

    def test_invalid_precompute_mode_rejected(self, network):
        with pytest.raises(ValueError, match="precompute"):
            DistanceOracle(network, precompute="bogus")

    def test_use_hub_labels_flag_builds_labels(self, network):
        oracle = DistanceOracle(network, use_hub_labels=True)
        assert oracle.has_hub_labels
        assert oracle.hub_labels is not None
