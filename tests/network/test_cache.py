"""Tests for the LRU cache used by the distance oracle."""

import pytest

from repro.network.cache import LRUCache


class TestLRUCache:
    def test_put_and_get(self):
        cache: LRUCache[str, int] = LRUCache(capacity=3)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert len(cache) == 1

    def test_missing_key_returns_none(self):
        cache: LRUCache[str, int] = LRUCache(capacity=3)
        assert cache.get("missing") is None

    def test_eviction_of_least_recently_used(self):
        cache: LRUCache[str, int] = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"
        cache.put("c", 3)       # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.statistics.evictions == 1

    def test_update_existing_key_does_not_evict(self):
        cache: LRUCache[str, int] = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10

    def test_statistics_track_hits_and_misses(self):
        cache: LRUCache[str, int] = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.hit_rate == pytest.approx(0.5)
        assert cache.statistics.lookups == 2

    def test_hit_rate_zero_when_unused(self):
        cache: LRUCache[str, int] = LRUCache(capacity=2)
        assert cache.statistics.hit_rate == 0.0

    def test_clear_preserves_statistics(self):
        cache: LRUCache[str, int] = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.statistics.hits == 1

    def test_reset_statistics(self):
        cache: LRUCache[str, int] = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.reset_statistics()
        assert cache.statistics.hits == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_contains(self):
        cache: LRUCache[str, int] = LRUCache(capacity=2)
        cache.put("a", 1)
        assert "a" in cache
        assert "b" not in cache
