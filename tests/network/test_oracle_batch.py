"""Batched oracle APIs vs their scalar loops: exact equality, not approx.

The batched calls (``distances_many``, ``distance_pairs``,
``endpoint_distances``, ``euclidean_lower_bounds``) must return the very same
floats the scalar loop would, bump the same exact-query counters, and — for
the symmetric path cache — answer a reversed query from one cached entry.
"""

import pytest

from repro.network.generators import grid_city
from repro.network.landmarks import build_landmark_index
from repro.network.oracle import DistanceOracle


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=6, columns=6, block_metres=200.0, removed_block_fraction=0.04, seed=9)


@pytest.fixture(
    scope="module",
    params=[None, "hub_labels", "apsp"],
    ids=["dijkstra", "hub-labels", "apsp"],
)
def oracle(request, network):
    return DistanceOracle(network, precompute=request.param)


@pytest.fixture(scope="module")
def vertices(network):
    return sorted(network.vertices())


class TestBatchedDistances:
    def test_distances_many_equals_scalar_loop(self, oracle, vertices):
        source, targets = vertices[0], vertices[::3]
        batched = oracle.distances_many(source, targets)
        scalar = [oracle.distance(source, target) for target in targets]
        assert batched.tolist() == scalar

    def test_distance_pairs_equals_scalar_loop(self, oracle, vertices):
        us = vertices[::4]
        vs = list(reversed(vertices))[::4]
        batched = oracle.distance_pairs(us, vs)
        scalar = [oracle.distance(u, v) for u, v in zip(us, vs)]
        assert batched.tolist() == scalar

    def test_endpoint_distances_equals_scalar_loop(self, oracle, vertices):
        stops = vertices[::5]
        origin, destination = vertices[3], vertices[-2]
        to_origin, to_destination = oracle.endpoint_distances(stops, origin, destination)
        assert to_origin.tolist() == [oracle.distance(stop, origin) for stop in stops]
        assert to_destination.tolist() == [
            oracle.distance(stop, destination) for stop in stops
        ]

    def test_counters_match_scalar_loop(self, network, vertices):
        batched_oracle = DistanceOracle(network, precompute="apsp")
        scalar_oracle = DistanceOracle(network, precompute="apsp")
        source, targets = vertices[0], vertices[:7]
        batched_oracle.distances_many(source, targets)
        for target in targets:
            scalar_oracle.distance(source, target)
        assert (
            batched_oracle.counters.distance_queries
            == scalar_oracle.counters.distance_queries
            == len(targets)
        )

    def test_distance_pairs_rejects_mismatched_lengths(self, oracle, vertices):
        with pytest.raises(ValueError, match="length"):
            oracle.distance_pairs(vertices[:3], vertices[:2])


class TestBatchedLowerBounds:
    @pytest.fixture(scope="class", params=[False, True], ids=["plain", "landmarks"])
    def bound_oracle(self, request, network):
        index = build_landmark_index(network, count=4) if request.param else None
        return DistanceOracle(network, landmark_index=index)

    def test_euclidean_lower_bounds_equal_scalar(self, bound_oracle, vertices):
        stops = vertices[::2]
        origin, destination = vertices[1], vertices[-1]
        to_origin, to_destination = bound_oracle.euclidean_lower_bounds(
            stops, origin, destination
        )
        assert to_origin.tolist() == [
            bound_oracle.lower_bound(stop, origin) for stop in stops
        ]
        assert to_destination.tolist() == [
            bound_oracle.lower_bound(stop, destination) for stop in stops
        ]

    def test_single_endpoint_variant_equal_scalar(self, bound_oracle, vertices):
        stops = vertices[::3]
        target = vertices[5]
        bounds = bound_oracle.euclidean_lower_bounds_to(stops, target)
        assert bounds.tolist() == [bound_oracle.lower_bound(stop, target) for stop in stops]

    def test_lower_bound_counter_advances_per_pair(self, network, vertices):
        oracle = DistanceOracle(network)
        before = oracle.counters.lower_bound_queries
        oracle.euclidean_lower_bounds(vertices[:6], vertices[0], vertices[-1])
        assert oracle.counters.lower_bound_queries == before + 12


class TestApspPathWalk:
    def test_walk_returns_a_shortest_path(self, network, vertices):
        oracle = DistanceOracle(network, precompute="apsp")
        oracle.apsp_path_walk = True
        for u, v in [(vertices[0], vertices[-1]), (vertices[3], vertices[17])]:
            path = oracle.path(u, v)
            assert path[0] == u and path[-1] == v
            total = sum(network.edge_cost(a, b) for a, b in zip(path, path[1:]))
            assert total == pytest.approx(oracle.distance(u, v))
        # the walk answers misses without any Dijkstra run
        assert oracle.counters.dijkstra_runs == 0

    def test_walk_raises_for_disconnected_vertices(self):
        from repro.exceptions import DisconnectedError
        from repro.network.graph import RoadNetwork
        from repro.utils.geometry import Point

        isolated = RoadNetwork()
        isolated.add_vertex(0, Point(0, 0))
        isolated.add_vertex(1, Point(100, 0))
        isolated.add_vertex(2, Point(5000, 5000))
        isolated.add_edge(0, 1)
        oracle = DistanceOracle(isolated, precompute="apsp")
        oracle.apsp_path_walk = True
        with pytest.raises(DisconnectedError):
            oracle.path(0, 2)


class TestSymmetricPathCache:
    def test_reverse_path_served_from_cache(self, network, vertices):
        oracle = DistanceOracle(network)
        u, v = vertices[0], vertices[-1]
        forward = oracle.path(u, v)
        runs_after_forward = oracle.counters.dijkstra_runs
        backward = oracle.path(v, u)
        assert backward == list(reversed(forward))
        # the reversed lookup must not spend another Dijkstra
        assert oracle.counters.dijkstra_runs == runs_after_forward

    def test_cache_statistics_in_counter_snapshot(self, network, vertices):
        oracle = DistanceOracle(network)
        oracle.distance(vertices[0], vertices[4])
        oracle.distance(vertices[0], vertices[4])
        snapshot = oracle.counters.snapshot()
        assert snapshot["distance_cache_hits"] >= 1
        assert snapshot["distance_cache_misses"] >= 1
        assert 0.0 <= snapshot["distance_cache_hit_rate"] <= 1.0
        assert "path_cache_hit_rate" in snapshot

    def test_reset_counters_resets_cache_statistics(self, network, vertices):
        oracle = DistanceOracle(network)
        oracle.distance(vertices[0], vertices[3])
        oracle.reset_counters()
        snapshot = oracle.counters.snapshot()
        assert snapshot["distance_cache_hits"] == 0
        assert snapshot["distance_cache_misses"] == 0
        # cache contents survive: the next query is a hit
        oracle.distance(vertices[0], vertices[3])
        assert oracle.counters.snapshot()["distance_cache_hits"] == 1
