"""Tests for landmark (ALT) lower bounds."""

import pytest

from repro.network.generators import grid_city
from repro.network.landmarks import build_landmark_index, select_landmarks_farthest
from repro.network.shortest_path import shortest_distance
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=6, columns=6, block_metres=150.0, removed_block_fraction=0.0, seed=8)


class TestLandmarkSelection:
    def test_requested_count_returned(self, network):
        landmarks = select_landmarks_farthest(network, 4, make_rng(1))
        assert len(landmarks) == 4
        assert len(set(landmarks)) == 4

    def test_zero_count_returns_empty(self, network):
        assert select_landmarks_farthest(network, 0, make_rng(1)) == []

    def test_landmarks_are_spread_out(self, network):
        landmarks = select_landmarks_farthest(network, 3, make_rng(2))
        # farthest-point selection never places two landmarks on the same vertex
        assert len(set(landmarks)) == 3


class TestLandmarkBounds:
    def test_bounds_are_admissible(self, network):
        index = build_landmark_index(network, count=5, rng=make_rng(3))
        vertices = sorted(network.vertices())
        for u in vertices[::6]:
            for v in vertices[::7]:
                assert index.lower_bound(u, v) <= shortest_distance(network, u, v) + 1e-9

    def test_bound_zero_for_same_vertex(self, network):
        index = build_landmark_index(network, count=3, rng=make_rng(4))
        assert index.lower_bound(5, 5) == pytest.approx(0.0)

    def test_bound_exact_for_landmark_endpoints(self, network):
        index = build_landmark_index(network, count=3, rng=make_rng(5))
        landmark = index.landmarks[0]
        other = sorted(network.vertices())[-1]
        # |dist(L, L) - dist(L, other)| = dist(L, other): exact at landmarks
        assert index.lower_bound(landmark, other) == pytest.approx(
            shortest_distance(network, landmark, other)
        )

    def test_size_entries_reported(self, network):
        index = build_landmark_index(network, count=2, rng=make_rng(6))
        assert index.size_entries == 2 * network.num_vertices
