"""Property-based invariants of the distance oracle.

The insertion machinery relies on three metric facts: symmetry, the triangle
inequality (route legs never undercut shortest paths) and admissibility of the
Euclidean lower bound. These hold for every accelerator (Dijkstra, hub labels,
dense APSP) because they all answer exactly; the properties are checked on the
APSP oracle and cross-checked against the plain Dijkstra oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.generators import random_geometric_city
from repro.network.oracle import DistanceOracle

_NETWORK = random_geometric_city(num_vertices=90, seed=31)
_VERTICES = sorted(_NETWORK.vertices())
_APSP = DistanceOracle(_NETWORK, precompute="apsp")
_PLAIN = DistanceOracle(_NETWORK)

vertex_indices = st.integers(min_value=0, max_value=len(_VERTICES) - 1)

_SETTINGS = settings(max_examples=100, deadline=None)


class TestOracleProperties:
    @given(vertex_indices, vertex_indices)
    @_SETTINGS
    def test_symmetry(self, i, j):
        u, v = _VERTICES[i], _VERTICES[j]
        assert _APSP.distance(u, v) == pytest.approx(_APSP.distance(v, u), rel=1e-9)

    @given(vertex_indices, vertex_indices, vertex_indices)
    @_SETTINGS
    def test_triangle_inequality(self, i, j, k):
        a, b, c = _VERTICES[i], _VERTICES[j], _VERTICES[k]
        assert _APSP.distance(a, c) <= _APSP.distance(a, b) + _APSP.distance(b, c) + 1e-6

    @given(vertex_indices, vertex_indices)
    @_SETTINGS
    def test_lower_bound_is_admissible(self, i, j):
        u, v = _VERTICES[i], _VERTICES[j]
        assert _APSP.lower_bound(u, v) <= _APSP.distance(u, v) + 1e-6

    @given(vertex_indices, vertex_indices)
    @_SETTINGS
    def test_accelerators_agree_with_dijkstra(self, i, j):
        u, v = _VERTICES[i], _VERTICES[j]
        assert _APSP.distance(u, v) == pytest.approx(_PLAIN.distance(u, v), rel=1e-9, abs=1e-9)

    @given(vertex_indices)
    @_SETTINGS
    def test_identity(self, i):
        u = _VERTICES[i]
        assert _APSP.distance(u, u) == 0.0
        assert _APSP.lower_bound(u, u) == 0.0

    @given(vertex_indices, vertex_indices)
    @_SETTINGS
    def test_path_cost_matches_distance(self, i, j):
        u, v = _VERTICES[i], _VERTICES[j]
        path = _APSP.path(u, v)
        total = sum(_NETWORK.edge_cost(a, b) for a, b in zip(path, path[1:]))
        assert total == pytest.approx(_APSP.distance(u, v), rel=1e-9, abs=1e-9)
