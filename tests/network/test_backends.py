"""Equivalence and policy tests of the pluggable distance backends.

The contraction hierarchy and the array-native hub labels must answer exactly
what ``dijkstra_reference`` (the seed's dict-based search) answers — across
random generator cities and seeds, including disconnected pairs (``inf``) and
``u == v`` — and the array hub labels must agree **bit for bit** with the
dict reference labelling they were frozen from. The auto-selection policy
must pick the expected backend per city size / query volume.
"""

import math

import numpy as np
import pytest

from repro.exceptions import DisconnectedError
from repro.network.backends import (
    APSP_VERTEX_LIMIT,
    CH_VERTEX_LIMIT,
    select_backend_name,
)
from repro.network.ch import build_contraction_hierarchy
from repro.network.generators import grid_city, random_geometric_city, ring_radial_city
from repro.network.graph import RoadNetwork
from repro.network.hub_labeling import build_hub_labels, build_hub_labels_reference
from repro.network.oracle import DistanceOracle
from repro.network.shortest_path import (
    dijkstra_reference,
    truncated_multi_target_distances,
)
from repro.utils.geometry import Point

#: float tolerance for cross-algorithm equality: CH/hub sums associate edge
#: costs differently than a straight Dijkstra relaxation, so results may
#: differ in the last couple of ulps (empirically max rel ~2e-16) — but no
#: more. Within one backend, scalar and batched answers are exactly equal.
_REL = 1e-12

_CITIES = [
    pytest.param(lambda: random_geometric_city(num_vertices=80, seed=0), id="random-0"),
    pytest.param(lambda: random_geometric_city(num_vertices=70, seed=1), id="random-1"),
    pytest.param(lambda: random_geometric_city(num_vertices=90, seed=2), id="random-2"),
    pytest.param(
        lambda: grid_city(rows=8, columns=8, block_metres=200.0, seed=3), id="grid"
    ),
    pytest.param(lambda: ring_radial_city(rings=4, radials=10, seed=5), id="ring"),
]


def _sample_pairs(vertices):
    return [(u, v) for u in vertices[::5] for v in vertices[::7]]


@pytest.mark.parametrize("build_city", _CITIES)
class TestBackendEquivalence:
    def test_ch_equals_dijkstra_reference(self, build_city):
        network = build_city()
        vertices = sorted(network.vertices())
        hierarchy = build_contraction_hierarchy(network)
        position = network.csr.position
        for u in vertices[::5]:
            truth = dijkstra_reference(network, u)
            for v in vertices[::7]:
                expected = truth.get(v, math.inf)
                got = hierarchy.query_positions(position[u], position[v])
                if math.isinf(expected):
                    assert math.isinf(got)
                else:
                    assert got == pytest.approx(expected, rel=_REL)

    def test_hub_labels_equal_dijkstra_reference(self, build_city):
        network = build_city()
        vertices = sorted(network.vertices())
        labels = build_hub_labels(network)
        for u in vertices[::5]:
            truth = dijkstra_reference(network, u)
            for v in vertices[::7]:
                expected = truth.get(v, math.inf)
                got = labels.query(u, v)
                if math.isinf(expected):
                    assert math.isinf(got)
                else:
                    assert got == pytest.approx(expected, rel=_REL)

    def test_array_labels_bitwise_equal_dict_reference(self, build_city):
        # frozen from the same pruned labelling, the arrays must reproduce
        # the dict queries exactly — same sums, same minimum, same bits
        network = build_city()
        vertices = sorted(network.vertices())
        order = None
        reference = build_hub_labels_reference(network, order=order)
        arrays = build_hub_labels(network, order=order)
        for u, v in _sample_pairs(vertices):
            assert arrays.query(u, v) == reference.query(u, v)

    def test_identity_is_zero(self, build_city):
        network = build_city()
        vertices = sorted(network.vertices())
        hierarchy = build_contraction_hierarchy(network)
        labels = build_hub_labels(network)
        position = network.csr.position
        for u in vertices[::9]:
            assert hierarchy.query_positions(position[u], position[u]) == 0.0
            assert labels.query(u, u) == 0.0

    def test_batched_queries_bitwise_equal_scalar(self, build_city):
        network = build_city()
        vertices = sorted(network.vertices())
        for backend in ("ch", "hub_labels"):
            oracle = DistanceOracle(network, backend=backend)
            source = vertices[0]
            targets = vertices[::3]
            batched = oracle.distances_many(source, targets)
            scalar = [oracle.distance(source, t) for t in targets]
            assert batched.tolist() == scalar


class TestDisconnectedPairs:
    @pytest.fixture()
    def split_network(self):
        """Two components: a 3-vertex path and a detached 2-vertex edge."""
        network = RoadNetwork(name="split")
        for vertex, (x, y) in enumerate([(0, 0), (100, 0), (200, 0), (5000, 5000), (5100, 5000)]):
            network.add_vertex(vertex, Point(float(x), float(y)))
        network.add_edge(0, 1)
        network.add_edge(1, 2)
        network.add_edge(3, 4)
        return network

    def test_ch_reports_infinity(self, split_network):
        hierarchy = build_contraction_hierarchy(split_network)
        position = split_network.csr.position
        assert math.isinf(hierarchy.query_positions(position[0], position[3]))
        assert hierarchy.query_positions(position[0], position[2]) == pytest.approx(
            dijkstra_reference(split_network, 0)[2], rel=_REL
        )

    def test_hub_labels_report_infinity(self, split_network):
        labels = build_hub_labels(split_network)
        assert math.isinf(labels.query(0, 4))
        assert math.isinf(labels.query(3, 2))

    def test_ch_batch_reports_infinity(self, split_network):
        oracle = DistanceOracle(split_network, backend="ch")
        distances = oracle.distances_many(0, [1, 3, 4])
        assert math.isfinite(distances[0])
        assert math.isinf(distances[1]) and math.isinf(distances[2])

    def test_dijkstra_batch_raises_like_the_scalar_path(self, split_network):
        oracle = DistanceOracle(split_network, backend="dijkstra")
        with pytest.raises(DisconnectedError):
            oracle.distances_many(0, [1, 3])


class TestTruncatedMultiTargetDijkstra:
    def test_matches_reference_distances(self):
        network = random_geometric_city(num_vertices=90, seed=7)
        vertices = sorted(network.vertices())
        source = vertices[0]
        targets = vertices[::4]
        distances, settled = truncated_multi_target_distances(network, source, targets)
        truth = dijkstra_reference(network, source)
        assert distances.tolist() == [truth[t] for t in targets]
        assert 0 < settled <= network.num_vertices

    def test_stops_early_for_nearby_targets(self):
        network = grid_city(rows=20, columns=20, block_metres=200.0,
                            removed_block_fraction=0.0, seed=1)
        vertices = sorted(network.vertices())
        source = vertices[0]
        neighbours = sorted(network.neighbours(source))
        _, settled = truncated_multi_target_distances(network, source, neighbours)
        # settling the direct neighbours must not sweep the whole city
        assert settled < network.num_vertices / 4

    def test_unreachable_targets_hold_infinity(self):
        network = RoadNetwork()
        network.add_vertex(0, Point(0.0, 0.0))
        network.add_vertex(1, Point(100.0, 0.0))
        network.add_vertex(2, Point(9000.0, 9000.0))
        network.add_edge(0, 1)
        distances, _ = truncated_multi_target_distances(network, 0, [1, 2])
        assert math.isfinite(distances[0])
        assert math.isinf(distances[1])


class TestAutoSelectionPolicy:
    def test_small_network_gets_apsp(self):
        assert select_backend_name(150) == "apsp"
        assert select_backend_name(APSP_VERTEX_LIMIT) == "apsp"

    def test_city_scale_gets_contraction_hierarchy(self):
        assert select_backend_name(APSP_VERTEX_LIMIT + 1) == "ch"
        assert select_backend_name(CH_VERTEX_LIMIT) == "ch"

    def test_continental_scale_gets_hub_labels(self):
        assert select_backend_name(CH_VERTEX_LIMIT + 1) == "hub_labels"

    def test_tiny_query_volume_skips_preprocessing(self):
        assert select_backend_name(100_000, query_volume_hint=10) == "dijkstra"
        assert select_backend_name(100_000, query_volume_hint=1_000_000) == "hub_labels"

    def test_oracle_auto_backend_resolves_by_size(self):
        network = grid_city(rows=6, columns=6, block_metres=200.0, seed=1)
        oracle = DistanceOracle(network, backend="auto")
        assert oracle.backend_name == "apsp"
        sparse = DistanceOracle(network, backend="auto", query_volume_hint=0)
        assert sparse.backend_name == "dijkstra"

    def test_scenario_auto_policy_per_city(self):
        from repro.workloads.scenarios import CITY_BUILDERS, ScenarioConfig, make_oracle

        small = CITY_BUILDERS["small-grid"](1)
        assert make_oracle(small, ScenarioConfig(city="small-grid")).backend_name == "apsp"
        metro = CITY_BUILDERS["metro-grid"](1)
        assert make_oracle(metro, ScenarioConfig(city="metro-grid")).backend_name == "ch"

    def test_explicit_backend_selection(self):
        network = grid_city(rows=5, columns=5, block_metres=200.0, seed=2)
        for name in ("apsp", "ch", "hub_labels", "dijkstra"):
            assert DistanceOracle(network, backend=name).backend_name == name

    def test_unknown_backend_rejected(self):
        network = grid_city(rows=4, columns=4, block_metres=200.0, seed=2)
        with pytest.raises(ValueError, match="backend"):
            DistanceOracle(network, backend="bogus")


class TestPerBackendCounters:
    def test_queries_attributed_to_backend(self):
        network = grid_city(rows=6, columns=6, block_metres=200.0, seed=4)
        vertices = sorted(network.vertices())
        oracle = DistanceOracle(network, backend="ch")
        oracle.distance(vertices[0], vertices[-1])
        oracle.distances_many(vertices[0], vertices[:5])
        snapshot = oracle.counters.snapshot()
        assert snapshot["backend_ch_queries"] == 6
        assert snapshot["backend_ch_settled"] > 0

    def test_bypassed_cache_reported_honestly(self):
        network = grid_city(rows=5, columns=5, block_metres=200.0, seed=4)
        vertices = sorted(network.vertices())
        for name in ("apsp", "ch", "hub_labels"):
            oracle = DistanceOracle(network, backend=name)
            oracle.distance(vertices[0], vertices[-1])
            assert oracle.cache_statistics()["distance_cache_hit_rate"] == f"bypassed ({name})"
            assert oracle.counters.snapshot()["distance_cache_hit_rate"] == f"bypassed ({name})"
        active = DistanceOracle(network, backend="dijkstra")
        active.distance(vertices[0], vertices[-1])
        assert isinstance(active.cache_statistics()["distance_cache_hit_rate"], float)


class TestDijkstraBatchCache:
    """The fallback batch path must consult and populate the distance LRU."""

    @pytest.fixture()
    def network(self):
        return grid_city(rows=6, columns=6, block_metres=200.0, seed=9)

    def test_batch_populates_the_cache(self, network):
        vertices = sorted(network.vertices())
        oracle = DistanceOracle(network, backend="dijkstra")
        targets = vertices[1:6]
        first = oracle.distances_many(vertices[0], targets)
        runs = oracle.counters.dijkstra_runs
        second = oracle.distances_many(vertices[0], targets)
        assert second.tolist() == first.tolist()
        # the repeat batch is answered entirely from the cache
        assert oracle.counters.dijkstra_runs == runs
        assert oracle.counters.snapshot()["distance_cache_hits"] >= len(targets)

    def test_batch_serves_later_scalar_queries(self, network):
        vertices = sorted(network.vertices())
        oracle = DistanceOracle(network, backend="dijkstra")
        batched = oracle.distances_many(vertices[0], vertices[1:6])
        runs = oracle.counters.dijkstra_runs
        scalar = [oracle.distance(vertices[0], t) for t in vertices[1:6]]
        assert scalar == batched.tolist()
        assert oracle.counters.dijkstra_runs == runs

    def test_repeated_targets_deduplicated(self, network):
        vertices = sorted(network.vertices())
        oracle = DistanceOracle(network, backend="dijkstra")
        target = vertices[7]
        distances = oracle.distances_many(vertices[0], [target, target, target, vertices[0]])
        assert distances[0] == distances[1] == distances[2]
        assert distances[3] == 0.0
        # one truncated search answered the whole batch
        assert oracle.counters.dijkstra_runs == 1

    def test_distance_pairs_shares_an_endpoint_in_one_search(self, network):
        vertices = sorted(network.vertices())
        oracle = DistanceOracle(network, backend="dijkstra")
        hub = vertices[3]
        us = [hub, hub, hub]
        vs = [vertices[10], vertices[20], vertices[30]]
        pairs = oracle.distance_pairs(us, vs)
        assert oracle.counters.dijkstra_runs == 1
        assert pairs.tolist() == [oracle.distance(hub, v) for v in vs]

    def test_endpoint_distances_two_sweeps(self, network):
        vertices = sorted(network.vertices())
        oracle = DistanceOracle(network, backend="dijkstra")
        stops = vertices[::4]
        to_origin, to_destination = oracle.endpoint_distances(
            stops, vertices[1], vertices[-2]
        )
        assert oracle.counters.dijkstra_runs == 2
        assert to_origin.tolist() == [oracle.distance(s, vertices[1]) for s in stops]
        assert to_destination.tolist() == [oracle.distance(s, vertices[-2]) for s in stops]


class TestHubLabelQueryMany:
    def test_query_many_bitwise_equal_scalar(self):
        network = random_geometric_city(num_vertices=70, seed=11)
        vertices = sorted(network.vertices())
        labels = build_hub_labels(network)
        positions = network.csr.positions_of(vertices)
        source = vertices[3]
        batched = labels.query_many(source, positions)
        assert batched.tolist() == [labels.query(source, v) for v in vertices]

    def test_query_many_empty_targets(self):
        network = grid_city(rows=4, columns=4, block_metres=150.0, seed=1)
        labels = build_hub_labels(network)
        result = labels.query_many(sorted(network.vertices())[0], np.empty(0, dtype=np.int64))
        assert result.size == 0
