"""Tests for road-network JSON serialisation."""

import gzip
import random

import pytest

from repro.exceptions import RoadNetworkError
from repro.network.generators import grid_city, random_geometric_city
from repro.network.io import load_network, network_from_dict, network_to_dict, save_network
from repro.network.shortest_path import shortest_distance


class TestRoundTrip:
    def test_dict_round_trip_preserves_structure(self):
        original = grid_city(rows=4, columns=5, removed_block_fraction=0.0, seed=2)
        restored = network_from_dict(network_to_dict(original))
        assert restored.num_vertices == original.num_vertices
        assert restored.num_edges == original.num_edges
        assert restored.name == original.name

    def test_round_trip_preserves_distances(self):
        original = grid_city(rows=4, columns=4, removed_block_fraction=0.0, seed=2)
        restored = network_from_dict(network_to_dict(original))
        vertices = sorted(original.vertices())
        for u, v in [(vertices[0], vertices[-1]), (vertices[1], vertices[7])]:
            assert shortest_distance(restored, u, v) == pytest.approx(
                shortest_distance(original, u, v)
            )

    def test_file_round_trip(self, tmp_path):
        original = grid_city(rows=3, columns=3, removed_block_fraction=0.0, seed=2)
        path = tmp_path / "network.json"
        save_network(original, path)
        restored = load_network(path)
        assert restored.num_vertices == original.num_vertices
        assert restored.num_edges == original.num_edges

    def test_unknown_schema_version_rejected(self):
        payload = network_to_dict(grid_city(rows=3, columns=3, seed=2))
        payload["schema_version"] = 999
        with pytest.raises(RoadNetworkError, match="schema"):
            network_from_dict(payload)

    def test_edge_metadata_survives(self):
        original = grid_city(rows=3, columns=4, removed_block_fraction=0.0, seed=2)
        restored = network_from_dict(network_to_dict(original))
        for edge in original.edges():
            other = restored.edge(edge.u, edge.v)
            assert other.road_class == edge.road_class
            assert other.speed == pytest.approx(edge.speed)


class TestGzip:
    def test_gz_round_trip(self, tmp_path):
        original = grid_city(rows=4, columns=4, removed_block_fraction=0.0, seed=3)
        path = tmp_path / "network.json.gz"
        save_network(original, path)
        restored = load_network(path)
        assert restored.num_vertices == original.num_vertices
        assert restored.num_edges == original.num_edges

    def test_gz_file_is_actually_compressed(self, tmp_path):
        original = grid_city(rows=6, columns=6, removed_block_fraction=0.0, seed=3)
        plain = tmp_path / "network.json"
        packed = tmp_path / "network.json.gz"
        save_network(original, plain)
        save_network(original, packed)
        with gzip.open(packed, "rt", encoding="utf-8") as handle:
            assert handle.read() == plain.read_text(encoding="utf-8")
        assert packed.stat().st_size < plain.stat().st_size

    def test_gz_and_plain_load_identically(self, tmp_path):
        original = random_geometric_city(num_vertices=40, seed=9)
        plain = tmp_path / "network.json"
        packed = tmp_path / "network.json.gz"
        save_network(original, plain)
        save_network(original, packed)
        assert network_to_dict(load_network(plain)) == network_to_dict(load_network(packed))


class TestFloatExactness:
    """The round trip must be bitwise exact, not approximately equal.

    Stable content hashing (repro.artifacts) depends on every coordinate and
    edge attribute surviving JSON serialisation bit for bit.
    """

    @pytest.mark.parametrize("compressed", [False, True])
    def test_awkward_floats_round_trip_bitwise(self, tmp_path, compressed):
        rng = random.Random(20180808)
        original = random_geometric_city(num_vertices=60, seed=5)
        # rescale with awkward irrational-ish factors so coordinates, lengths
        # and speeds have full 53-bit mantissas (worst case for repr round
        # trips); rebuild rather than mutate to keep invariants intact
        from repro.network.graph import RoadNetwork
        from repro.utils.geometry import Point

        awkward = RoadNetwork(name="awkward")
        scale = 1.0 + 1.0 / 3.0
        for vertex in sorted(original.vertices()):
            point = original.coordinates(vertex)
            awkward.add_vertex(vertex, Point(point.x * scale, point.y * scale))
        for edge in original.edges():
            awkward.add_edge(
                edge.u,
                edge.v,
                length=edge.length * scale * (1.0 + rng.random() * 1e-6),
                speed=edge.speed * (1.0 + rng.random() * 1e-9),
                road_class=edge.road_class,
            )
        path = tmp_path / ("network.json.gz" if compressed else "network.json")
        save_network(awkward, path)
        restored = load_network(path)
        for vertex in awkward.vertices():
            a = awkward.coordinates(vertex)
            b = restored.coordinates(vertex)
            assert (a.x, a.y) == (b.x, b.y)  # ==, not approx: bitwise
        for edge in awkward.edges():
            other = restored.edge(edge.u, edge.v)
            assert other.length == edge.length
            assert other.speed == edge.speed

    def test_round_trip_preserves_content_hash(self, tmp_path):
        from repro.artifacts import network_content_hash

        original = random_geometric_city(num_vertices=50, seed=11)
        path = tmp_path / "network.json.gz"
        save_network(original, path)
        assert network_content_hash(load_network(path)) == network_content_hash(original)
