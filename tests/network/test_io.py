"""Tests for road-network JSON serialisation."""

import pytest

from repro.exceptions import RoadNetworkError
from repro.network.generators import grid_city
from repro.network.io import load_network, network_from_dict, network_to_dict, save_network
from repro.network.shortest_path import shortest_distance


class TestRoundTrip:
    def test_dict_round_trip_preserves_structure(self):
        original = grid_city(rows=4, columns=5, removed_block_fraction=0.0, seed=2)
        restored = network_from_dict(network_to_dict(original))
        assert restored.num_vertices == original.num_vertices
        assert restored.num_edges == original.num_edges
        assert restored.name == original.name

    def test_round_trip_preserves_distances(self):
        original = grid_city(rows=4, columns=4, removed_block_fraction=0.0, seed=2)
        restored = network_from_dict(network_to_dict(original))
        vertices = sorted(original.vertices())
        for u, v in [(vertices[0], vertices[-1]), (vertices[1], vertices[7])]:
            assert shortest_distance(restored, u, v) == pytest.approx(
                shortest_distance(original, u, v)
            )

    def test_file_round_trip(self, tmp_path):
        original = grid_city(rows=3, columns=3, removed_block_fraction=0.0, seed=2)
        path = tmp_path / "network.json"
        save_network(original, path)
        restored = load_network(path)
        assert restored.num_vertices == original.num_vertices
        assert restored.num_edges == original.num_edges

    def test_unknown_schema_version_rejected(self):
        payload = network_to_dict(grid_city(rows=3, columns=3, seed=2))
        payload["schema_version"] = 999
        with pytest.raises(RoadNetworkError, match="schema"):
            network_from_dict(payload)

    def test_edge_metadata_survives(self):
        original = grid_city(rows=3, columns=4, removed_block_fraction=0.0, seed=2)
        restored = network_from_dict(network_to_dict(original))
        for edge in original.edges():
            other = restored.edge(edge.u, edge.v)
            assert other.road_class == edge.road_class
            assert other.speed == pytest.approx(edge.speed)
