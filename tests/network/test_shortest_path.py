"""Tests for Dijkstra / bidirectional Dijkstra shortest paths."""

import math

import pytest

from repro.exceptions import DisconnectedError
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import (
    bidirectional_dijkstra,
    dijkstra,
    eccentricity,
    path_cost,
    shortest_distance,
    shortest_path,
    single_source_distances,
)
from repro.utils.geometry import Point
from tests.conftest import build_line_network


def build_two_route_network() -> RoadNetwork:
    """A square with a shortcut diagonal: 0-1-2 is longer than 0-3-2."""
    network = RoadNetwork()
    network.add_vertex(0, Point(0, 0))
    network.add_vertex(1, Point(1000, 0))
    network.add_vertex(2, Point(1000, 1000))
    network.add_vertex(3, Point(0, 1000))
    network.add_edge(0, 1, speed=5.0)   # 200 s
    network.add_edge(1, 2, speed=5.0)   # 200 s
    network.add_edge(0, 3, speed=20.0)  # 50 s
    network.add_edge(3, 2, speed=20.0)  # 50 s
    return network


class TestDijkstra:
    def test_single_source_distances_on_line(self, line_network):
        distances = single_source_distances(line_network, 0)
        assert distances[0] == 0.0
        assert distances[5] == pytest.approx(50.0)

    def test_bounded_search_stops_early(self, line_network):
        distances = dijkstra(line_network, 0, max_cost=25.0)
        assert set(distances) == {0, 1, 2}

    def test_targeted_search_settles_targets(self, line_network):
        distances = dijkstra(line_network, 0, targets={3})
        assert distances[3] == pytest.approx(30.0)

    def test_prefers_faster_route(self):
        network = build_two_route_network()
        distances = single_source_distances(network, 0)
        assert distances[2] == pytest.approx(100.0)


class TestBidirectional:
    def test_distance_matches_dijkstra(self):
        network = build_two_route_network()
        cost, path = bidirectional_dijkstra(network, 0, 2)
        assert cost == pytest.approx(100.0)
        assert path == [0, 3, 2]

    def test_path_endpoints(self, line_network):
        path = shortest_path(line_network, 1, 4)
        assert path[0] == 1 and path[-1] == 4
        assert path == [1, 2, 3, 4]

    def test_path_cost_matches_distance(self, line_network):
        path = shortest_path(line_network, 0, 5)
        assert path_cost(line_network, path) == pytest.approx(shortest_distance(line_network, 0, 5))

    def test_same_vertex_distance_zero(self, line_network):
        assert shortest_distance(line_network, 3, 3) == 0.0
        assert shortest_path(line_network, 3, 3) == [3]

    def test_disconnected_raises(self):
        network = build_line_network(4)
        network.add_vertex(99, Point(9999.0, 9999.0))
        with pytest.raises(DisconnectedError):
            bidirectional_dijkstra(network, 0, 99)

    def test_symmetry_on_undirected_graph(self, city_network):
        vertices = sorted(city_network.vertices())
        a, b = vertices[0], vertices[len(vertices) // 2]
        assert shortest_distance(city_network, a, b) == pytest.approx(
            shortest_distance(city_network, b, a)
        )


class TestDerived:
    def test_eccentricity_of_line_endpoint(self, line_network):
        assert eccentricity(line_network, 0) == pytest.approx(50.0)

    def test_triangle_inequality_holds(self, city_network):
        vertices = sorted(city_network.vertices())
        a, b, c = vertices[0], vertices[7], vertices[19]
        ab = shortest_distance(city_network, a, b)
        bc = shortest_distance(city_network, b, c)
        ac = shortest_distance(city_network, a, c)
        assert ac <= ab + bc + 1e-9

    def test_unreachable_distance_is_not_returned(self):
        network = build_line_network(3)
        distances = dijkstra(network, 0, max_cost=5.0)
        assert 2 not in distances
        assert math.isfinite(distances[0])
