"""Tests for the synthetic road-network generators."""

import pytest

from repro.network.generators import (
    cycle_network,
    grid_city,
    random_geometric_city,
    ring_radial_city,
)
from repro.network.graph import connected_components
from repro.network.shortest_path import shortest_distance


class TestGridCity:
    def test_size_without_removals(self):
        network = grid_city(rows=5, columns=6, removed_block_fraction=0.0, seed=1)
        assert network.num_vertices == 30
        # 5*(6-1) horizontal + 6*(5-1) vertical edges
        assert network.num_edges == 49

    def test_is_connected(self):
        network = grid_city(rows=10, columns=10, removed_block_fraction=0.1, seed=2)
        assert connected_components(network).count == 1

    def test_deterministic_for_same_seed(self):
        first = grid_city(rows=6, columns=6, seed=4)
        second = grid_city(rows=6, columns=6, seed=4)
        assert first.num_vertices == second.num_vertices
        assert first.num_edges == second.num_edges

    def test_edge_length_not_below_euclidean(self):
        network = grid_city(rows=5, columns=5, seed=3)
        for edge in network.edges():
            assert edge.length >= network.euclidean(edge.u, edge.v) - 1e-6

    def test_contains_arterials_and_residentials(self):
        network = grid_city(rows=8, columns=8, removed_block_fraction=0.0, seed=1)
        classes = {edge.road_class for edge in network.edges()}
        assert {"arterial", "residential"} <= classes

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_city(rows=1, columns=5)


class TestRingRadialCity:
    def test_vertex_count(self):
        network = ring_radial_city(rings=4, radials=8)
        assert network.num_vertices == 1 + 4 * 8

    def test_is_connected(self):
        network = ring_radial_city(rings=5, radials=12)
        assert connected_components(network).count == 1

    def test_centre_reaches_outer_ring(self):
        network = ring_radial_city(rings=3, radials=6, ring_spacing_metres=500.0)
        outer_vertex = 1 + 2 * 6  # first vertex of the outermost ring
        assert shortest_distance(network, 0, outer_vertex) > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ring_radial_city(rings=0, radials=8)
        with pytest.raises(ValueError):
            ring_radial_city(rings=2, radials=2)


class TestRandomGeometricCity:
    def test_is_connected_component(self):
        network = random_geometric_city(num_vertices=80, seed=5)
        assert connected_components(network).count == 1

    def test_lengths_respect_euclidean(self):
        network = random_geometric_city(num_vertices=50, seed=6)
        for edge in network.edges():
            assert edge.length >= network.euclidean(edge.u, edge.v) - 1e-6

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            random_geometric_city(num_vertices=1)


class TestCycleNetwork:
    def test_cycle_shape(self):
        network = cycle_network(10, edge_metres=100.0, speed=10.0)
        assert network.num_vertices == 10
        assert network.num_edges == 10
        for vertex in network.vertices():
            assert network.degree(vertex) == 2

    def test_antipodal_distance_is_half_cycle(self):
        network = cycle_network(12, edge_metres=100.0, speed=10.0)
        assert shortest_distance(network, 0, 6) == pytest.approx(60.0)

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            cycle_network(2)
