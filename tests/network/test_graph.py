"""Tests for the road-network graph model."""

import pytest

from repro.exceptions import RoadNetworkError
from repro.network.graph import RoadNetwork, connected_components, induced_subnetwork
from repro.utils.geometry import Point


def build_triangle() -> RoadNetwork:
    network = RoadNetwork(name="triangle")
    network.add_vertex(0, Point(0.0, 0.0))
    network.add_vertex(1, Point(300.0, 0.0))
    network.add_vertex(2, Point(0.0, 400.0))
    network.add_edge(0, 1, speed=10.0)
    network.add_edge(1, 2, speed=10.0)
    network.add_edge(0, 2, speed=10.0)
    return network


class TestConstruction:
    def test_vertex_and_edge_counts(self):
        network = build_triangle()
        assert network.num_vertices == 3
        assert network.num_edges == 3

    def test_edge_cost_is_length_over_speed(self):
        network = build_triangle()
        assert network.edge_cost(0, 1) == pytest.approx(30.0)
        assert network.edge_cost(1, 0) == pytest.approx(30.0)

    def test_default_length_is_euclidean(self):
        network = build_triangle()
        assert network.edge(1, 2).length == pytest.approx(500.0)

    def test_self_loop_rejected(self):
        network = build_triangle()
        with pytest.raises(RoadNetworkError, match="self-loop"):
            network.add_edge(0, 0)

    def test_unknown_endpoint_rejected(self):
        network = build_triangle()
        with pytest.raises(RoadNetworkError, match="both endpoints"):
            network.add_edge(0, 99)

    def test_length_below_euclidean_rejected(self):
        network = build_triangle()
        network.add_vertex(3, Point(1000.0, 0.0))
        with pytest.raises(RoadNetworkError, match="straight-line"):
            network.add_edge(0, 3, length=500.0)

    def test_non_positive_speed_rejected(self):
        network = build_triangle()
        with pytest.raises(RoadNetworkError, match="speed"):
            network.add_edge(0, 1, speed=0.0)

    def test_moving_a_vertex_rejected(self):
        network = build_triangle()
        with pytest.raises(RoadNetworkError, match="cannot move"):
            network.add_vertex(0, Point(5.0, 5.0))

    def test_parallel_edge_keeps_cheaper_cost(self):
        network = build_triangle()
        network.add_edge(0, 1, length=600.0, speed=10.0)  # worse than existing 300 m
        assert network.edge_cost(0, 1) == pytest.approx(30.0)

    def test_unknown_vertex_queries_raise(self):
        network = build_triangle()
        with pytest.raises(RoadNetworkError):
            network.coordinates(42)
        with pytest.raises(RoadNetworkError):
            network.neighbours(42)
        with pytest.raises(RoadNetworkError):
            network.edge(0, 42)


class TestQueries:
    def test_euclidean_distance(self):
        network = build_triangle()
        assert network.euclidean(1, 2) == pytest.approx(500.0)

    def test_neighbours(self):
        network = build_triangle()
        assert set(network.neighbours(0)) == {1, 2}

    def test_statistics(self):
        network = build_triangle()
        stats = network.statistics()
        assert stats["vertices"] == 3.0
        assert stats["edges"] == 3.0
        assert stats["mean_degree"] == pytest.approx(2.0)

    def test_max_speed_tracks_fastest_edge(self):
        network = build_triangle()
        network.add_vertex(3, Point(600.0, 0.0))
        network.add_edge(1, 3, speed=25.0, road_class="motorway")
        assert network.max_speed == pytest.approx(25.0)

    def test_validate_passes_on_well_formed_network(self):
        build_triangle().validate()


class TestComponents:
    def test_connected_components_of_disconnected_graph(self):
        network = build_triangle()
        network.add_vertex(10, Point(5000.0, 5000.0))
        network.add_vertex(11, Point(5300.0, 5000.0))
        network.add_edge(10, 11)
        components = connected_components(network)
        assert components.count == 2
        assert sorted(components.sizes) == [2, 3]
        assert components.largest_component() == {0, 1, 2}

    def test_induced_subnetwork_preserves_ids(self):
        network = build_triangle()
        sub = induced_subnetwork(network, [0, 1])
        assert set(sub.vertices()) == {0, 1}
        assert sub.num_edges == 1
        assert sub.edge_cost(0, 1) == pytest.approx(30.0)
