"""Test package."""
