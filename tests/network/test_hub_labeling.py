"""Tests for the pruned 2-hop hub labelling, including a property-based
comparison against Dijkstra ground truth."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.generators import grid_city, random_geometric_city
from repro.network.hub_labeling import build_hub_labels, degree_order
from repro.network.shortest_path import single_source_distances
from tests.conftest import build_line_network

_CITY = grid_city(rows=6, columns=6, block_metres=150.0, removed_block_fraction=0.05, seed=9)
_LABELS = build_hub_labels(_CITY)
_VERTICES = sorted(_CITY.vertices())
_TRUTH = {vertex: single_source_distances(_CITY, vertex) for vertex in _VERTICES}


class TestHubLabels:
    def test_query_matches_dijkstra_on_line(self):
        network = build_line_network(8)
        labels = build_hub_labels(network)
        truth = single_source_distances(network, 0)
        for target, expected in truth.items():
            assert labels.query(0, target) == pytest.approx(expected)

    def test_query_same_vertex_is_zero(self):
        assert _LABELS.query(_VERTICES[0], _VERTICES[0]) == 0.0

    def test_disconnected_vertices_report_infinity(self):
        network = build_line_network(3)
        from repro.utils.geometry import Point

        network.add_vertex(99, Point(10_000.0, 0.0))
        labels = build_hub_labels(network)
        assert labels.query(0, 99) == math.inf

    def test_label_sizes_are_reported(self):
        assert _LABELS.total_label_entries > 0
        assert _LABELS.average_label_size == pytest.approx(
            _LABELS.total_label_entries / len(_VERTICES)
        )

    def test_degree_order_puts_high_degree_first(self):
        order = degree_order(_CITY)
        assert _CITY.degree(order[0]) >= _CITY.degree(order[-1])

    def test_labels_smaller_than_full_apsp(self):
        # pruning must beat the trivial labelling where every vertex stores all others
        assert _LABELS.total_label_entries < len(_VERTICES) ** 2

    @given(
        st.integers(min_value=0, max_value=len(_VERTICES) - 1),
        st.integers(min_value=0, max_value=len(_VERTICES) - 1),
    )
    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_property_query_equals_dijkstra(self, index_u, index_v):
        u, v = _VERTICES[index_u], _VERTICES[index_v]
        expected = _TRUTH[u].get(v, math.inf)
        assert _LABELS.query(u, v) == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_works_on_irregular_topology(self):
        network = random_geometric_city(num_vertices=60, seed=21)
        labels = build_hub_labels(network)
        vertices = sorted(network.vertices())
        truth = single_source_distances(network, vertices[0])
        for target in vertices[::7]:
            assert labels.query(vertices[0], target) == pytest.approx(
                truth.get(target, math.inf), rel=1e-9
            )
