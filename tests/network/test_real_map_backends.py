"""Backend property tests on city-scale networks (metro-grid + riverton).

The unit suites cover the backends on toy generator cities whose edge costs
happen to be exactly representable. These tests run the same properties on
the two networks the cold-start benchmark uses — the 3.6k-vertex synthetic
``metro-grid`` and the ingested real-map ``riverton`` fixture, whose
projected edge costs have full floating-point mantissas:

* hub labels (and CH) agree with the Dijkstra reference within relative
  tolerance — on real-map costs different summation orders legitimately
  differ in the last couple of ulps, so cross-*algorithm* checks are
  tolerance-based;
* loading a backend from the artifact store is **bitwise** identical to the
  fresh build it was saved from — same algorithm, same arrays, so exact
  equality is required, per backend;
* structural properties (symmetry, identity, admissible Euclidean lower
  bounds) hold on the real map.
"""

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.network.backends import APSP_VERTEX_LIMIT
from repro.network.oracle import DistanceOracle
from repro.network.shortest_path import dijkstra_reference
from repro.workloads.scenarios import ScenarioConfig, build_network

#: cross-algorithm tolerance (see tests/network/test_backends.py)
_REL = 1e-12


@pytest.fixture(scope="module")
def metro():
    return build_network(ScenarioConfig(city="metro-grid"))


@pytest.fixture(scope="module")
def riverton():
    return build_network(ScenarioConfig(city="riverton"))


@pytest.fixture(scope="module")
def hub_oracles(metro, riverton):
    return {
        "metro-grid": DistanceOracle(metro, backend="hub_labels"),
        "riverton": DistanceOracle(riverton, backend="hub_labels"),
    }


def sample_pairs(network, count, seed=2018):
    rng = np.random.default_rng(seed)
    vertices = sorted(network.vertices())
    n = len(vertices)
    return [
        (vertices[int(i)], vertices[int(j)])
        for i, j in zip(rng.integers(0, n, count), rng.integers(0, n, count))
    ]


class TestHubLabelProperties:
    @pytest.mark.parametrize("city", ["metro-grid", "riverton"])
    def test_matches_dijkstra_reference(self, hub_oracles, metro, riverton, city):
        network = metro if city == "metro-grid" else riverton
        oracle = hub_oracles[city]
        for u, v in sample_pairs(network, 40):
            expected = dijkstra_reference(network, u, [v])[v]
            assert oracle.distance(u, v) == pytest.approx(expected, rel=_REL)

    @pytest.mark.parametrize("city", ["metro-grid", "riverton"])
    def test_symmetric_and_zero_on_identity(self, hub_oracles, metro, riverton, city):
        network = metro if city == "metro-grid" else riverton
        backend = hub_oracles[city].backend
        for u, v in sample_pairs(network, 60):
            # the label query min-plus sum is commutative in its endpoints,
            # so symmetry holds exactly, not approximately
            assert backend.distance(u, v) == backend.distance(v, u)
            assert backend.distance(u, u) == 0.0

    def test_riverton_lower_bound_admissible(self, hub_oracles, riverton):
        oracle = hub_oracles["riverton"]
        max_speed = max(edge.speed for edge in riverton.edges())
        for u, v in sample_pairs(riverton, 60):
            seconds = oracle.distance(u, v)
            assert seconds * max_speed >= riverton.euclidean(u, v) - 1e-6

    def test_riverton_triangle_inequality(self, hub_oracles, riverton):
        backend = hub_oracles["riverton"].backend
        rng = np.random.default_rng(7)
        vertices = sorted(riverton.vertices())
        for _ in range(40):
            u, v, w = (vertices[int(i)] for i in rng.integers(0, len(vertices), 3))
            assert backend.distance(u, w) <= (
                backend.distance(u, v) + backend.distance(v, w) + 1e-9
            )


def persistable_backends(network):
    names = ["ch", "hub_labels"]
    if network.num_vertices <= APSP_VERTEX_LIMIT:
        names.insert(0, "apsp")
    return names


class TestArtifactRoundTripBitwise:
    """Fresh build vs load-from-artifact: exact equality, per backend."""

    @pytest.mark.parametrize("city", ["metro-grid", "riverton"])
    def test_loaded_equals_fresh(self, tmp_path, metro, riverton, city, hub_oracles):
        network = metro if city == "metro-grid" else riverton
        store = ArtifactStore(tmp_path / "store")
        pairs = sample_pairs(network, 120)
        us, vs = [u for u, _ in pairs], [v for _, v in pairs]
        for name in persistable_backends(network):
            if name == "hub_labels":  # reuse the module-scoped build (slowest)
                fresh = hub_oracles[city]
            else:
                fresh = DistanceOracle(network, backend=name)
            store.save_backend(network, fresh.backend)
            warm = DistanceOracle(network, backend=name, artifact_dir=store.root)
            assert warm.artifact_loaded, name
            assert np.array_equal(
                fresh.distance_pairs(us, vs), warm.distance_pairs(us, vs)
            ), name
            self.assert_state_bitwise_equal(fresh.backend, warm.backend, name)

    @staticmethod
    def assert_state_bitwise_equal(fresh, warm, name):
        if name == "apsp":
            assert np.array_equal(fresh.matrix, warm.matrix)
        elif name == "ch":
            assert fresh.hierarchy.rank == warm.hierarchy.rank
            assert fresh.hierarchy.up_indptr == warm.hierarchy.up_indptr
            assert fresh.hierarchy.up_indices == warm.hierarchy.up_indices
            assert fresh.hierarchy.up_costs == warm.hierarchy.up_costs
            assert fresh.hierarchy.num_shortcuts == warm.hierarchy.num_shortcuts
        else:
            assert np.array_equal(fresh.labels.indptr, warm.labels.indptr)
            assert np.array_equal(fresh.labels.hubs, warm.labels.hubs)
            assert np.array_equal(fresh.labels.dists, warm.labels.dists)
            assert fresh.labels.order == warm.labels.order
