"""Tests for the validation helpers."""

import pytest

from repro.utils.validation import (
    require,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken invariant"):
            require(False, "broken invariant")


class TestNumericGuards:
    def test_require_positive(self):
        assert require_positive(3.5, "x") == 3.5
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(0, "x")

    def test_require_non_negative(self):
        assert require_non_negative(0.0, "y") == 0.0
        with pytest.raises(ValueError, match="y must be >= 0"):
            require_non_negative(-0.1, "y")

    def test_require_probability(self):
        assert require_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            require_probability(1.5, "p")
        with pytest.raises(ValueError):
            require_probability(-0.5, "p")


class TestTypeGuard:
    def test_accepts_expected_type(self):
        assert require_type(3, int, "value") == 3
        assert require_type("x", (int, str), "value") == "x"

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="value must be"):
            require_type("3", int, "value")
