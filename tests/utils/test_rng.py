"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import choice_weighted, derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(42).integers(1000) == make_rng(42).integers(1000)

    def test_different_seeds_differ(self):
        draws_a = make_rng(1).integers(0, 1_000_000, size=8)
        draws_b = make_rng(2).integers(0, 1_000_000, size=8)
        assert not np.array_equal(draws_a, draws_b)


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_rngs(7, 5)) == 5

    def test_spawned_streams_are_independent(self):
        first, second = spawn_rngs(7, 2)
        assert first.integers(1_000_000) != second.integers(1_000_000)

    def test_spawn_reproducible(self):
        first_run = [rng.integers(1000) for rng in spawn_rngs(3, 3)]
        second_run = [rng.integers(1000) for rng in spawn_rngs(3, 3)]
        assert first_run == second_run

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(10, "workers") == derive_seed(10, "workers")

    def test_labels_matter(self):
        assert derive_seed(10, "workers") != derive_seed(10, "requests")

    def test_integer_labels_supported(self):
        assert derive_seed(10, 3) == derive_seed(10, 3)
        assert derive_seed(10, 3) != derive_seed(10, 4)


class TestChoiceWeighted:
    def test_respects_weights(self):
        rng = make_rng(0)
        draws = [choice_weighted(rng, ["a", "b"], [0.0, 1.0]) for _ in range(20)]
        assert set(draws) == {"b"}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            choice_weighted(make_rng(0), ["a"], [0.5, 0.5])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            choice_weighted(make_rng(0), ["a", "b"], [0.0, 0.0])
