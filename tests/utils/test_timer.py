"""Tests for the stopwatch used by the response-time metric."""

import pytest

from repro.utils.timer import Stopwatch


class TestStopwatch:
    def test_context_manager_accumulates(self):
        watch = Stopwatch()
        with watch:
            sum(range(100))
        assert watch.laps == 1
        assert watch.total_seconds >= 0.0

    def test_multiple_laps(self):
        watch = Stopwatch()
        for _ in range(3):
            with watch:
                pass
        assert watch.laps == 3
        assert watch.mean_seconds == pytest.approx(watch.total_seconds / 3)

    def test_mean_of_unused_watch_is_zero(self):
        assert Stopwatch().mean_seconds == 0.0

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.laps == 0
        assert watch.total_seconds == 0.0
