"""Tests for planar geometry helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.geometry import Point, bounding_box, euclidean, interpolate, manhattan, midpoint

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_manhattan_to(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == pytest.approx(7.0)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestFunctions:
    def test_euclidean_and_manhattan(self):
        a, b = Point(1, 1), Point(4, 5)
        assert euclidean(a, b) == pytest.approx(5.0)
        assert manhattan(a, b) == pytest.approx(7.0)

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    def test_interpolate_endpoints(self):
        a, b = Point(0, 0), Point(10, 20)
        assert interpolate(a, b, 0.0) == a
        assert interpolate(a, b, 1.0) == b
        assert interpolate(a, b, 0.5) == Point(5, 10)

    def test_bounding_box(self):
        box = bounding_box([Point(1, 2), Point(-3, 7), Point(4, 0)])
        assert box == (-3, 0, 4, 7)

    def test_bounding_box_empty_rejected(self):
        with pytest.raises(ValueError):
            bounding_box([])


class TestMetricProperties:
    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points)
    def test_distance_to_self_is_zero(self, a):
        assert a.distance_to(a) == 0.0

    @given(points, points)
    def test_euclidean_not_larger_than_manhattan(self, a, b):
        assert euclidean(a, b) <= manhattan(a, b) + 1e-6
