"""Test package."""
