"""Tests for the T-share grid index with sorted cell lists."""

import pytest

from repro.index.grid import GridIndex
from repro.index.tshare_grid import TShareGridIndex
from repro.network.generators import grid_city


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=6, columns=6, block_metres=250.0, removed_block_fraction=0.0, seed=1)


@pytest.fixture()
def index(network):
    return TShareGridIndex(network, cell_metres=500.0, average_speed=10.0)


class TestSortedSearch:
    def test_reachable_cells_sorted_by_time(self, index):
        vertices = sorted(index.network.vertices())
        cells = index.cells_reachable_within(vertices[0], budget_seconds=100.0)
        assert cells, "origin cell itself must be reachable"
        assert cells[0] == index.cell_of_vertex(vertices[0])

    def test_budget_zero_still_includes_origin_cell(self, index):
        vertices = sorted(index.network.vertices())
        cells = index.cells_reachable_within(vertices[0], budget_seconds=0.0)
        assert index.cell_of_vertex(vertices[0]) in cells

    def test_larger_budget_reaches_more_cells(self, index):
        vertices = sorted(index.network.vertices())
        small = index.cells_reachable_within(vertices[0], budget_seconds=30.0)
        large = index.cells_reachable_within(vertices[0], budget_seconds=300.0)
        assert len(large) >= len(small)
        assert set(small) <= set(large)

    def test_candidate_workers_limited_by_budget(self, index, network):
        vertices = sorted(network.vertices())
        index.insert("near", vertices[0])
        index.insert("far", vertices[-1])
        candidates = index.candidate_workers(vertices[0], budget_seconds=30.0)
        assert "near" in candidates
        assert "far" not in candidates

    def test_single_side_search_can_miss_workers(self, index, network):
        """The lossy behaviour the paper attributes to tshare's searching step."""
        vertices = sorted(network.vertices())
        index.insert("far", vertices[-1])
        candidates = index.candidate_workers(vertices[0], budget_seconds=10.0)
        assert candidates == []

    def test_invalid_speed_rejected(self, network):
        with pytest.raises(ValueError):
            TShareGridIndex(network, cell_metres=500.0, average_speed=0.0)


class TestMemory:
    def test_memory_larger_than_plain_grid(self, index, network):
        plain = GridIndex(network, cell_metres=500.0)
        for member in range(10):
            plain.insert(member, member)
            index.insert(member, member)
        assert index.memory_estimate_bytes() > plain.memory_estimate_bytes()
