"""Test package."""
