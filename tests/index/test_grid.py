"""Tests for the uniform grid index."""

import pytest

from repro.index.grid import GridIndex, bulk_load
from repro.network.generators import grid_city


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=6, columns=6, block_metres=250.0, removed_block_fraction=0.0, seed=1)


@pytest.fixture()
def index(network):
    return GridIndex(network, cell_metres=500.0)


class TestGeometry:
    def test_grid_covers_network(self, index, network):
        for vertex in network.vertices():
            cell = index.cell_of_vertex(vertex)
            assert 0 <= cell[0] < index.geometry.columns
            assert 0 <= cell[1] < index.geometry.rows

    def test_cell_centre_round_trip(self, index):
        cell = (1, 1)
        x, y = index.geometry.cell_centre(cell)
        assert index.geometry.cell_of_point(x, y) == cell

    def test_cells_within_radius_include_own_cell(self, index):
        cells = index.geometry.cells_within_radius(600.0, 600.0, 10.0)
        assert index.geometry.cell_of_point(600.0, 600.0) in cells

    def test_negative_radius_returns_nothing(self, index):
        assert index.geometry.cells_within_radius(0.0, 0.0, -5.0) == []

    def test_invalid_cell_size_rejected(self, network):
        with pytest.raises(ValueError):
            GridIndex(network, cell_metres=0.0)


class TestMembership:
    def test_insert_and_query(self, index):
        index.insert("w1", 0)
        assert "w1" in index.members_in_cell(index.cell_of_vertex(0))
        assert len(index) == 1

    def test_move_member(self, index, network):
        vertices = sorted(network.vertices())
        index.insert("w1", vertices[0])
        index.insert("w1", vertices[-1])
        assert "w1" not in index.members_in_cell(index.cell_of_vertex(vertices[0]))
        assert "w1" in index.members_in_cell(index.cell_of_vertex(vertices[-1]))
        assert len(index) == 1

    def test_remove_member(self, index):
        index.insert("w1", 0)
        index.remove("w1")
        assert len(index) == 0
        index.remove("w1")  # removing twice is a no-op

    def test_members_near_vertex_radius(self, index, network):
        vertices = sorted(network.vertices())
        index.insert("near", vertices[0])
        index.insert("far", vertices[-1])
        nearby = index.members_near_vertex(vertices[0], radius_metres=100.0)
        assert "near" in nearby
        assert "far" not in nearby

    def test_members_near_vertex_large_radius_returns_all(self, index, network):
        vertices = sorted(network.vertices())
        index.insert("a", vertices[0])
        index.insert("b", vertices[-1])
        assert set(index.members_near_vertex(vertices[3], radius_metres=1e6)) == {"a", "b"}

    def test_bulk_load(self, index):
        bulk_load(index, [("a", 0), ("b", 1), ("c", 2)])
        assert len(index) == 3
        assert set(index.all_members()) == {"a", "b", "c"}


class TestStatistics:
    def test_memory_estimate_grows_with_members(self, index):
        empty_estimate = index.memory_estimate_bytes()
        for member in range(25):
            index.insert(member, member)
        assert index.memory_estimate_bytes() > empty_estimate

    def test_occupancy_histogram(self, index):
        index.insert("a", 0)
        index.insert("b", 0)
        index.insert("c", 35)
        histogram = index.occupancy_histogram()
        assert sum(count * size for size, count in histogram.items()) == 3
