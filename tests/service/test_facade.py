"""MatchingService: the online session API (decisions, dynamics, lifecycle)."""

import pytest

from repro.core.types import Request, Worker
from repro.exceptions import ConfigurationError, DispatchError
from repro.service import (
    CancellationStatus,
    DecisionStatus,
    MatchingService,
    PlatformSpec,
    RejectionReason,
)
from repro.workloads.scenarios import ScenarioConfig, build_instance

_SCENARIO = ScenarioConfig(city="small-grid", num_workers=8, num_requests=40, seed=3)


def _service(algorithm: str = "pruneGreedyDP", engine: str = "event", **knobs):
    spec = (PlatformSpec.builder()
            .city(_SCENARIO.city, seed=_SCENARIO.seed)
            .workload(num_workers=_SCENARIO.num_workers,
                      num_requests=_SCENARIO.num_requests)
            .dispatcher(algorithm, **knobs)
            .engine(engine)
            .build())
    return MatchingService.from_spec(spec)


class TestDecisions:
    def test_immediate_dispatcher_returns_accept_with_worker_and_delta(self):
        service = _service()
        request = service.instance.requests[0]
        decision = service.submit(request)
        assert decision.status is DecisionStatus.ACCEPTED
        assert decision.accepted and not decision.deferred
        assert decision.request_id == request.id
        assert decision.worker_id is not None
        assert decision.route_delta > 0.0
        assert decision.candidates_considered > 0
        assert decision.decided_at == pytest.approx(request.release_time)
        # the assignment is visible on the fleet
        holder = service.fleet.find_assignment(request.id)
        assert holder is not None and holder.worker.id == decision.worker_id

    def test_impossible_request_rejected_with_reason(self):
        service = _service()
        template = service.instance.requests[0]
        hopeless = Request(
            id=990_001,
            origin=template.origin,
            destination=template.destination,
            release_time=template.release_time,
            deadline=template.release_time,  # zero time budget
            penalty=template.penalty,
        )
        decision = service.submit(hopeless)
        assert decision.status is DecisionStatus.REJECTED
        assert decision.reason in (
            RejectionReason.NO_CANDIDATES,
            RejectionReason.NO_FEASIBLE_INSERTION,
            RejectionReason.DECISION_PHASE,
        )
        assert not decision.accepted

    def test_batch_dispatcher_defers_then_resolves(self):
        service = _service("batch", batch_interval=6.0)
        request = service.instance.requests[0]
        decision = service.submit(request)
        assert decision.status is DecisionStatus.DEFERRED
        # nothing resolved yet
        assert service.poll_decisions() == []
        resolved = service.advance_to(request.release_time + 6.0)
        assert [d.request_id for d in resolved] == [request.id]
        assert resolved[0].status in (DecisionStatus.ACCEPTED, DecisionStatus.REJECTED)
        assert resolved[0].decided_at == pytest.approx(request.release_time + 6.0)

    def test_describe_mentions_the_worker(self):
        service = _service()
        decision = service.submit(service.instance.requests[0])
        assert f"worker {decision.worker_id}" in decision.describe()

    def test_non_monotone_submission_raises(self):
        service = _service()
        first, second = service.instance.requests[:2]
        service.submit(second)
        with pytest.raises(DispatchError, match="time-ordered"):
            service.submit(first)

    def test_duplicate_request_id_raises(self):
        service = _service()
        request = service.instance.requests[0]
        service.submit(request)
        clone = Request(
            id=request.id,
            origin=request.origin,
            destination=request.destination,
            release_time=request.release_time,
            deadline=request.deadline,
            penalty=request.penalty,
        )
        with pytest.raises(DispatchError, match="duplicate request id"):
            service.submit(clone)

    @pytest.mark.parametrize("engine", ["event", "legacy"])
    def test_resubmitting_the_same_request_object_raises(self, engine):
        # a client retry must not double-dispatch the request
        service = _service(engine=engine)
        request = service.instance.requests[0]
        assert service.submit(request).accepted
        with pytest.raises(DispatchError, match="duplicate request id"):
            service.submit(request)


class TestCancellation:
    def test_cancel_deferred_request_removes_it_from_the_batch(self):
        service = _service("batch", batch_interval=60.0)
        request = service.instance.requests[0]
        service.submit(request)
        outcome = service.cancel(request.id)
        assert outcome.status is CancellationStatus.REMOVED_FROM_BATCH
        assert outcome.cancelled
        result = service.drain()
        assert result.cancelled_requests == 1
        assert result.served_requests + result.rejected_requests == 0

    def test_cancel_assigned_request_removes_it_from_the_route(self):
        service = _service()
        request = service.instance.requests[0]
        decision = service.submit(request)
        assert decision.accepted
        outcome = service.cancel(request.id)
        assert outcome.status is CancellationStatus.REMOVED_FROM_ROUTE
        assert service.fleet.find_assignment(request.id) is None
        result = service.drain()
        assert result.cancelled_requests == 1

    def test_cancel_unknown_request(self):
        service = _service()
        outcome = service.cancel(123_456)
        assert outcome.status is CancellationStatus.UNKNOWN_REQUEST
        assert not outcome.cancelled

    def test_cancel_before_submission_is_unknown_not_too_late(self):
        # instance requests are known up front for replay, but cancelling one
        # that was never submitted must not report "too late"
        service = _service()
        not_yet_submitted = service.instance.requests[5]
        outcome = service.cancel(not_yet_submitted.id)
        assert outcome.status is CancellationStatus.UNKNOWN_REQUEST
        # the request can still be submitted (and decided) afterwards
        decision = service.submit(not_yet_submitted)
        assert not decision.deferred

    def test_cancel_after_delivery_is_too_late(self):
        service = _service()
        request = service.instance.requests[0]
        assert service.submit(request).accepted
        service.advance_to(request.deadline + 10_000.0)
        outcome = service.cancel(request.id)
        assert outcome.status is CancellationStatus.TOO_LATE

    def test_cancelling_a_deferred_request_resolves_its_decision(self):
        # a DEFERRED submission must reach a terminal state even when it is
        # withdrawn before the batch window flushes
        service = _service("batch", batch_interval=50_000.0)
        request = service.instance.requests[0]
        assert service.submit(request).deferred
        assert service.snapshot().decisions_pending == 1
        service.cancel(request.id)
        resolved = service.poll_decisions()
        assert [d.request_id for d in resolved] == [request.id]
        assert resolved[0].status is DecisionStatus.CANCELLED
        assert "cancelled" in resolved[0].describe()
        assert service.snapshot().decisions_pending == 0

    def test_dynamics_cancellations_leave_no_pending_decisions(self):
        # dynamics-seeded cancellations (no client cancel() call) must also
        # resolve open deferred decisions
        spec = (PlatformSpec.builder()
                .city("small-grid", seed=3)
                .workload(num_workers=8, num_requests=40, cancellation_rate=0.5)
                .dispatcher("batch")
                .build())
        service = MatchingService.from_spec(spec)
        decisions = []
        result = service.replay(on_decision=decisions.append)
        assert result.cancelled_requests > 0
        assert service.snapshot().decisions_pending == 0
        terminal = {d.request_id: d for d in decisions if not d.deferred}
        submitted = {request.id for request in service.instance.requests}
        assert set(terminal) == submitted

    def test_cancel_requires_event_engine(self):
        service = _service(engine="legacy")
        service.submit(service.instance.requests[0])
        with pytest.raises(ConfigurationError, match="event"):
            service.cancel(service.instance.requests[0].id)


class TestFleetEvents:
    def test_retire_all_workers_rejects_subsequent_requests(self):
        service = _service()
        for worker in service.instance.workers:
            service.retire_worker(worker.id)
        decision = service.submit(service.instance.requests[0])
        assert decision.status is DecisionStatus.REJECTED
        assert decision.reason is RejectionReason.NO_CANDIDATES

    def test_added_worker_can_receive_assignments(self):
        service = _service()
        for worker in service.instance.workers:
            service.retire_worker(worker.id)
        request = service.instance.requests[0]
        joined = Worker(id=10_001, initial_location=request.origin, capacity=4)
        service.add_worker(joined)
        decision = service.submit(request)
        assert decision.accepted
        assert decision.worker_id == joined.id

    def test_added_worker_travel_counts_in_the_final_result(self):
        service = _service()
        for worker in service.instance.workers:
            service.retire_worker(worker.id)
        request = service.instance.requests[0]
        service.add_worker(Worker(id=10_001, initial_location=request.origin, capacity=4))
        assert service.submit(request).accepted
        result = service.drain()
        assert result.served_requests == 1
        assert result.total_travel_cost > 0.0

    def test_duplicate_worker_id_raises(self):
        service = _service()
        existing = service.instance.workers[0]
        with pytest.raises(DispatchError, match="already in the fleet"):
            service.add_worker(Worker(id=existing.id, initial_location=0, capacity=4))

    def test_reinstate_worker(self):
        service = _service()
        worker_id = service.instance.workers[0].id
        service.retire_worker(worker_id)
        assert not service.fleet.is_available(worker_id)
        service.reinstate_worker(worker_id)
        assert service.fleet.is_available(worker_id)

    def test_retire_unknown_worker_raises(self):
        service = _service()
        with pytest.raises(DispatchError, match="unknown worker id 999"):
            service.retire_worker(999)

    def test_reinstate_unknown_worker_raises(self):
        service = _service()
        with pytest.raises(DispatchError, match="unknown worker id"):
            service.reinstate_worker(-1)

    def test_retired_worker_finishes_its_active_route(self):
        service = _service()
        request = service.instance.requests[0]
        decision = service.submit(request)
        assert decision.accepted
        service.retire_worker(decision.worker_id)
        # no new assignments, but the route in progress still completes
        assert not service.fleet.is_available(decision.worker_id)
        result = service.drain()
        assert result.served_requests == 1

    def test_reinstate_after_drain_raises(self):
        service = _service()
        worker_id = service.instance.workers[0].id
        service.retire_worker(worker_id)
        service.drain()
        with pytest.raises(DispatchError, match="drained"):
            service.reinstate_worker(worker_id)

    def test_fleet_events_work_on_legacy_engine_too(self):
        service = _service(engine="legacy")
        for worker in service.instance.workers:
            service.retire_worker(worker.id)
        request = service.instance.requests[0]
        service.add_worker(Worker(id=10_001, initial_location=request.origin, capacity=4))
        assert service.submit(request).accepted


class TestLifecycle:
    def test_advance_to_moves_the_clock(self):
        service = _service()
        service.advance_to(1234.5)
        assert service.clock == pytest.approx(1234.5)

    def test_snapshot_reports_session_state(self):
        service = _service("batch", batch_interval=50_000.0)
        submitted = service.instance.requests[:3]
        for request in submitted:
            service.submit(request)
        snapshot = service.snapshot()
        assert snapshot.algorithm == "batch"
        assert snapshot.engine == "event"
        assert snapshot.workers_total == _SCENARIO.num_workers
        assert snapshot.workers_online == _SCENARIO.num_workers
        assert snapshot.requests_submitted == 3
        assert snapshot.decisions_pending == 3
        assert snapshot.served == 0 and snapshot.rejected == 0
        assert snapshot.clock == pytest.approx(submitted[-1].release_time)

    def test_drain_is_idempotent_and_closes_the_session(self):
        service = _service()
        for request in service.instance.requests[:5]:
            service.submit(request)
        result = service.drain()
        assert service.drain() is result
        assert service.drained
        with pytest.raises(DispatchError, match="drained"):
            service.submit(service.instance.requests[5])
        with pytest.raises(DispatchError, match="drained"):
            service.advance_to(1e9)
        with pytest.raises(DispatchError, match="drained"):
            service.retire_worker(service.instance.workers[0].id)

    def test_replay_streams_the_whole_workload(self):
        service = _service()
        decisions = []
        result = service.replay(on_decision=decisions.append)
        assert result.total_requests == _SCENARIO.num_requests
        final = {d.request_id: d for d in decisions if not d.deferred}
        assert len(final) == _SCENARIO.num_requests

    def test_direct_instance_construction(self):
        # the facade also accepts a prebuilt instance + dispatcher
        from repro.dispatch import DispatcherConfig, PruneGreedyDP

        instance = build_instance(_SCENARIO)
        service = MatchingService(
            instance, PruneGreedyDP(DispatcherConfig(grid_cell_metres=2000.0))
        )
        assert service.submit(instance.requests[0]).accepted

    def test_unknown_engine_rejected(self):
        from repro.dispatch import DispatcherConfig, PruneGreedyDP

        instance = build_instance(_SCENARIO)
        with pytest.raises(ConfigurationError, match="unknown engine"):
            MatchingService(
                instance,
                PruneGreedyDP(DispatcherConfig()),
                engine="warp",
            )
