"""PlatformSpec: builder, validation, serialisation round-trips."""

import dataclasses
import json

import pytest

from repro.dispatch.registry import DispatcherSpec
from repro.exceptions import ConfigurationError
from repro.service.spec import PlatformSpec
from repro.workloads.scenarios import ScenarioConfig


class TestBuilder:
    def test_fluent_builder_composes_everything(self):
        spec = (PlatformSpec.builder()
                .city("nyc-like", seed=7, city_seed=11)
                .workload(num_workers=25, num_requests=120, deadline_minutes=15.0)
                .oracle(precompute="apsp")
                .dispatcher("batch", batch_interval=12.0)
                .sharding(num_shards=4, strategy="kd", escalate_k=3)
                .engine("event")
                .build())
        assert spec.scenario.city == "nyc-like"
        assert spec.scenario.seed == 7 and spec.scenario.city_seed == 11
        assert spec.scenario.num_workers == 25
        assert spec.scenario.oracle_precompute == "apsp"
        assert spec.dispatcher.algorithm == "batch"
        assert spec.dispatcher.batch_interval == 12.0
        assert spec.dispatcher.num_shards == 4
        assert spec.dispatcher.shard_strategy == "kd"
        assert spec.dispatcher.is_sharded
        assert spec.dispatcher.name == "sharded:batch"
        assert spec.engine == "event"

    def test_builder_accepts_sharded_names(self):
        spec = PlatformSpec.builder().dispatcher("sharded:tshare").build()
        assert spec.dispatcher.algorithm == "tshare"
        assert spec.dispatcher.is_sharded

    def test_builder_rejects_unknown_workload_field(self):
        with pytest.raises(ConfigurationError, match="num_worker"):
            PlatformSpec.builder().workload(num_worker=10)

    def test_builder_rejects_unknown_dispatcher_knob(self):
        with pytest.raises(ConfigurationError, match="batch_interval"):
            PlatformSpec.builder().dispatcher("batch", batch_intervall=3.0)

    def test_defaults_are_valid(self):
        spec = PlatformSpec()
        assert spec.validate() is spec
        assert spec.dispatcher.algorithm == "pruneGreedyDP"


class TestValidation:
    def test_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            PlatformSpec(engine="warp").validate()

    def test_unknown_city_with_suggestion(self):
        spec = PlatformSpec(scenario=ScenarioConfig(city="nyc-lik"))
        with pytest.raises(ConfigurationError, match="did you mean 'nyc-like'"):
            spec.validate()

    def test_unknown_algorithm_with_suggestion(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            PlatformSpec(dispatcher=DispatcherSpec(algorithm="pruneGreedy")).validate()

    def test_legacy_engine_rejects_dynamics(self):
        spec = PlatformSpec(
            scenario=ScenarioConfig(cancellation_rate=0.1), engine="legacy"
        )
        with pytest.raises(ConfigurationError, match="require"):
            spec.validate()

    def test_dispatcher_config_derives_grid_cell_from_scenario(self):
        spec = PlatformSpec(scenario=ScenarioConfig(grid_km=3.0))
        assert spec.dispatcher_config().grid_cell_metres == 3000.0

    def test_explicit_grid_cell_wins(self):
        spec = PlatformSpec(
            scenario=ScenarioConfig(grid_km=3.0),
            dispatcher=DispatcherSpec(grid_cell_metres=500.0),
        )
        assert spec.dispatcher_config().grid_cell_metres == 500.0


class TestSerialisation:
    def _spec(self) -> PlatformSpec:
        return (PlatformSpec.builder()
                .city("small-grid", seed=5)
                .workload(num_workers=9, num_requests=40)
                .dispatcher("batch", batch_interval=9.0)
                .sharding(num_shards=2)
                .engine("legacy")
                .build())

    def test_dict_round_trip(self):
        spec = self._spec()
        assert PlatformSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_top_level_key(self):
        with pytest.raises(ConfigurationError, match="engine"):
            PlatformSpec.from_dict({"engin": "event"})

    def test_from_dict_rejects_unknown_scenario_key(self):
        with pytest.raises(ConfigurationError, match="did you mean 'num_workers'"):
            PlatformSpec.from_dict({"scenario": {"num_wrkers": 5}})

    def test_json_file_round_trip(self, tmp_path):
        spec = self._spec()
        path = tmp_path / "platform.json"
        spec.to_json(path)
        loaded = PlatformSpec.from_file(path)
        assert loaded == spec
        # the satellite contract: from_file <-> to_dict round-trips exactly
        assert loaded.to_dict() == spec.to_dict()
        assert json.loads(path.read_text(encoding="utf-8")) == spec.to_dict()

    def test_toml_file_loads(self, tmp_path):
        path = tmp_path / "platform.toml"
        path.write_text(
            """
engine = "event"

[scenario]
city = "small-grid"
num_workers = 9
num_requests = 40
seed = 5

[dispatcher]
algorithm = "batch"
batch_interval = 9.0
num_shards = 2
sharded = true
""",
            encoding="utf-8",
        )
        loaded = PlatformSpec.from_file(path)
        expected = dataclasses.replace(self._spec(), engine="event")
        assert loaded == expected
        # TOML and JSON payloads describing the same platform agree
        assert loaded.to_dict() == expected.to_dict()

    def test_from_file_rejects_unknown_suffix(self, tmp_path):
        path = tmp_path / "platform.yaml"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="use .json or .toml"):
            PlatformSpec.from_file(path)


class TestDispatcherSpecRoundTrip:
    def test_dispatcher_spec_dict_round_trip(self):
        spec = DispatcherSpec.parse("sharded:kinetic", num_shards=3, kinetic_node_budget=99)
        assert DispatcherSpec.from_dict(spec.to_dict()) == spec


class TestFileCitiesAndArtifacts:
    def test_file_city_validates(self):
        spec = PlatformSpec(scenario=ScenarioConfig(city="file:/data/town.geojson"))
        assert spec.validate() is spec

    def test_riverton_registry_city_validates(self):
        spec = PlatformSpec(scenario=ScenarioConfig(city="riverton"))
        assert spec.validate() is spec

    def test_empty_file_city_rejected(self):
        spec = PlatformSpec(scenario=ScenarioConfig(city="file:"))
        with pytest.raises(ConfigurationError, match="names no file"):
            spec.validate()

    def test_unknown_city_error_mentions_file_prefix(self):
        spec = PlatformSpec(scenario=ScenarioConfig(city="atlantis"))
        with pytest.raises(ConfigurationError, match="file:<path>"):
            spec.validate()

    def test_builder_oracle_artifact_dir(self):
        spec = (PlatformSpec.builder()
                .city("riverton")
                .oracle(backend="ch", artifact_dir="/tmp/repro-store")
                .build())
        assert spec.scenario.oracle_artifact_dir == "/tmp/repro-store"
        assert spec.scenario.oracle_backend == "ch"

    def test_artifact_dir_survives_dict_round_trip(self):
        spec = (PlatformSpec.builder()
                .city("small-grid")
                .oracle(backend="hub_labels", artifact_dir="store")
                .build())
        assert PlatformSpec.from_dict(spec.to_dict()) == spec
