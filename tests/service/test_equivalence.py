"""Service-vs-batch equivalence: the acceptance bar of the online facade.

Replaying the standard scenario through :class:`MatchingService` (incremental
submit/drain) must reproduce the direct engine drive
(:class:`~repro.simulation.simulator.Simulator` — batch-seeded event heap /
the seed request loop) **bit for bit** on served rate, unified cost,
distance queries and Dijkstra runs, for every registry dispatcher and a
sharded variant, on both engines.
"""

import pytest

from repro.dispatch import ALGORITHMS, DispatcherConfig, make_dispatcher
from repro.service import MatchingService
from repro.simulation.simulator import Simulator
from repro.workloads.scenarios import ScenarioConfig, build_instance

#: the repo's standard equivalence scenario (mirrors tests/sharding).
_STANDARD = ScenarioConfig(city="small-grid", num_workers=14, num_requests=80, seed=2018)

#: every registry dispatcher plus one sharded variant at K=4.
_VARIANTS = sorted(ALGORITHMS) + ["sharded:pruneGreedyDP"]


def _dispatcher(name: str):
    return make_dispatcher(
        name,
        DispatcherConfig(
            grid_cell_metres=_STANDARD.grid_km * 1000.0,
            num_shards=4 if name.startswith("sharded:") else 1,
        ),
    )


def _fingerprint(result, instance):
    return {
        "total": result.total_requests,
        "served": result.served_requests,
        "rejected": result.rejected_requests,
        "served_rate": result.served_rate,
        "unified_cost": result.unified_cost,
        "travel_cost": result.total_travel_cost,
        "penalty": result.total_penalty,
        "distance_queries": result.distance_queries,
        "lower_bound_queries": result.lower_bound_queries,
        "candidates": result.candidates_considered,
        "insertions": result.insertions_evaluated,
        "dijkstra_runs": instance.oracle.counters.dijkstra_runs,
        "mean_wait": result.mean_wait_seconds,
        "mean_detour": result.mean_detour_ratio,
    }


@pytest.mark.parametrize("engine", ["event", "legacy"])
@pytest.mark.parametrize("algorithm", _VARIANTS)
def test_service_replay_matches_direct_engine_drive(algorithm, engine):
    direct_instance = build_instance(_STANDARD)
    direct = Simulator(direct_instance, _dispatcher(algorithm), engine=engine).run()

    service_instance = build_instance(_STANDARD)
    service = MatchingService(service_instance, _dispatcher(algorithm), engine=engine)
    replayed = service.replay()

    assert _fingerprint(replayed, service_instance) == _fingerprint(direct, direct_instance)


@pytest.mark.parametrize("backend", ["dijkstra", "apsp", "ch", "hub_labels"])
def test_service_replay_matches_direct_drive_under_every_backend(backend):
    """The oracle backend must never change what the service replays."""
    scenario = _STANDARD.with_overrides(oracle_backend=backend)
    direct_instance = build_instance(scenario)
    direct = Simulator(direct_instance, _dispatcher("pruneGreedyDP")).run()

    service_instance = build_instance(scenario)
    service = MatchingService(service_instance, _dispatcher("pruneGreedyDP"))
    replayed = service.replay()

    assert service_instance.oracle.backend_name == backend
    assert _fingerprint(replayed, service_instance) == _fingerprint(direct, direct_instance)


def test_decision_stream_is_consistent_with_the_metrics():
    """The typed decision stream agrees with the aggregated result."""
    instance = build_instance(_STANDARD)
    service = MatchingService(instance, _dispatcher("batch"))
    decisions = []
    result = service.replay(on_decision=decisions.append)
    final = [d for d in decisions if not d.deferred]
    assert len(final) == result.total_requests
    assert sum(1 for d in final if d.accepted) == result.served_requests
    assert sum(1 for d in final if not d.accepted) == result.rejected_requests
