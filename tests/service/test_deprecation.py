"""Deprecation shims: old entry points warn and route through the facade."""

import warnings

import pytest

from repro.dispatch import DispatcherConfig, DispatcherSpec, make_dispatcher
from repro.experiments.runner import ScenarioRunner
from repro.service import MatchingService, PlatformSpec
from repro.simulation.simulator import Simulator, run_simulation
from repro.workloads.scenarios import ScenarioConfig, build_instance

_SCENARIO = ScenarioConfig(city="small-grid", num_workers=8, num_requests=40, seed=3)


def _fingerprint(result):
    return (
        result.total_requests,
        result.served_requests,
        result.rejected_requests,
        result.unified_cost,
        result.total_travel_cost,
        result.distance_queries,
        result.candidates_considered,
        result.insertions_evaluated,
    )


def _dispatcher():
    return make_dispatcher(
        "pruneGreedyDP", DispatcherConfig(grid_cell_metres=_SCENARIO.grid_km * 1000.0)
    )


class TestRunSimulationShim:
    def test_warns_and_routes_through_the_facade(self):
        instance = build_instance(_SCENARIO)
        with pytest.warns(DeprecationWarning, match="MatchingService"):
            shimmed = run_simulation(instance, _dispatcher())

        service_instance = build_instance(_SCENARIO)
        direct = MatchingService(service_instance, _dispatcher()).replay()
        assert _fingerprint(shimmed) == _fingerprint(direct)

    def test_matches_the_direct_engine_drive_on_both_engines(self):
        for engine in ("event", "legacy"):
            instance = build_instance(_SCENARIO)
            with pytest.warns(DeprecationWarning):
                shimmed = run_simulation(instance, _dispatcher(), engine=engine)
            baseline = Simulator(
                build_instance(_SCENARIO), _dispatcher(), engine=engine
            ).run()
            assert _fingerprint(shimmed) == _fingerprint(baseline)


class TestScenarioRunnerShim:
    def test_old_signature_warns(self):
        with pytest.warns(DeprecationWarning, match="PlatformSpec"):
            ScenarioRunner(DispatcherConfig(batch_interval=3.0), engine="legacy")

    def test_engine_keyword_alone_warns(self):
        with pytest.warns(DeprecationWarning):
            runner = ScenarioRunner(engine="legacy")
        assert runner.engine == "legacy"

    def test_default_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            runner = ScenarioRunner()
        assert runner.engine == "event"

    def test_platform_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            runner = ScenarioRunner(platform=PlatformSpec(engine="legacy"))
        assert runner.engine == "legacy"

    def test_old_and_new_styles_produce_identical_results(self):
        config = DispatcherConfig(grid_cell_metres=2000.0, batch_interval=4.0)
        with pytest.warns(DeprecationWarning):
            old_style = ScenarioRunner(config, engine="event")
        new_style = ScenarioRunner(
            platform=PlatformSpec(dispatcher=DispatcherSpec.from_config(config))
        )
        old_results = old_style.compare(_SCENARIO, ["pruneGreedyDP", "batch"])
        new_results = new_style.compare(_SCENARIO, ["pruneGreedyDP", "batch"])
        assert [_fingerprint(result) for result in old_results] == [
            _fingerprint(result) for result in new_results
        ]

    def test_platform_and_deprecated_args_conflict(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="not both"):
            ScenarioRunner(DispatcherConfig(), platform=PlatformSpec())


class TestCompareSpecSemantics:
    def test_explicit_spec_keeps_its_pinned_grid_cell(self):
        runner = ScenarioRunner()
        pinned = DispatcherSpec(algorithm="nearest", grid_cell_metres=500.0)
        unpinned = DispatcherSpec(algorithm="nearest")
        config = _SCENARIO.with_overrides(grid_km=2.0)
        pinned_result, unpinned_result, named_result = runner.compare(
            config, [pinned, unpinned, "nearest"]
        )
        # grid memory scales with the cell count, so a 500 m cell over the
        # same city yields a strictly larger index than the 2 km scenario cell
        assert pinned_result.index_memory_bytes > unpinned_result.index_memory_bytes
        # an unpinned spec and a bare name both derive the scenario cell
        assert unpinned_result.index_memory_bytes == named_result.index_memory_bytes
        assert unpinned_result.unified_cost == named_result.unified_cost
