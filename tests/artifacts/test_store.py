"""Tests of content hashing and the preprocessing artifact store."""

import json

import numpy as np
import pytest

from repro.artifacts import ArtifactStore, network_content_hash
from repro.artifacts.store import FORMAT_VERSION, PERSISTABLE_BACKENDS
from repro.exceptions import ArtifactError
from repro.network.backends import make_backend
from repro.network.generators import grid_city, random_geometric_city
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle
from repro.utils.geometry import Point


@pytest.fixture(scope="module")
def city():
    return grid_city(rows=6, columns=6, removed_block_fraction=0.1, seed=7)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


def rebuilt(network, *, scale_coords=None, scale_speed=None):
    """Copy ``network``, optionally contracting geometry or scaling speeds.

    Coordinates may only shrink (``scale_coords <= 1``): that perturbs the
    hashed geometry while keeping every edge length >= the straight line.
    """
    result = RoadNetwork(name=network.name)
    for vertex in sorted(network.vertices()):
        point = network.coordinates(vertex)
        if scale_coords is not None:
            point = Point(point.x * scale_coords, point.y * scale_coords)
        result.add_vertex(vertex, point)
    for edge in network.edges():
        result.add_edge(
            edge.u,
            edge.v,
            length=edge.length,
            speed=edge.speed * (scale_speed or 1.0),
            road_class=edge.road_class,
        )
    return result


class TestContentHash:
    def test_deterministic(self, city):
        assert network_content_hash(city) == network_content_hash(city)
        assert network_content_hash(rebuilt(city)) == network_content_hash(city)

    def test_same_generator_same_hash(self):
        a = random_geometric_city(num_vertices=50, seed=3)
        b = random_geometric_city(num_vertices=50, seed=3)
        assert network_content_hash(a) == network_content_hash(b)

    def test_seed_changes_hash(self):
        a = random_geometric_city(num_vertices=50, seed=3)
        b = random_geometric_city(num_vertices=50, seed=4)
        assert network_content_hash(a) != network_content_hash(b)

    def test_geometry_changes_hash(self, city):
        contracted = rebuilt(city, scale_coords=0.999)
        assert network_content_hash(contracted) != network_content_hash(city)

    def test_cost_changes_hash(self, city):
        slower = rebuilt(city, scale_speed=0.5)
        assert network_content_hash(slower) != network_content_hash(city)

    def test_name_does_not_change_hash(self, city):
        renamed = rebuilt(city)
        renamed.name = "something-else"
        assert network_content_hash(renamed) == network_content_hash(city)


class TestStoreBasics:
    def test_round_trip_all_backends(self, city, store):
        content_hash = network_content_hash(city)
        for name in PERSISTABLE_BACKENDS:
            assert not store.has(content_hash, name)
            fresh = DistanceOracle(city, backend=name)
            path = store.save_backend(city, fresh.backend, content_hash=content_hash)
            assert path.exists()
            assert store.has(content_hash, name)
            loaded = store.load_backend(name, city, content_hash=content_hash)
            assert loaded is not None
            assert loaded.name == name

    def test_load_missing_returns_none(self, city, store):
        assert store.load_backend("ch", city) is None

    def test_dijkstra_not_persistable(self, city, store):
        with pytest.raises(ArtifactError, match="no persistable state"):
            store.artifact_path(network_content_hash(city), "dijkstra")

    def test_entries_lists_manifests(self, city, store):
        assert store.entries() == []
        fresh = DistanceOracle(city, backend="ch")
        store.save_backend(city, fresh.backend)
        (entry,) = store.entries()
        assert entry["content_hash"] == network_content_hash(city)
        assert entry["format_version"] == FORMAT_VERSION
        assert "ch" in entry["backends"]
        assert entry["network"]["num_vertices"] == city.num_vertices

    def test_short_hash_rejected(self, store):
        with pytest.raises(ArtifactError, match="malformed content hash"):
            store.entry_dir("ab")


class TestBitwiseEquality:
    """A loaded backend must answer exactly as the fresh build would."""

    @pytest.mark.parametrize("name", PERSISTABLE_BACKENDS)
    def test_loaded_matches_fresh_bitwise(self, city, store, name):
        fresh = DistanceOracle(city, backend=name)
        store.save_backend(city, fresh.backend)
        warm = DistanceOracle(city, backend=name, artifact_dir=store.root)
        assert warm.artifact_loaded
        vertices = sorted(city.vertices())
        rng = np.random.default_rng(2018)
        us = [vertices[i] for i in rng.integers(0, len(vertices), size=100)]
        vs = [vertices[i] for i in rng.integers(0, len(vertices), size=100)]
        # np.array_equal, not allclose: the store promises bit identity
        assert np.array_equal(fresh.distance_pairs(us, vs), warm.distance_pairs(us, vs))
        assert np.array_equal(
            fresh.distances_many(us[0], vs), warm.distances_many(us[0], vs)
        )


class TestValidation:
    def setup_entry(self, city, store, name="ch"):
        fresh = DistanceOracle(city, backend=name)
        content_hash = network_content_hash(city)
        store.save_backend(city, fresh.backend, content_hash=content_hash)
        return content_hash

    def test_version_mismatch(self, city, store):
        content_hash = self.setup_entry(city, store)
        manifest_file = store.manifest_path(content_hash)
        manifest = json.loads(manifest_file.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        manifest_file.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="format version"):
            store.load_backend("ch", city, content_hash=content_hash)

    def test_hash_mismatch(self, city, store):
        content_hash = self.setup_entry(city, store)
        manifest_file = store.manifest_path(content_hash)
        manifest = json.loads(manifest_file.read_text())
        manifest["content_hash"] = "0" * 64
        manifest_file.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="content hash mismatch"):
            store.load_backend("ch", city, content_hash=content_hash)

    def test_missing_manifest(self, city, store):
        content_hash = self.setup_entry(city, store)
        store.manifest_path(content_hash).unlink()
        with pytest.raises(ArtifactError, match="manifest missing"):
            store.load_backend("ch", city, content_hash=content_hash)

    def test_wrong_network_shape(self, city, store):
        content_hash = self.setup_entry(city, store)
        other = grid_city(rows=4, columns=4, removed_block_fraction=0.0, seed=7)
        # force the lookup to the existing entry: same key, different network
        with pytest.raises(ArtifactError, match="vertices"):
            store.load_backend("ch", other, content_hash=content_hash)

    def test_corrupt_npz(self, city, store):
        content_hash = self.setup_entry(city, store)
        store.artifact_path(content_hash, "ch").write_bytes(b"not an npz file")
        with pytest.raises(ArtifactError, match="cannot read artifact"):
            store.load_backend("ch", city, content_hash=content_hash)

    def test_load_or_build_recovers_from_corruption(self, city, store):
        content_hash = self.setup_entry(city, store)
        store.artifact_path(content_hash, "ch").write_bytes(b"garbage")
        backend, loaded = store.load_or_build("ch", city, content_hash=content_hash)
        assert not loaded  # rebuilt, not served from the corrupt file
        backend2, loaded2 = store.load_or_build("ch", city, content_hash=content_hash)
        assert loaded2  # the rebuild overwrote the corrupt artifact


class TestOracleIntegration:
    def test_miss_then_hit(self, city, store):
        first = DistanceOracle(city, backend="ch", artifact_dir=store.root)
        assert not first.artifact_loaded  # cold: built and saved
        second = DistanceOracle(city, backend="ch", artifact_dir=store.root)
        assert second.artifact_loaded  # warm: loaded
        assert first.content_hash == second.content_hash == network_content_hash(city)

    def test_no_store_no_hash(self, city):
        oracle = DistanceOracle(city, backend="dijkstra")
        assert oracle.artifact_store is None
        assert oracle.content_hash is None
        assert not oracle.artifact_loaded

    def test_auto_keeps_apsp_on_small_cities(self, city, store):
        # "auto" picks apsp here; a cached hub-label artifact must not
        # displace it (only the ch pick upgrades — apsp queries are O(1))
        hub = DistanceOracle(city, backend="hub_labels", artifact_dir=store.root)
        assert not hub.artifact_loaded
        auto = DistanceOracle(city, backend="auto", artifact_dir=store.root)
        assert auto.backend.name == "apsp"

    def test_auto_upgrades_ch_to_cached_hub_labels(self, city, store, monkeypatch):
        # when "auto" would pick ch but hub labels are already on disk, the
        # store-aware policy loads them instead: the expensive labelling cost
        # is sunk and queries are faster. (The policy keys on the *selection*,
        # so force it rather than building a >2000-vertex city in a test.)
        DistanceOracle(city, backend="hub_labels", artifact_dir=store.root)
        monkeypatch.setattr(
            "repro.network.oracle.select_backend_name", lambda n, hint=None: "ch"
        )
        auto = DistanceOracle(city, backend="auto", artifact_dir=store.root)
        assert auto.backend.name == "hub_labels"
        assert auto.artifact_loaded
        # without the cached labels the forced selection stands
        plain = DistanceOracle(city, backend="auto")
        assert plain.backend.name == "ch"

    def test_make_backend_uses_store(self, city, store):
        host = DistanceOracle(city, backend="dijkstra")
        built = make_backend("ch", city, host, store=store)
        assert store.has(network_content_hash(city), "ch")
        served = make_backend("ch", city, host, store=store)
        assert served.hierarchy.num_shortcuts == built.hierarchy.num_shortcuts
