"""End-to-end checks on the hand-checkable instance inspired by Example 1."""

import pytest

from repro.core.examples_paper import example_instance, example_network
from repro.core.insertion.basic import BasicInsertion
from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.route import empty_route
from repro.dispatch import DispatcherConfig, PruneGreedyDP
from repro.network.oracle import DistanceOracle
from repro.simulation.simulator import run_simulation


class TestExampleNetwork:
    def test_network_shape(self):
        network = example_network()
        assert network.num_vertices == 8
        assert network.num_edges == 10

    def test_distances_are_hand_checkable(self):
        network = example_network()
        oracle = DistanceOracle(network, precompute="apsp")
        # v7 -> v1 is one 10 m vertical edge at 1 m/s
        assert oracle.distance(7, 1) == pytest.approx(10.0)
        # v2 -> v4 is one vertical edge
        assert oracle.distance(2, 4) == pytest.approx(10.0)
        # v3 -> v5: one vertical edge
        assert oracle.distance(3, 5) == pytest.approx(10.0)


class TestExampleInstance:
    def test_instance_validates(self):
        instance = example_instance()
        instance.validate()
        assert instance.num_workers == 2
        assert instance.num_requests == 3

    def test_first_request_served_by_insertion(self):
        instance = example_instance()
        oracle = instance.oracle
        worker = instance.workers[0]
        request = instance.requests[0]
        route = empty_route(worker, start_time=request.release_time)
        route.refresh(oracle)
        result = LinearDPInsertion().best_insertion(route, request, oracle)
        reference = BasicInsertion().best_insertion(route, request, oracle)
        assert result.feasible
        assert result.delta == pytest.approx(reference.delta)

    def test_full_simulation_serves_all_requests(self):
        instance = example_instance()
        result = run_simulation(instance, PruneGreedyDP(DispatcherConfig(grid_cell_metres=20.0)))
        assert result.served_rate == pytest.approx(1.0)
        assert result.deadline_violations == 0
        # unified cost equals the travelled time (no penalties incurred)
        assert result.unified_cost == pytest.approx(result.total_travel_cost)
