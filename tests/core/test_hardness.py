"""Tests for the hardness constructions of Section 3.3 (Lemmas 1-3)."""

import pytest

from repro.core.hardness import (
    HardnessInstanceSpec,
    adversarial_instance,
    estimate_competitive_ratio,
    lemma1_instance,
    lemma2_instance,
    lemma3_instance,
    optimal_cost,
)
from repro.dispatch import DispatcherConfig, PruneGreedyDP
from repro.simulation.simulator import run_simulation
from repro.utils.rng import make_rng


class TestInstanceGenerators:
    def test_lemma1_instance_shape(self):
        spec = HardnessInstanceSpec(lemma=1, num_vertices=12)
        instance = lemma1_instance(spec, make_rng(0))
        instance.validate()
        assert len(instance.workers) == 1
        assert len(instance.requests) == 1
        request = instance.requests[0]
        assert request.release_time == 12.0
        assert request.origin == request.destination
        assert instance.objective.alpha == 0.0

    def test_lemma2_destination_is_antipodal(self):
        spec = HardnessInstanceSpec(lemma=2, num_vertices=16)
        instance = lemma2_instance(spec, make_rng(1))
        request = instance.requests[0]
        assert instance.oracle.distance(request.origin, request.destination) == pytest.approx(8.0)

    def test_lemma3_penalty_grows_with_network(self):
        small = lemma3_instance(HardnessInstanceSpec(lemma=3, num_vertices=10), make_rng(2))
        large = lemma3_instance(HardnessInstanceSpec(lemma=3, num_vertices=40), make_rng(2))
        assert large.requests[0].penalty > small.requests[0].penalty

    def test_adversarial_instance_dispatch(self):
        for lemma in (1, 2, 3):
            instance = adversarial_instance(
                HardnessInstanceSpec(lemma=lemma, num_vertices=10), make_rng(lemma)
            )
            instance.validate()

    def test_unknown_lemma_rejected(self):
        with pytest.raises(ValueError, match="unknown lemma"):
            adversarial_instance(HardnessInstanceSpec(lemma=4, num_vertices=10), make_rng(0))

    def test_optimal_cost_is_zero_for_lemma1(self):
        instance = lemma1_instance(HardnessInstanceSpec(lemma=1, num_vertices=12), make_rng(3))
        assert optimal_cost(instance) == 0.0  # alpha = 0 -> optimum serves for free


class TestEmpiricalRatio:
    def _run(self, instance):
        result = run_simulation(instance, PruneGreedyDP(DispatcherConfig(grid_cell_metres=50.0)))
        return result.unified_cost, result.served_requests

    def test_lemma1_ratio_grows_with_vertices(self):
        small = estimate_competitive_ratio(1, 8, self._run, trials=12, seed=7)
        large = estimate_competitive_ratio(1, 32, self._run, trials=12, seed=7)
        # an online algorithm misses the request more often on the larger cycle
        assert large.unserved_fraction >= small.unserved_fraction
        assert large.unserved_fraction > 0.5

    def test_lemma2_algorithm_pays_penalties(self):
        estimate = estimate_competitive_ratio(2, 16, self._run, trials=10, seed=11)
        assert estimate.mean_algorithm_cost > 0.0
        assert estimate.ratio > 1.0
