"""Tests for the exhaustive basic insertion (Algorithm 1)."""

import math

import pytest

from repro.core.insertion.basic import BasicInsertion
from repro.core.route import empty_route
from tests.conftest import make_request, make_worker, route_with_requests


@pytest.fixture()
def operator():
    return BasicInsertion()


class TestEmptyRoute:
    def test_insert_into_empty_route(self, line_oracle, operator):
        worker = make_worker(location=0)
        route = empty_route(worker)
        route.refresh(line_oracle)
        request = make_request(1, origin=2, destination=4, deadline=1000.0)
        result = operator.best_insertion(route, request, line_oracle)
        assert result.feasible
        # go to vertex 2 (20s) then to vertex 4 (20s)
        assert result.delta == pytest.approx(40.0)
        assert (result.pickup_index, result.dropoff_index) == (0, 0)

    def test_insert_applies_route(self, line_oracle, operator):
        worker = make_worker(location=0)
        route = empty_route(worker)
        route.refresh(line_oracle)
        request = make_request(1, origin=2, destination=4, deadline=1000.0)
        new_route, result = operator.insert(route, request, line_oracle)
        assert result.feasible
        assert [stop.vertex for stop in new_route.stops] == [2, 4]
        assert new_route.is_feasible(line_oracle)

    def test_unreachable_deadline_is_infeasible(self, line_oracle, operator):
        worker = make_worker(location=0)
        route = empty_route(worker)
        route.refresh(line_oracle)
        request = make_request(1, origin=5, destination=0, deadline=20.0)  # needs 100s
        result = operator.best_insertion(route, request, line_oracle)
        assert not result.feasible
        assert result.delta == math.inf
        assert result.pickup_index == -1

    def test_request_larger_than_capacity_is_infeasible(self, line_oracle, operator):
        worker = make_worker(location=0, capacity=2)
        route = empty_route(worker)
        route.refresh(line_oracle)
        request = make_request(1, origin=1, destination=2, capacity=3)
        result = operator.best_insertion(route, request, line_oracle)
        assert not result.feasible


class TestExistingRoute:
    def test_on_the_way_request_is_cheap(self, line_oracle, operator):
        # worker already plans 0 -> 5; a request 1 -> 3 lies on the way: delta 0
        worker = make_worker(location=0, capacity=4)
        base = route_with_requests(worker, line_oracle, [make_request(1, origin=1, destination=5)])
        request = make_request(2, origin=2, destination=3, deadline=5000.0)
        result = operator.best_insertion(base, request, line_oracle)
        assert result.feasible
        assert result.delta == pytest.approx(0.0, abs=1e-9)

    def test_detour_request_costs_extra(self, city_oracle, city_network, operator):
        worker = make_worker(location=0, capacity=4)
        vertices = sorted(city_network.vertices())
        far = vertices[-1]
        base = route_with_requests(worker, city_oracle, [make_request(1, origin=vertices[1], destination=vertices[2])])
        request = make_request(2, origin=far, destination=vertices[3], deadline=1e6)
        result = operator.best_insertion(base, request, city_oracle)
        assert result.feasible
        assert result.delta > 0

    def test_capacity_forces_sequential_service(self, line_oracle, operator):
        # capacity-1 worker: second passenger can only be carried after the first is dropped
        worker = make_worker(location=0, capacity=1)
        base = route_with_requests(worker, line_oracle, [make_request(1, origin=1, destination=2)])
        request = make_request(2, origin=1, destination=3, deadline=1e6)
        result = operator.best_insertion(base, request, line_oracle)
        assert result.feasible
        new_route = base.with_insertion(request, result.pickup_index, result.dropoff_index, line_oracle)
        assert max(new_route.picked) <= 1

    def test_preserves_existing_deadlines(self, line_oracle, operator):
        # existing request has a deadline so tight that no detour is tolerable
        worker = make_worker(location=0, capacity=4)
        tight = make_request(1, origin=1, destination=2, deadline=20.0)
        base = route_with_requests(worker, line_oracle, [tight])
        request = make_request(2, origin=5, destination=4, deadline=1e6)
        result = operator.best_insertion(base, request, line_oracle)
        if result.feasible:
            new_route = base.with_insertion(
                request, result.pickup_index, result.dropoff_index, line_oracle
            )
            assert new_route.is_feasible(line_oracle)
            # the tight request must still be delivered in time
            assert new_route.arr[[s.vertex for s in new_route.stops].index(2) + 1] <= 20.0 + 1e-6

    def test_delta_matches_cost_difference(self, city_oracle, operator):
        worker = make_worker(location=0, capacity=4)
        base = route_with_requests(
            worker, city_oracle, [make_request(1, origin=5, destination=20), make_request(2, origin=9, destination=30)]
        )
        request = make_request(3, origin=12, destination=40, deadline=1e6)
        result = operator.best_insertion(base, request, city_oracle)
        assert result.feasible
        new_route = base.with_insertion(request, result.pickup_index, result.dropoff_index, city_oracle)
        expected = new_route.planned_cost(city_oracle) - base.planned_cost(city_oracle)
        assert result.delta == pytest.approx(expected, abs=1e-6)
