"""Property-based invariants of routes and their auxiliary arrays.

Whatever sequence of feasible insertions is applied to a route, the auxiliary
arrays must stay mutually consistent (Eq. 6-9 of the paper):

* ``arr`` is non-decreasing and consistent with pairwise shortest distances;
* ``picked`` never leaves ``[0, K_w]`` and ends at the on-board load of zero
  once every pending request is delivered;
* ``slack[k]`` equals the minimum remaining deadline margin after ``k``;
* re-refreshing is idempotent.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.route import empty_route
from repro.core.types import Request, StopKind, Worker
from repro.network.generators import grid_city
from repro.network.oracle import DistanceOracle

_NETWORK = grid_city(rows=6, columns=6, block_metres=180.0, removed_block_fraction=0.0, seed=23)
_ORACLE = DistanceOracle(_NETWORK, precompute="apsp")
_VERTICES = sorted(_NETWORK.vertices())
_OPERATOR = LinearDPInsertion()

_SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def built_routes(draw):
    """A route built by a random sequence of best insertions."""
    capacity = draw(st.integers(min_value=1, max_value=6))
    worker = Worker(id=0, initial_location=_VERTICES[draw(st.integers(0, 35))], capacity=capacity)
    route = empty_route(worker, start_time=float(draw(st.integers(0, 100))))
    route.refresh(_ORACLE)
    for request_id in range(draw(st.integers(min_value=0, max_value=6))):
        origin = _VERTICES[draw(st.integers(0, 35))]
        destination = _VERTICES[draw(st.integers(0, 35))]
        if origin == destination:
            destination = _VERTICES[(_VERTICES.index(origin) + 5) % len(_VERTICES)]
        request = Request(
            id=request_id,
            origin=origin,
            destination=destination,
            release_time=route.start_time,
            deadline=route.start_time + float(draw(st.integers(100, 3000))),
            penalty=1.0,
            capacity=draw(st.integers(min_value=1, max_value=2)),
        )
        result = _OPERATOR.best_insertion(route, request, _ORACLE)
        if result.feasible:
            route = route.with_insertion(request, result.pickup_index, result.dropoff_index, _ORACLE)
    return route


class TestRouteInvariants:
    @given(built_routes())
    @_SETTINGS
    def test_arrival_times_non_decreasing_and_consistent(self, route):
        for index in range(1, route.num_stops + 1):
            leg = _ORACLE.distance(route.vertex_at(index - 1), route.vertex_at(index))
            assert route.arr[index] == pytest.approx(route.arr[index - 1] + leg, abs=1e-6)
            assert route.arr[index] >= route.arr[index - 1] - 1e-9

    @given(built_routes())
    @_SETTINGS
    def test_load_stays_within_capacity_and_returns_to_zero(self, route):
        assert all(0 <= load <= route.worker.capacity for load in route.picked)
        assert route.picked[-1] == 0 if route.num_stops else route.picked[0] == 0

    @given(built_routes())
    @_SETTINGS
    def test_slack_matches_definition(self, route):
        n = route.num_stops
        for k in range(n + 1):
            margins = [route.ddl[j] - route.arr[j] for j in range(k + 1, n + 1)]
            expected = min(margins) if margins else math.inf
            assert route.slack[k] == pytest.approx(expected, abs=1e-6)

    @given(built_routes())
    @_SETTINGS
    def test_refresh_is_idempotent(self, route):
        arr_before = list(route.arr)
        picked_before = list(route.picked)
        route.refresh(_ORACLE)
        assert route.arr == pytest.approx(arr_before)
        assert route.picked == picked_before

    @given(built_routes())
    @_SETTINGS
    def test_built_routes_are_feasible(self, route):
        assert route.is_feasible(_ORACLE)

    @given(built_routes())
    @_SETTINGS
    def test_pickup_always_precedes_dropoff(self, route):
        seen_pickups = set()
        onboard = {request.id for request in route.onboard_requests()}
        for stop in route.stops:
            if stop.kind is StopKind.PICKUP:
                seen_pickups.add(stop.request.id)
            else:
                assert stop.request.id in seen_pickups or stop.request.id in onboard

    @given(built_routes())
    @_SETTINGS
    def test_planned_cost_equals_sum_of_legs(self, route):
        total = sum(
            _ORACLE.distance(route.vertex_at(index - 1), route.vertex_at(index))
            for index in range(1, route.num_stops + 1)
        )
        assert route.planned_cost(_ORACLE) == pytest.approx(total, abs=1e-6)
