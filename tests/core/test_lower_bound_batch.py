"""Batched decision-phase lower bounds vs the scalar walk: exact equality.

``euclidean_insertion_lower_bounds`` (the padded-matrix DP over a whole
candidate set) and ``euclidean_idle_lower_bounds`` (the empty-route closed
form) must reproduce the scalar ``euclidean_insertion_lower_bound`` bit for
bit — the decision phase's rejections and the Lemma 8 pruning order depend on
these floats, so approximate agreement is not enough. The prefetching linear
DP must likewise match its lazily-querying form on results *and* exact-query
counts.
"""

from __future__ import annotations

import math

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.insertion.lower_bound import (
    euclidean_idle_lower_bounds,
    euclidean_insertion_lower_bound,
    euclidean_insertion_lower_bounds,
)
from repro.core.route import empty_route
from tests.conftest import make_request, make_worker
from tests.core.test_insertion_equivalence import _ORACLE, insertion_scenarios

_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestBatchedInsertionLowerBounds:
    @given(st.lists(insertion_scenarios(), min_size=1, max_size=5))
    @_SETTINGS
    def test_batch_equals_scalar_exactly(self, scenarios):
        request = scenarios[0][1]
        routes = [route for route, _ in scenarios]
        direct = _ORACLE.distance(request.origin, request.destination)
        scalar = [
            euclidean_insertion_lower_bound(route, request, _ORACLE, direct)
            for route in routes
        ]
        batch = euclidean_insertion_lower_bounds(routes, request, _ORACLE, direct)
        for scalar_bound, batch_bound in zip(scalar, batch):
            if math.isinf(scalar_bound):
                assert math.isinf(batch_bound)
            else:
                assert scalar_bound == batch_bound  # exact, not approx

    def test_batch_refreshes_like_scalar(self):
        worker = make_worker(location=0, capacity=4)
        route = empty_route(worker, start_time=12.0)  # deliberately stale arrays
        request = make_request(5, origin=9, destination=30, deadline=1e6)
        direct = _ORACLE.distance(request.origin, request.destination)
        batch = euclidean_insertion_lower_bounds([route], request, _ORACLE, direct)
        fresh = empty_route(worker, start_time=12.0)
        fresh.refresh(_ORACLE)
        scalar = euclidean_insertion_lower_bound(fresh, request, _ORACLE, direct)
        assert batch[0] == scalar

    def test_oversized_request_is_infinite(self):
        worker = make_worker(location=0, capacity=1)
        route = empty_route(worker)
        route.refresh(_ORACLE)
        request = make_request(5, origin=3, destination=9, capacity=3)
        bounds = euclidean_insertion_lower_bounds([route], request, _ORACLE, 10.0)
        assert math.isinf(bounds[0])


class TestIdleClosedForm:
    @pytest.mark.parametrize("origin", [0, 7, 23, 41])
    def test_idle_bound_equals_scalar_empty_route(self, origin):
        worker = make_worker(location=origin, capacity=4)
        route = empty_route(worker, start_time=250.0)
        route.refresh(_ORACLE)
        request = make_request(9, origin=12, destination=44, release=250.0, deadline=900.0)
        direct = _ORACLE.distance(request.origin, request.destination)
        scalar = euclidean_insertion_lower_bound(route, request, _ORACLE, direct)
        closed = euclidean_idle_lower_bounds(
            [origin], 250.0, request, _ORACLE, direct, capacities=[worker.capacity]
        )
        if math.isinf(scalar):
            assert math.isinf(closed[0])
        else:
            assert closed[0] == scalar

    def test_idle_capacity_filter(self):
        request = make_request(9, origin=12, destination=44, deadline=1e6, capacity=3)
        direct = _ORACLE.distance(request.origin, request.destination)
        bounds = euclidean_idle_lower_bounds(
            [0, 1], 0.0, request, _ORACLE, direct, capacities=[2, 4]
        )
        assert math.isinf(bounds[0])
        assert math.isfinite(bounds[1])


class TestPrefetchEquivalence:
    @given(insertion_scenarios(), st.booleans())
    @_SETTINGS
    def test_prefetch_matches_lazy_walk(self, scenario, aggressive):
        route, request = scenario
        lazy = LinearDPInsertion(aggressive_break=aggressive, prefetch=False)
        prefetched = LinearDPInsertion(aggressive_break=aggressive, prefetch=True)
        lazy_result = lazy.best_insertion(route, request, _ORACLE)
        prefetched_result = prefetched.best_insertion(route, request, _ORACLE)
        assert lazy_result == prefetched_result  # incl. distance_queries

    def test_prefetch_issues_identical_oracle_counts(self):
        worker = make_worker(location=0, capacity=6)
        request = make_request(50, origin=12, destination=45, deadline=1e6)
        results = {}
        for prefetch in (False, True):
            from tests.conftest import route_with_requests

            base = route_with_requests(
                worker,
                _ORACLE,
                [make_request(i, origin=3 + 2 * i, destination=30 + i, deadline=1e6)
                 for i in range(4)],
            )
            base.remember_direct_distance(request, _ORACLE.distance(request.origin, request.destination))
            before = _ORACLE.counters.distance_queries
            LinearDPInsertion(prefetch=prefetch).best_insertion(base, request, _ORACLE)
            results[prefetch] = _ORACLE.counters.distance_queries - before
        assert results[True] == results[False]
