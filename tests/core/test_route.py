"""Tests for routes and their auxiliary arrays (Definition 4, Eq. 6-9)."""

import math

import pytest

from repro.core.route import Route, empty_route
from repro.core.types import StopKind, dropoff_stop, pickup_stop
from repro.exceptions import InfeasibleRouteError
from tests.conftest import make_request, make_worker, route_with_requests


class TestEmptyRoute:
    def test_empty_route_has_no_stops(self, line_oracle):
        route = empty_route(make_worker(location=2), start_time=5.0)
        route.refresh(line_oracle)
        assert route.is_empty
        assert route.num_stops == 0
        assert route.origin == 2
        assert route.arr == [5.0]
        assert route.planned_cost(line_oracle) == 0.0

    def test_empty_route_is_feasible(self, line_oracle):
        route = empty_route(make_worker())
        assert route.is_feasible(line_oracle)

    def test_vertex_at_zero_is_origin(self, line_oracle):
        route = empty_route(make_worker(location=3))
        assert route.vertex_at(0) == 3


class TestAuxiliaryArrays:
    def test_arrival_times_accumulate_leg_costs(self, line_oracle):
        # line network: 10 seconds per edge; route 0 -> 2 (pickup) -> 4 (dropoff)
        worker = make_worker(location=0)
        request = make_request(1, origin=2, destination=4, deadline=200.0)
        route = route_with_requests(worker, line_oracle, [request])
        assert route.arr == pytest.approx([0.0, 20.0, 40.0])

    def test_deadline_array_uses_pickup_rule(self, line_oracle):
        # ddl[pickup] = e_r - dis(o_r, d_r), ddl[dropoff] = e_r   (Eq. 6)
        worker = make_worker(location=0)
        request = make_request(1, origin=2, destination=4, deadline=100.0)
        route = route_with_requests(worker, line_oracle, [request])
        assert route.ddl[1] == pytest.approx(100.0 - 20.0)
        assert route.ddl[2] == pytest.approx(100.0)

    def test_slack_is_minimum_of_later_margins(self, line_oracle):
        worker = make_worker(location=0)
        request = make_request(1, origin=2, destination=4, deadline=100.0)
        route = route_with_requests(worker, line_oracle, [request])
        # margins: pickup 80 - 20 = 60, dropoff 100 - 40 = 60
        assert route.slack[0] == pytest.approx(60.0)
        assert route.slack[1] == pytest.approx(60.0)
        assert route.slack[2] == math.inf

    def test_picked_tracks_load_changes(self, line_oracle):
        worker = make_worker(location=0, capacity=5)
        first = make_request(1, origin=1, destination=4, capacity=2)
        second = make_request(2, origin=2, destination=3, capacity=3)
        route = empty_route(worker)
        route.refresh(line_oracle)
        route = route.with_insertion(first, 0, 0, line_oracle)
        # insert second between pickup and dropoff of first
        route = route.with_insertion(second, 1, 1, line_oracle)
        kinds = [stop.kind for stop in route.stops]
        assert kinds == [StopKind.PICKUP, StopKind.PICKUP, StopKind.DROPOFF, StopKind.DROPOFF]
        assert route.picked == [0, 2, 5, 2, 0]

    def test_arrays_have_length_stops_plus_one(self, line_oracle):
        worker = make_worker(location=0)
        requests = [make_request(i, origin=1, destination=3) for i in range(3)]
        route = route_with_requests(worker, line_oracle, requests)
        assert len(route.arr) == route.num_stops + 1
        assert len(route.ddl) == route.num_stops + 1
        assert len(route.slack) == route.num_stops + 1
        assert len(route.picked) == route.num_stops + 1


class TestFeasibility:
    def test_deadline_violation_detected(self, line_oracle):
        worker = make_worker(location=0)
        request = make_request(1, origin=2, destination=4, deadline=30.0)  # needs 40s
        route = route_with_requests(worker, line_oracle, [request])
        with pytest.raises(InfeasibleRouteError, match="deadline"):
            route.validate(line_oracle)

    def test_capacity_violation_detected(self, line_oracle):
        worker = make_worker(location=0, capacity=1)
        first = make_request(1, origin=1, destination=4, capacity=1)
        second = make_request(2, origin=2, destination=3, capacity=1)
        route = empty_route(worker)
        route.refresh(line_oracle)
        route = route.with_insertion(first, 0, 0, line_oracle)
        route = route.with_insertion(second, 1, 1, line_oracle)
        with pytest.raises(InfeasibleRouteError, match="capacity"):
            route.validate(line_oracle)

    def test_dropoff_before_pickup_detected(self, line_oracle):
        worker = make_worker(location=0)
        request = make_request(1, origin=3, destination=1)
        route = Route(
            worker=worker,
            origin=0,
            start_time=0.0,
            stops=[dropoff_stop(request), pickup_stop(request)],
        )
        with pytest.raises(InfeasibleRouteError, match="before being picked up"):
            route.validate(line_oracle)

    def test_pickup_without_dropoff_detected(self, line_oracle):
        worker = make_worker(location=0)
        request = make_request(1, origin=1, destination=3)
        route = Route(worker=worker, origin=0, start_time=0.0, stops=[pickup_stop(request)])
        with pytest.raises(InfeasibleRouteError, match="never dropped off"):
            route.validate(line_oracle)

    def test_onboard_request_dropoff_only_is_feasible(self, line_oracle):
        # a drop-off whose pickup already happened (request on board at l_0)
        worker = make_worker(location=2)
        request = make_request(1, origin=0, destination=4, deadline=500.0)
        route = Route(worker=worker, origin=2, start_time=10.0, stops=[dropoff_stop(request)])
        assert route.is_feasible(line_oracle)
        assert route.initial_load() == 1
        assert [r.id for r in route.onboard_requests()] == [1]

    def test_feasible_route_validates(self, line_oracle):
        worker = make_worker(location=0)
        request = make_request(1, origin=1, destination=4, deadline=1000.0)
        route = route_with_requests(worker, line_oracle, [request])
        route.validate(line_oracle)  # must not raise


class TestInsertionMechanics:
    def test_with_insertion_same_position(self, line_oracle):
        worker = make_worker(location=0)
        base = route_with_requests(worker, line_oracle, [make_request(1, origin=1, destination=5)])
        new_request = make_request(2, origin=2, destination=3)
        inserted = base.with_insertion(new_request, 1, 1, line_oracle)
        vertices = [stop.vertex for stop in inserted.stops]
        assert vertices == [1, 2, 3, 5]

    def test_with_insertion_split_positions(self, line_oracle):
        worker = make_worker(location=0)
        base = route_with_requests(worker, line_oracle, [make_request(1, origin=1, destination=5)])
        new_request = make_request(2, origin=2, destination=4)
        inserted = base.with_insertion(new_request, 1, 2, line_oracle)
        vertices = [stop.vertex for stop in inserted.stops]
        assert vertices == [1, 2, 5, 4]

    def test_with_insertion_rejects_bad_positions(self, line_oracle):
        worker = make_worker(location=0)
        route = empty_route(worker)
        route.refresh(line_oracle)
        request = make_request(1, origin=1, destination=2)
        with pytest.raises(ValueError):
            route.with_insertion(request, 1, 0, line_oracle)
        with pytest.raises(ValueError):
            route.with_insertion(request, 0, 5, line_oracle)

    def test_original_route_not_mutated(self, line_oracle):
        worker = make_worker(location=0)
        base = route_with_requests(worker, line_oracle, [make_request(1, origin=1, destination=5)])
        stops_before = list(base.stops)
        base.with_insertion(make_request(2, origin=2, destination=3), 0, 0, line_oracle)
        assert base.stops == stops_before

    def test_planned_cost_matches_arrival_span(self, line_oracle):
        worker = make_worker(location=0)
        route = route_with_requests(
            worker, line_oracle, [make_request(1, origin=2, destination=5)], start_time=7.0
        )
        assert route.planned_cost(line_oracle) == pytest.approx(route.arr[-1] - 7.0)

    def test_direct_distance_is_cached(self, line_oracle):
        worker = make_worker(location=0)
        route = empty_route(worker)
        request = make_request(1, origin=1, destination=4)
        before = line_oracle.counters.distance_queries
        first = route.direct_distance(request, line_oracle)
        second = route.direct_distance(request, line_oracle)
        assert first == second == pytest.approx(30.0)
        assert line_oracle.counters.distance_queries == before + 1
