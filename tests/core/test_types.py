"""Tests for the basic URPSM entities (Definitions 2-3)."""

import pytest

from repro.core.types import Request, StopKind, Worker, dropoff_stop, pickup_stop


class TestRequest:
    def test_valid_request(self):
        request = Request(id=1, origin=0, destination=5, release_time=10.0, deadline=70.0,
                          penalty=3.0, capacity=2)
        assert request.time_window == pytest.approx(60.0)

    def test_deadline_before_release_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            Request(id=1, origin=0, destination=5, release_time=100.0, deadline=50.0, penalty=1.0)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError, match="penalty"):
            Request(id=1, origin=0, destination=5, release_time=0.0, deadline=10.0, penalty=-1.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            Request(id=1, origin=0, destination=5, release_time=0.0, deadline=10.0,
                    penalty=1.0, capacity=0)

    def test_negative_release_rejected(self):
        with pytest.raises(ValueError, match="release_time"):
            Request(id=1, origin=0, destination=5, release_time=-1.0, deadline=10.0, penalty=1.0)

    def test_requests_are_hashable(self):
        request = Request(id=1, origin=0, destination=5, release_time=0.0, deadline=10.0, penalty=1.0)
        assert request in {request}


class TestWorker:
    def test_valid_worker(self):
        worker = Worker(id=3, initial_location=7, capacity=6)
        assert worker.capacity == 6

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            Worker(id=3, initial_location=7, capacity=0)


class TestStops:
    def test_pickup_stop_properties(self):
        request = Request(id=1, origin=2, destination=9, release_time=0.0, deadline=99.0,
                          penalty=1.0, capacity=3)
        stop = pickup_stop(request)
        assert stop.vertex == 2
        assert stop.is_pickup and not stop.is_dropoff
        assert stop.kind is StopKind.PICKUP
        assert stop.load_change == 3

    def test_dropoff_stop_properties(self):
        request = Request(id=1, origin=2, destination=9, release_time=0.0, deadline=99.0,
                          penalty=1.0, capacity=3)
        stop = dropoff_stop(request)
        assert stop.vertex == 9
        assert stop.is_dropoff and not stop.is_pickup
        assert stop.load_change == -3
