"""Tests for the unified objective and its special-case reductions (Section 3.2)."""

import math

import pytest

from repro.core.objective import (
    ObjectiveConfig,
    PenaltyPolicy,
    max_revenue_objective,
    max_served_requests_objective,
    min_total_distance_objective,
    paper_default_objective,
    platform_revenue,
    unified_cost,
)
from tests.conftest import make_request


class TestObjectiveConfig:
    def test_proportional_penalty(self):
        config = ObjectiveConfig(alpha=1.0, penalty_policy=PenaltyPolicy.PROPORTIONAL,
                                 penalty_value=10.0)
        assert config.penalty_for(42.0) == pytest.approx(420.0)

    def test_fixed_penalty(self):
        config = ObjectiveConfig(alpha=0.0, penalty_policy=PenaltyPolicy.FIXED, penalty_value=1.0)
        assert config.penalty_for(42.0) == 1.0

    def test_infinite_penalty(self):
        config = ObjectiveConfig(alpha=1.0, penalty_policy=PenaltyPolicy.INFINITE)
        assert config.penalty_for(42.0) == math.inf

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveConfig(alpha=-0.5)


class TestPresets:
    def test_min_total_distance_preset(self):
        config = min_total_distance_objective()
        assert config.alpha == 1.0
        assert config.penalty_for(5.0) == math.inf

    def test_max_served_requests_preset(self):
        config = max_served_requests_objective()
        assert config.alpha == 0.0
        assert config.penalty_for(5.0) == 1.0

    def test_max_revenue_preset(self):
        config = max_revenue_objective(worker_cost_per_second=2.0, fare_per_second=5.0)
        assert config.alpha == 2.0
        assert config.penalty_for(10.0) == pytest.approx(50.0)

    def test_paper_default(self):
        config = paper_default_objective()
        assert config.alpha == 1.0
        assert config.penalty_for(3.0) == pytest.approx(30.0)


class TestUnifiedCost:
    def test_unified_cost_combines_distance_and_penalties(self):
        rejected = [make_request(1, 0, 1, penalty=10.0), make_request(2, 0, 1, penalty=5.0)]
        assert unified_cost(100.0, rejected, alpha=2.0) == pytest.approx(215.0)

    def test_unified_cost_with_alpha_zero_counts_only_penalties(self):
        rejected = [make_request(1, 0, 1, penalty=1.0)] * 3
        assert unified_cost(1e9, rejected, alpha=0.0) == pytest.approx(3.0)

    def test_unified_cost_no_rejections(self):
        assert unified_cost(50.0, [], alpha=1.0) == pytest.approx(50.0)


class TestRevenueEquivalence:
    def test_revenue_plus_unified_cost_is_constant(self):
        """Eq. (4): revenue = c_r * sum dis(o,d) - UC, for alpha=c_w, p_r=c_r*dis."""
        worker_cost, fare = 1.5, 4.0
        config = max_revenue_objective(worker_cost, fare)
        direct = {1: 30.0, 2: 50.0, 3: 20.0}
        total_direct = sum(direct.values())

        # plan A: serve requests 1 and 2, reject 3; travel cost 120
        rejected_a = [make_request(3, 0, 1, penalty=config.penalty_for(direct[3]))]
        uc_a = unified_cost(120.0, rejected_a, alpha=config.alpha)
        revenue_a = platform_revenue(120.0, [direct[1], direct[2]], worker_cost, fare)
        assert revenue_a == pytest.approx(fare * total_direct - uc_a)

        # plan B: serve everything; travel cost 160
        uc_b = unified_cost(160.0, [], alpha=config.alpha)
        revenue_b = platform_revenue(160.0, list(direct.values()), worker_cost, fare)
        assert revenue_b == pytest.approx(fare * total_direct - uc_b)

        # the plan with smaller unified cost has larger revenue
        assert (uc_a < uc_b) == (revenue_a > revenue_b)
