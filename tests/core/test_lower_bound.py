"""Property tests for the Euclidean lower bound of the decision phase (Lemma 7).

The bound must never exceed the true minimal increased cost of a feasible
insertion — otherwise the decision phase (Algorithm 4) could wrongly reject a
profitable request and the pre-ordered pruning (Lemma 8) could skip the best
worker.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.insertion.basic import BasicInsertion
from repro.core.insertion.lower_bound import euclidean_insertion_lower_bound
from repro.core.route import empty_route
from tests.conftest import make_request, make_worker, route_with_requests
from tests.core.test_insertion_equivalence import _ORACLE, insertion_scenarios

_BASIC = BasicInsertion()

_SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestLowerBoundProperty:
    @given(insertion_scenarios())
    @_SETTINGS
    def test_lower_bound_never_exceeds_true_delta(self, scenario):
        route, request = scenario
        direct = _ORACLE.distance(request.origin, request.destination)
        bound = euclidean_insertion_lower_bound(route, request, _ORACLE, direct)
        exact = _BASIC.best_insertion(route, request, _ORACLE)
        if exact.feasible:
            assert bound <= exact.delta + 1e-6

    @given(insertion_scenarios())
    @_SETTINGS
    def test_lower_bound_is_non_negative(self, scenario):
        route, request = scenario
        direct = _ORACLE.distance(request.origin, request.destination)
        bound = euclidean_insertion_lower_bound(route, request, _ORACLE, direct)
        assert bound >= 0.0


class TestLowerBoundUnits:
    def test_empty_route_bound_uses_straight_line(self, city_oracle, city_network):
        worker = make_worker(location=0)
        route = empty_route(worker)
        route.refresh(city_oracle)
        request = make_request(1, origin=20, destination=40, deadline=1e6)
        direct = city_oracle.distance(20, 40)
        bound = euclidean_insertion_lower_bound(route, request, city_oracle, direct)
        expected = city_network.euclidean(0, 20) / city_network.max_speed + direct
        assert bound == pytest.approx(expected, rel=1e-9)

    def test_oversized_request_yields_infinite_bound(self, city_oracle):
        worker = make_worker(location=0, capacity=1)
        route = empty_route(worker)
        route.refresh(city_oracle)
        request = make_request(1, origin=3, destination=9, capacity=4)
        bound = euclidean_insertion_lower_bound(route, request, city_oracle, 10.0)
        assert bound == math.inf

    def test_uses_no_exact_distance_queries(self, city_oracle):
        worker = make_worker(location=0, capacity=4)
        base = route_with_requests(
            worker, city_oracle, [make_request(1, origin=5, destination=30, deadline=1e6)]
        )
        request = make_request(2, origin=9, destination=44, deadline=1e6)
        direct = city_oracle.distance(request.origin, request.destination)
        before = city_oracle.counters.distance_queries
        euclidean_insertion_lower_bound(base, request, city_oracle, direct)
        assert city_oracle.counters.distance_queries == before
