"""Tests for URPSM instance validation and statistics."""

import pytest

from repro.core.instance import URPSMInstance
from repro.core.objective import paper_default_objective
from repro.exceptions import ConfigurationError
from tests.conftest import make_request, make_worker


def _instance(network, oracle, workers=None, requests=None):
    return URPSMInstance(
        network=network,
        oracle=oracle,
        workers=workers if workers is not None else [make_worker(0, 0), make_worker(1, 3)],
        requests=requests if requests is not None else [make_request(0, 1, 4, release=0.0)],
        objective=paper_default_objective(),
        name="test-instance",
    )


class TestValidation:
    def test_valid_instance_passes(self, line_network, line_oracle):
        _instance(line_network, line_oracle).validate()

    def test_empty_fleet_rejected(self, line_network, line_oracle):
        with pytest.raises(ConfigurationError, match="at least one worker"):
            _instance(line_network, line_oracle, workers=[]).validate()

    def test_duplicate_worker_ids_rejected(self, line_network, line_oracle):
        workers = [make_worker(7, 0), make_worker(7, 1)]
        with pytest.raises(ConfigurationError, match="duplicate worker"):
            _instance(line_network, line_oracle, workers=workers).validate()

    def test_duplicate_request_ids_rejected(self, line_network, line_oracle):
        requests = [make_request(5, 0, 1), make_request(5, 1, 2)]
        with pytest.raises(ConfigurationError, match="duplicate request"):
            _instance(line_network, line_oracle, requests=requests).validate()

    def test_unknown_vertex_rejected(self, line_network, line_oracle):
        requests = [make_request(0, 0, 999)]
        with pytest.raises(ConfigurationError, match="unknown destination"):
            _instance(line_network, line_oracle, requests=requests).validate()

    def test_unknown_worker_location_rejected(self, line_network, line_oracle):
        workers = [make_worker(0, 999)]
        with pytest.raises(ConfigurationError, match="unknown vertex"):
            _instance(line_network, line_oracle, workers=workers).validate()

    def test_unsorted_requests_rejected(self, line_network, line_oracle):
        requests = [make_request(0, 0, 1, release=100.0), make_request(1, 1, 2, release=5.0)]
        with pytest.raises(ConfigurationError, match="sorted by release time"):
            _instance(line_network, line_oracle, requests=requests).validate()


class TestStatistics:
    def test_statistics_contain_counts(self, line_network, line_oracle):
        instance = _instance(line_network, line_oracle)
        stats = instance.statistics()
        assert stats["workers"] == 2.0
        assert stats["requests"] == 1.0
        assert stats["vertices"] == float(line_network.num_vertices)
        assert instance.num_workers == 2
        assert instance.num_requests == 1
