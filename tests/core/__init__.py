"""Test package."""
