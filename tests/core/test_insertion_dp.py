"""Tests for the DP insertion operators (Algorithms 2-3)."""

import pytest

from repro.core.insertion.basic import BasicInsertion
from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.insertion.naive_dp import NaiveDPInsertion
from repro.core.route import empty_route
from tests.conftest import make_request, make_worker, route_with_requests


@pytest.fixture(params=[NaiveDPInsertion, LinearDPInsertion], ids=["naive-dp", "linear-dp"])
def dp_operator(request):
    return request.param()


class TestDPOperators:
    def test_empty_route_append(self, line_oracle, dp_operator):
        worker = make_worker(location=0)
        route = empty_route(worker)
        route.refresh(line_oracle)
        request = make_request(1, origin=2, destination=4, deadline=1000.0)
        result = dp_operator.best_insertion(route, request, line_oracle)
        assert result.feasible
        assert result.delta == pytest.approx(40.0)

    def test_agrees_with_basic_on_small_route(self, city_oracle, dp_operator):
        worker = make_worker(location=0, capacity=4)
        base = route_with_requests(
            worker,
            city_oracle,
            [
                make_request(1, origin=3, destination=17, deadline=4000.0),
                make_request(2, origin=9, destination=25, deadline=4000.0),
            ],
        )
        request = make_request(3, origin=11, destination=30, deadline=4000.0)
        expected = BasicInsertion().best_insertion(base, request, city_oracle)
        actual = dp_operator.best_insertion(base, request, city_oracle)
        assert actual.feasible == expected.feasible
        assert actual.delta == pytest.approx(expected.delta, abs=1e-6)

    def test_respects_capacity(self, line_oracle, dp_operator):
        worker = make_worker(location=0, capacity=1)
        base = route_with_requests(worker, line_oracle, [make_request(1, origin=1, destination=4)])
        request = make_request(2, origin=2, destination=3, deadline=1e6)
        result = dp_operator.best_insertion(base, request, line_oracle)
        if result.feasible:
            new_route = base.with_insertion(
                request, result.pickup_index, result.dropoff_index, line_oracle
            )
            assert new_route.is_feasible(line_oracle)
            assert max(new_route.picked) <= worker.capacity

    def test_infeasible_when_deadline_unreachable(self, line_oracle, dp_operator):
        worker = make_worker(location=0)
        route = empty_route(worker)
        route.refresh(line_oracle)
        request = make_request(1, origin=5, destination=0, deadline=10.0)
        result = dp_operator.best_insertion(route, request, line_oracle)
        assert not result.feasible

    def test_returned_positions_produce_feasible_route(self, city_oracle, dp_operator):
        worker = make_worker(location=2, capacity=4)
        base = route_with_requests(
            worker,
            city_oracle,
            [make_request(1, origin=10, destination=33, deadline=5000.0)],
            start_time=50.0,
        )
        request = make_request(2, origin=18, destination=40, release=50.0, deadline=5000.0)
        result = dp_operator.best_insertion(base, request, city_oracle)
        assert result.feasible
        new_route = base.with_insertion(request, result.pickup_index, result.dropoff_index, city_oracle)
        assert new_route.is_feasible(city_oracle)

    def test_oversized_request_rejected_without_queries(self, line_oracle, dp_operator):
        worker = make_worker(location=0, capacity=1)
        route = empty_route(worker)
        route.refresh(line_oracle)
        request = make_request(1, origin=1, destination=2, capacity=2)
        result = dp_operator.best_insertion(route, request, line_oracle)
        assert not result.feasible
        assert result.distance_queries == 0


class TestQueryBudget:
    def test_linear_dp_query_budget_is_linear(self, city_oracle):
        """Lemma 9: the linear DP insertion needs ~2n+1 exact distance queries."""
        worker = make_worker(location=0, capacity=6)
        requests = [
            make_request(i, origin=3 + 2 * i, destination=30 + i, deadline=1e6) for i in range(4)
        ]
        base = route_with_requests(worker, city_oracle, requests)
        n = base.num_stops
        request = make_request(99, origin=12, destination=45, deadline=1e6)
        result = LinearDPInsertion().best_insertion(base, request, city_oracle)
        assert result.feasible
        # 2 * (n + 1) stop-to-endpoint distances plus the single o->d query
        assert result.distance_queries <= 2 * (n + 1) + 1

    def test_linear_dp_uses_fewer_queries_than_basic(self, city_oracle):
        worker = make_worker(location=0, capacity=6)
        requests = [
            make_request(i, origin=3 + 2 * i, destination=30 + i, deadline=1e6) for i in range(4)
        ]
        base = route_with_requests(worker, city_oracle, requests)
        request = make_request(99, origin=12, destination=45, deadline=1e6)
        linear = LinearDPInsertion().best_insertion(base, request, city_oracle)
        basic = BasicInsertion().best_insertion(base.copy(), request, city_oracle)
        assert linear.distance_queries < basic.distance_queries


class TestAggressiveBreak:
    def test_aggressive_break_mode_runs(self, city_oracle):
        operator = LinearDPInsertion(aggressive_break=True)
        worker = make_worker(location=0, capacity=4)
        base = route_with_requests(
            worker, city_oracle, [make_request(1, origin=7, destination=22, deadline=3000.0)]
        )
        request = make_request(2, origin=9, destination=31, deadline=3000.0)
        result = operator.best_insertion(base, request, city_oracle)
        # the aggressive break may only make the result more conservative
        reference = LinearDPInsertion().best_insertion(base, request, city_oracle)
        if result.feasible:
            assert result.delta >= reference.delta - 1e-9
