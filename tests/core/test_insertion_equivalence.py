"""Property-based equivalence of the three insertion operators.

The central correctness claim of Section 4 is that the naive DP and linear DP
insertions return exactly the same minimal increased distance as the
exhaustive basic insertion, only faster. These tests generate random feasible
routes and random new requests on a real grid network and assert:

* identical feasibility verdicts;
* identical minimal increased cost Δ*;
* the returned positions always produce a feasible route whose actual cost
  increase equals the reported Δ*.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.insertion.basic import BasicInsertion
from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.insertion.naive_dp import NaiveDPInsertion
from repro.core.route import Route, empty_route
from repro.core.types import Request, Worker
from repro.network.generators import grid_city
from repro.network.oracle import DistanceOracle

# Module-level network/oracle shared by all examples (hypothesis-friendly: no
# function-scoped fixtures).
_NETWORK = grid_city(rows=7, columns=7, block_metres=200.0, removed_block_fraction=0.04, seed=5)
_ORACLE = DistanceOracle(_NETWORK, precompute="apsp")
_VERTICES = sorted(_NETWORK.vertices())

_BASIC = BasicInsertion()
_NAIVE = NaiveDPInsertion()
_LINEAR = LinearDPInsertion()


def _vertex(index: int) -> int:
    return _VERTICES[index % len(_VERTICES)]


@st.composite
def insertion_scenarios(draw) -> tuple[Route, Request]:
    """A feasible route (built by repeated best insertions) plus a new request."""
    capacity = draw(st.integers(min_value=1, max_value=5))
    worker = Worker(id=0, initial_location=_vertex(draw(st.integers(0, 200))), capacity=capacity)
    start_time = float(draw(st.integers(min_value=0, max_value=300)))
    route = empty_route(worker, start_time=start_time)
    route.refresh(_ORACLE)

    num_existing = draw(st.integers(min_value=0, max_value=4))
    for request_id in range(num_existing):
        request = _draw_request(draw, request_id, start_time)
        result = _BASIC.best_insertion(route, request, _ORACLE)
        if result.feasible:
            route = route.with_insertion(
                request, result.pickup_index, result.dropoff_index, _ORACLE
            )
    new_request = _draw_request(draw, 1000, start_time)
    return route, new_request


def _draw_request(draw, request_id: int, now: float) -> Request:
    origin = _vertex(draw(st.integers(0, 200)))
    destination = _vertex(draw(st.integers(0, 200)))
    if destination == origin:
        destination = _vertex(_VERTICES.index(origin) + 1)
    window = float(draw(st.integers(min_value=30, max_value=2500)))
    capacity = draw(st.integers(min_value=1, max_value=3))
    return Request(
        id=request_id,
        origin=origin,
        destination=destination,
        release_time=now,
        deadline=now + window,
        penalty=10.0,
        capacity=capacity,
    )


_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestOperatorEquivalence:
    @given(insertion_scenarios())
    @_SETTINGS
    def test_naive_dp_matches_basic(self, scenario):
        route, request = scenario
        expected = _BASIC.best_insertion(route, request, _ORACLE)
        actual = _NAIVE.best_insertion(route, request, _ORACLE)
        assert actual.feasible == expected.feasible
        if expected.feasible:
            assert actual.delta == pytest.approx(expected.delta, abs=1e-6)

    @given(insertion_scenarios())
    @_SETTINGS
    def test_linear_dp_matches_basic(self, scenario):
        route, request = scenario
        expected = _BASIC.best_insertion(route, request, _ORACLE)
        actual = _LINEAR.best_insertion(route, request, _ORACLE)
        assert actual.feasible == expected.feasible
        if expected.feasible:
            assert actual.delta == pytest.approx(expected.delta, abs=1e-6)

    @given(insertion_scenarios())
    @_SETTINGS
    def test_reported_delta_matches_applied_route(self, scenario):
        route, request = scenario
        for operator in (_NAIVE, _LINEAR):
            result = operator.best_insertion(route, request, _ORACLE)
            if not result.feasible:
                continue
            new_route = route.with_insertion(
                request, result.pickup_index, result.dropoff_index, _ORACLE
            )
            assert new_route.is_feasible(_ORACLE)
            actual_delta = new_route.planned_cost(_ORACLE) - route.planned_cost(_ORACLE)
            assert actual_delta == pytest.approx(result.delta, abs=1e-6)

    @given(insertion_scenarios())
    @_SETTINGS
    def test_delta_is_non_negative(self, scenario):
        route, request = scenario
        result = _LINEAR.best_insertion(route, request, _ORACLE)
        if result.feasible:
            assert result.delta >= -1e-9
