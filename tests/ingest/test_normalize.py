"""Tests of the shared real-map normalisation pipeline."""

import math

import pytest

from repro.exceptions import IngestError
from repro.ingest.normalize import (
    ROAD_CLASS_SPEEDS_KMH,
    IngestOptions,
    NetworkAssembler,
    parse_maxspeed,
)
from repro.ingest.projection import EARTH_RADIUS_METRES, LocalProjection, looks_geographic


class TestParseMaxspeed:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            (50, 50.0),
            (50.5, 50.5),
            ("50", 50.0),
            (" 50 km/h ", 50.0),
            ("30 mph", 30.0 * 1.609344),
            ("30mph", 30.0 * 1.609344),
            (None, None),
            ("", None),
            ("none", None),
            ("walk", None),
            (0, None),
            ("-5", None),
        ],
    )
    def test_parse(self, raw, expected):
        result = parse_maxspeed(raw)
        if expected is None:
            assert result is None
        else:
            assert result == pytest.approx(expected)


class TestProjection:
    def test_looks_geographic(self):
        assert looks_geographic([-73.9, -74.0], [40.7, 40.8])
        assert not looks_geographic([1500.0, 2500.0], [100.0, 900.0])
        assert not looks_geographic([], [])

    def test_equirectangular_scale(self):
        projection = LocalProjection(lon0_degrees=0.0, lat0_degrees=0.0)
        x, y = projection.project(0.001, 0.0)
        assert x == pytest.approx(math.radians(0.001) * EARTH_RADIUS_METRES)
        assert y == 0.0
        # away from the equator one degree of longitude shrinks by cos(lat0)
        at60 = LocalProjection(lon0_degrees=0.0, lat0_degrees=60.0)
        x60, _ = at60.project(0.001, 60.0)
        assert x60 == pytest.approx(x * math.cos(math.radians(60.0)))

    def test_centroid_is_bbox_midpoint(self):
        projection = LocalProjection.about_centroid([10.0, 10.0, 14.0], [50.0, 52.0, 52.0])
        assert projection.lon0_degrees == 12.0
        assert projection.lat0_degrees == 51.0


class TestOptionsValidation:
    def test_rejects_bad_snap(self):
        with pytest.raises(IngestError, match="snap_metres"):
            IngestOptions(snap_metres=0.0)

    def test_rejects_bad_speed_factor(self):
        with pytest.raises(IngestError, match="speed_factor"):
            IngestOptions(speed_factor=1.5)

    def test_rejects_bad_projection(self):
        with pytest.raises(IngestError, match="projection"):
            IngestOptions(projection="mercator")

    def test_speed_rule(self):
        options = IngestOptions(speed_factor=0.8)
        assert options.speed_mps("residential", None) == pytest.approx(
            ROAD_CLASS_SPEEDS_KMH["residential"] * 0.8 / 3.6
        )
        # explicit maxspeed wins over the class default
        assert options.speed_mps("residential", 60.0) == pytest.approx(60.0 * 0.8 / 3.6)
        # unknown class falls back to default_speed_kmh
        assert options.speed_mps("hyperloop", None) == pytest.approx(40.0 * 0.8 / 3.6)


def planar_assembler(**options) -> NetworkAssembler:
    return NetworkAssembler("test", IngestOptions(projection="planar", **options))


class TestAssembler:
    def test_empty_rejected(self):
        with pytest.raises(IngestError, match="no road geometry"):
            planar_assembler().build()

    def test_short_polyline_rejected(self):
        with pytest.raises(IngestError, match="at least 2 points"):
            planar_assembler().add_polyline([(0.0, 0.0)])

    def test_snaps_nearby_endpoints_across_cell_boundaries(self):
        assembler = planar_assembler(snap_metres=1.0)
        # second feature's endpoint is 0.6 m away from the first's — within
        # the snap tolerance but (deliberately) straddling a grid-cell edge
        assembler.add_polyline([(0.0, 0.0), (100.0, 0.0)])
        assembler.add_polyline([(100.4, 0.45), (200.0, 0.0)])
        network, report = assembler.build()
        assert network.num_vertices == 3
        assert report.snapped_nodes == 3
        assert report.raw_points == 4

    def test_distant_endpoints_stay_distinct(self):
        assembler = planar_assembler(snap_metres=1.0)
        assembler.add_polyline([(0.0, 0.0), (100.0, 0.0)])
        assembler.add_polyline([(100.0, 3.0), (100.0, 50.0), (0.0, 50.0), (0.0, 0.0)])
        network, _ = assembler.build()
        # (100,0) and (100,3) are 3 m apart: not snapped
        assert network.num_vertices == 5

    def test_self_loop_segments_dropped(self):
        assembler = planar_assembler(snap_metres=1.0)
        assembler.add_polyline([(0.0, 0.0), (0.3, 0.1), (50.0, 0.0)])
        network, report = assembler.build()
        assert report.self_loops_dropped == 1
        assert network.num_edges == 1

    def test_largest_component_kept_and_relabelled_densely(self):
        assembler = planar_assembler()
        assembler.add_polyline([(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)])
        assembler.add_polyline([(5000.0, 5000.0), (5100.0, 5000.0)])  # island
        network, report = assembler.build()
        assert report.components == 2
        assert report.dropped_vertices == 2
        assert sorted(network.vertices()) == [0, 1, 2]

    def test_keep_all_components(self):
        assembler = planar_assembler(keep_all_components=True)
        assembler.add_polyline([(0.0, 0.0), (100.0, 0.0)])
        assembler.add_polyline([(5000.0, 5000.0), (5100.0, 5000.0)])
        network, _ = assembler.build()
        assert network.num_vertices == 4

    def test_length_never_undercuts_straight_line(self):
        assembler = planar_assembler(snap_metres=2.0)
        # measured length (49) shorter than the snapped endpoint distance
        assembler.add_polyline([(0.0, 0.0), (50.0, 0.0)], length_metres=49.0)
        network, _ = assembler.build()
        edge = next(iter(network.edges()))
        assert edge.length >= network.euclidean(edge.u, edge.v) - 1e-6
        network.validate()

    def test_measured_length_distributed_proportionally(self):
        assembler = planar_assembler()
        assembler.add_polyline(
            [(0.0, 0.0), (100.0, 0.0), (300.0, 0.0)], length_metres=450.0
        )
        network, _ = assembler.build()
        lengths = sorted(edge.length for edge in network.edges())
        assert lengths == [pytest.approx(150.0), pytest.approx(300.0)]

    def test_explicit_speed_wins(self):
        assembler = planar_assembler()
        assembler.add_polyline(
            [(0.0, 0.0), (100.0, 0.0)], road_class="motorway", speed_mps=5.0
        )
        network, _ = assembler.build()
        assert next(iter(network.edges())).speed == 5.0

    def test_geographic_projection_auto_detected(self):
        assembler = NetworkAssembler("geo", IngestOptions())
        assembler.add_polyline([(-73.99, 40.73), (-73.989, 40.73)])
        network, report = assembler.build()
        assert "equirectangular" in report.projection
        # ~0.001 deg of longitude at 40.73N is ~84 m, not 0.001 "metres"
        edge = next(iter(network.edges()))
        assert 80.0 < edge.length < 90.0

    def test_deterministic_across_builds(self):
        def build():
            assembler = planar_assembler()
            assembler.add_polyline([(0.0, 0.0), (100.0, 0.0), (200.0, 10.0)])
            assembler.add_polyline([(200.0, 10.0), (200.0, 150.0)], road_class="primary")
            return assembler.build()[0]

        from repro.artifacts import network_content_hash

        assert network_content_hash(build()) == network_content_hash(build())
