"""Tests of the bundled real-map fixture (``tests/fixtures/riverton.geojson``).

Riverton is the repo's stand-in for a real OSM extract: WGS84 LineStrings
with ``highway`` classes, mixed ``maxspeed`` spellings, sub-metre endpoint
noise and disconnected stubs. These tests pin the properties the rest of
the suite (and the cold-start benchmark) relies on.
"""

import pytest

from repro.artifacts import network_content_hash
from repro.ingest import RIVERTON_FIXTURE, fixture_path, ingest_file, load_geojson_network
from repro.network.backends import APSP_VERTEX_LIMIT


@pytest.fixture(scope="module")
def riverton():
    return load_geojson_network(fixture_path(RIVERTON_FIXTURE), name="riverton")


class TestRivertonFixture:
    def test_size_in_spec_range(self, riverton):
        network, _ = riverton
        # ISSUE: a small real network, ~1-2k edges, and small enough that the
        # auto backend policy can still pick dense APSP in tests
        assert 1000 <= network.num_edges <= 2000
        assert network.num_vertices <= APSP_VERTEX_LIMIT

    def test_normalisation_really_happened(self, riverton):
        network, report = riverton
        assert "equirectangular" in report.projection
        assert report.components > 1          # the disconnected service stubs
        assert report.dropped_vertices > 0    # ... were dropped
        assert report.snapped_nodes < report.raw_points  # noisy endpoints unified
        assert sorted(network.vertices()) == list(range(network.num_vertices))

    def test_road_classes_and_speeds(self, riverton):
        network, report = riverton
        assert set(report.road_classes) >= {"primary", "secondary", "residential"}
        speeds = {edge.speed for edge in network.edges()}
        assert len(speeds) > 3  # class defaults plus assorted maxspeed tags

    def test_length_invariant(self, riverton):
        network, _ = riverton
        for edge in network.edges():
            assert edge.length >= network.euclidean(edge.u, edge.v) - 1e-9
        network.validate()

    def test_ingestion_is_deterministic(self, riverton):
        network, _ = riverton
        again, _ = ingest_file(fixture_path(RIVERTON_FIXTURE), name="riverton")
        assert network_content_hash(again) == network_content_hash(network)

    def test_registry_city_matches_direct_ingest(self, riverton):
        from repro.workloads.scenarios import ScenarioConfig, build_network

        network, _ = riverton
        registry = build_network(ScenarioConfig(city="riverton"))
        assert network_content_hash(registry) == network_content_hash(network)

    def test_file_city_matches_registry(self, riverton):
        from repro.workloads.scenarios import ScenarioConfig, build_network

        network, _ = riverton
        by_path = build_network(
            ScenarioConfig(city=f"file:{fixture_path(RIVERTON_FIXTURE)}")
        )
        assert network_content_hash(by_path) == network_content_hash(network)

    def test_fixture_generator_is_reproducible(self, riverton, tmp_path):
        """Re-running tools/make_riverton_fixture.py reproduces the bytes."""
        import subprocess
        import sys

        from repro.ingest.fixtures import _REPO_ROOT

        out = tmp_path / "riverton.geojson"
        subprocess.run(
            [sys.executable, str(_REPO_ROOT / "tools" / "make_riverton_fixture.py"), str(out)],
            check=True,
            capture_output=True,
        )
        assert out.read_bytes() == fixture_path(RIVERTON_FIXTURE).read_bytes()
