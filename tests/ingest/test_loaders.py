"""Tests of the GeoJSON / CSV front ends and the ``ingest_file`` dispatcher."""

import gzip
import json

import pytest

from repro.exceptions import IngestError
from repro.ingest import (
    IngestOptions,
    ingest_file,
    load_csv_network,
    load_geojson_network,
)

PLANAR = IngestOptions(projection="planar")


def collection(features) -> dict:
    return {"type": "FeatureCollection", "features": features}


def line(coordinates, **properties) -> dict:
    return {
        "type": "Feature",
        "geometry": {"type": "LineString", "coordinates": coordinates},
        "properties": properties,
    }


def write_json(path, payload):
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump(payload, handle)
    else:
        path.write_text(json.dumps(payload), encoding="utf-8")


class TestGeoJSON:
    def test_basic_linestrings(self, tmp_path):
        path = tmp_path / "town.geojson"
        write_json(
            path,
            collection(
                [
                    line([[0, 0], [100, 0]], highway="primary"),
                    line([[100, 0], [100, 200]], highway="residential"),
                ]
            ),
        )
        network, report = load_geojson_network(path, options=PLANAR)
        assert network.name == "town"
        assert network.num_vertices == 3
        assert network.num_edges == 2
        assert report.road_classes == {"primary": 1, "residential": 1}

    def test_multilinestring_and_skipped_geometries(self, tmp_path):
        path = tmp_path / "multi.json"
        write_json(
            path,
            collection(
                [
                    {
                        "type": "Feature",
                        "geometry": {
                            "type": "MultiLineString",
                            "coordinates": [
                                [[0, 0], [100, 0]],
                                [[100, 0], [100, 100]],
                            ],
                        },
                        "properties": {"highway": "secondary"},
                    },
                    {
                        "type": "Feature",
                        "geometry": {"type": "Point", "coordinates": [5, 5]},
                        "properties": {"amenity": "cafe"},
                    },
                ]
            ),
        )
        network, report = load_geojson_network(path, options=PLANAR)
        assert network.num_edges == 2
        assert report.features == 2  # two polylines; the Point never reaches them

    def test_gzip_matches_plain(self, tmp_path):
        payload = collection(
            [
                line([[0, 0], [150, 0]], highway="tertiary"),
                line([[150, 0], [150, 90]]),
            ]
        )
        plain = tmp_path / "city.geojson"
        packed = tmp_path / "city.geojson.gz"
        write_json(plain, payload)
        write_json(packed, payload)

        from repro.artifacts import network_content_hash

        a, _ = load_geojson_network(plain, options=PLANAR)
        b, _ = load_geojson_network(packed, options=PLANAR)
        assert a.name == b.name == "city"
        assert network_content_hash(a) == network_content_hash(b)

    def test_maxspeed_and_length_properties_used(self, tmp_path):
        path = tmp_path / "tagged.geojson"
        write_json(
            path,
            collection(
                [line([[0, 0], [100, 0]], highway="primary", maxspeed="30 mph", length=140.0)]
            ),
        )
        network, _ = load_geojson_network(path, options=PLANAR)
        edge = next(iter(network.edges()))
        assert edge.length == pytest.approx(140.0)
        assert edge.speed == pytest.approx(30.0 * 1.609344 * 0.8 / 3.6)

    def test_missing_file(self, tmp_path):
        with pytest.raises(IngestError, match="not found"):
            load_geojson_network(tmp_path / "nope.geojson")

    def test_not_a_feature_collection(self, tmp_path):
        path = tmp_path / "geom.geojson"
        write_json(path, {"type": "LineString", "coordinates": [[0, 0], [1, 1]]})
        with pytest.raises(IngestError, match="FeatureCollection"):
            load_geojson_network(path)

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "broken.geojson"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(IngestError, match="cannot read"):
            load_geojson_network(path)

    def test_malformed_coordinates(self, tmp_path):
        path = tmp_path / "bad.geojson"
        write_json(path, collection([line([[0, 0], ["east", 1]])]))
        with pytest.raises(IngestError, match="malformed GeoJSON coordinates"):
            load_geojson_network(path)


class TestCSV:
    def test_node_table_mode(self, tmp_path):
        nodes = tmp_path / "nodes.csv"
        edges = tmp_path / "edges.csv"
        nodes.write_text(
            "id,x,y\na,0,0\nb,100,0\nc,100,200\n", encoding="utf-8"
        )
        edges.write_text(
            "u,v,road_class\na,b,primary\nb,c,residential\n", encoding="utf-8"
        )
        network, report = load_csv_network(edges, nodes_path=nodes, options=PLANAR)
        assert network.name == "edges"
        assert network.num_vertices == 3
        assert report.road_classes == {"primary": 1, "residential": 1}

    def test_inline_coordinates_mode(self, tmp_path):
        edges = tmp_path / "inline.csv"
        edges.write_text(
            "ux,uy,vx,vy,length,speed\n0,0,100,0,120,7.5\n100,0,100,80,,\n",
            encoding="utf-8",
        )
        network, _ = load_csv_network(edges, options=PLANAR)
        assert network.num_vertices == 3
        by_length = sorted(network.edges(), key=lambda e: e.length)
        assert by_length[1].length == pytest.approx(120.0)
        assert by_length[1].speed == pytest.approx(7.5)

    def test_alias_columns(self, tmp_path):
        nodes = tmp_path / "nodes.csv"
        edges = tmp_path / "edges.csv"
        nodes.write_text("node_id,lon,lat\n1,0,0\n2,0.001,0\n", encoding="utf-8")
        edges.write_text("source,target,highway\n1,2,primary\n", encoding="utf-8")
        network, report = load_csv_network(edges, nodes_path=nodes)
        assert network.num_edges == 1
        assert "equirectangular" in report.projection

    def test_gzip_edge_table(self, tmp_path):
        edges = tmp_path / "edges.csv.gz"
        with gzip.open(edges, "wt", encoding="utf-8") as handle:
            handle.write("x1,y1,x2,y2\n0,0,50,0\n50,0,50,60\n")
        network, _ = load_csv_network(edges, options=PLANAR)
        assert network.name == "edges"
        assert network.num_edges == 2

    def test_ids_without_node_table_rejected(self, tmp_path):
        edges = tmp_path / "edges.csv"
        edges.write_text("u,v\na,b\n", encoding="utf-8")
        with pytest.raises(IngestError, match="no node table"):
            load_csv_network(edges)

    def test_unknown_node_id(self, tmp_path):
        nodes = tmp_path / "nodes.csv"
        edges = tmp_path / "edges.csv"
        nodes.write_text("id,x,y\na,0,0\n", encoding="utf-8")
        edges.write_text("u,v\na,ghost\n", encoding="utf-8")
        with pytest.raises(IngestError, match="unknown node id 'ghost'"):
            load_csv_network(edges, nodes_path=nodes, options=PLANAR)

    def test_non_numeric_coordinate(self, tmp_path):
        nodes = tmp_path / "nodes.csv"
        edges = tmp_path / "edges.csv"
        nodes.write_text("id,x,y\na,zero,0\n", encoding="utf-8")
        edges.write_text("u,v\na,a\n", encoding="utf-8")
        with pytest.raises(IngestError, match="not a number"):
            load_csv_network(edges, nodes_path=nodes)

    def test_empty_table(self, tmp_path):
        edges = tmp_path / "edges.csv"
        edges.write_text("ux,uy,vx,vy\n", encoding="utf-8")
        with pytest.raises(IngestError, match="no data rows"):
            load_csv_network(edges)


class TestDispatch:
    def test_dispatches_by_suffix(self, tmp_path):
        geo = tmp_path / "a.geojson"
        write_json(geo, collection([line([[0, 0], [10, 0]])]))
        csv_file = tmp_path / "b.csv"
        csv_file.write_text("ux,uy,vx,vy\n0,0,10,0\n", encoding="utf-8")
        for path in (geo, csv_file):
            network, _ = ingest_file(path, options=PLANAR)
            assert network.num_edges == 1

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "roads.shp"
        path.write_text("", encoding="utf-8")
        with pytest.raises(IngestError, match="unsupported suffix"):
            ingest_file(path)

    def test_name_override(self, tmp_path):
        geo = tmp_path / "whatever.geojson"
        write_json(geo, collection([line([[0, 0], [10, 0]])]))
        network, _ = ingest_file(geo, name="renamed", options=PLANAR)
        assert network.name == "renamed"
