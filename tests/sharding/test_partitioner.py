"""Tests for the spatial partitioner (grid-quadrant and KD strategies)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network.generators import grid_city, random_geometric_city
from repro.sharding.partitioner import Partition, SpatialPartitioner, STRATEGIES


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=10, columns=10, block_metres=250.0, seed=3)


@pytest.fixture(scope="module")
def scattered_network():
    return random_geometric_city(num_vertices=180, seed=7)


def _partition(network, shards, strategy):
    return SpatialPartitioner(shards, strategy).partition(network)


class TestValidation:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ConfigurationError):
            SpatialPartitioner(0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            SpatialPartitioner(2, strategy="voronoi")

    def test_rejects_more_shards_than_vertices(self, network):
        with pytest.raises(ConfigurationError):
            SpatialPartitioner(network.num_vertices + 1).partition(network)

    def test_unknown_shard_queries_raise(self, network):
        partition = _partition(network, 2, "grid")
        with pytest.raises(ConfigurationError):
            partition.vertices_in_shard(2)


class TestAssignment:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
    def test_every_vertex_assigned_exactly_once(self, network, strategy, shards):
        if strategy == "grid" and shards == 3:
            pass  # 1x3 grid: still valid
        partition = _partition(network, shards, strategy)
        assert partition.num_shards == shards
        total = sum(len(partition.vertices_in_shard(k)) for k in range(shards))
        assert total == network.num_vertices
        assert int(partition.sizes.sum()) == network.num_vertices

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_shards_are_balanced(self, network, strategy, shards):
        partition = _partition(network, shards, strategy)
        # quantile splits keep sizes within one vertex per split level
        assert partition.sizes.max() - partition.sizes.min() <= max(3, shards // 2)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_k1_is_the_whole_city(self, network, strategy):
        partition = _partition(network, 1, strategy)
        assert partition.num_shards == 1
        assert partition.num_boundary_vertices() == 0
        assert len(partition.vertices_in_shard(0)) == network.num_vertices

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_deterministic(self, network, strategy):
        first = _partition(network, 4, strategy)
        second = _partition(network, 4, strategy)
        assert np.array_equal(first.shard_of_position, second.shard_of_position)

    def test_vertex_mask_matches_vertex_lists(self, network):
        partition = _partition(network, 4, "kd")
        csr = network.csr
        for shard in range(4):
            mask = partition.vertex_mask(shard)
            assert np.array_equal(csr.vertex_ids[mask], partition.vertices_in_shard(shard))


class TestLookups:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_shard_of_vertex_matches_assignment(self, network, strategy):
        partition = _partition(network, 4, strategy)
        for shard in range(4):
            for vertex in partition.vertices_in_shard(shard).tolist():
                assert partition.shard_of_vertex(vertex) == shard

    def test_vectorized_lookup_matches_scalar(self, network):
        partition = _partition(network, 4, "grid")
        vertices = list(network.vertices())
        scalar = [partition.shard_of_vertex(v) for v in vertices]
        assert partition.shards_of_vertices(vertices).tolist() == scalar

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_point_lookup_agrees_on_unique_coordinates(self, scattered_network, strategy):
        # the random city has continuous coordinates, so no quantile ties
        partition = _partition(scattered_network, 4, strategy)
        csr = scattered_network.csr
        for position in range(csr.num_vertices):
            by_point = partition.shard_of_point(float(csr.xs[position]), float(csr.ys[position]))
            assert by_point == int(partition.shard_of_position[position])


class TestBoundaries:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_boundary_vertices_have_a_cross_edge(self, network, strategy):
        partition = _partition(network, 4, strategy)
        for shard in range(4):
            for vertex in partition.boundary_vertices(shard).tolist():
                neighbour_shards = {
                    partition.shard_of_vertex(neighbour)
                    for neighbour in network.neighbours(vertex)
                }
                assert neighbour_shards - {shard}

    def test_interior_vertices_have_no_cross_edge(self, network):
        partition = _partition(network, 4, "grid")
        boundary = {
            int(v) for k in range(4) for v in partition.boundary_vertices(k)
        }
        for vertex in network.vertices():
            if vertex in boundary:
                continue
            shard = partition.shard_of_vertex(vertex)
            for neighbour in network.neighbours(vertex):
                assert partition.shard_of_vertex(neighbour) == shard

    def test_shard_adjacency_is_symmetric(self, network):
        partition = _partition(network, 4, "kd")
        for shard, neighbours in enumerate(partition.shard_adjacency):
            for other in neighbours:
                assert shard in partition.shard_adjacency[other]

    def test_statistics_shape(self, network):
        statistics = _partition(network, 4, "grid").statistics()
        assert statistics["shards"] == 4.0
        assert statistics["boundary_vertices"] > 0


class TestEscalationOrdering:
    def test_shards_by_distance_orders_by_centroid(self, network):
        partition = _partition(network, 4, "grid")
        for shard in range(4):
            x, y = partition.centroids[shard]
            ordered = partition.shards_by_distance(float(x), float(y))
            assert int(ordered[0]) == shard  # own centroid is nearest
            assert sorted(ordered.tolist()) == [0, 1, 2, 3]
