"""Behavioural tests of the sharded dispatcher: routing, escalation, counters."""

import numpy as np
import pytest

from repro.core.objective import ObjectiveConfig, PenaltyPolicy
from repro.core.types import Request, Worker
from repro.core.instance import URPSMInstance
from repro.dispatch import DispatcherConfig, make_dispatcher
from repro.exceptions import ConfigurationError
from repro.network.generators import grid_city
from repro.network.oracle import DistanceOracle, OracleCounters
from repro.sharding.dispatcher import ShardedDispatcher
from repro.simulation.simulator import run_simulation
from repro.workloads.scenarios import ScenarioConfig, build_instance

_CONFIG = ScenarioConfig(city="small-grid", num_workers=10, num_requests=40, seed=13)


def _run(algorithm: str, shards: int, **dispatcher_overrides):
    dispatcher_config = DispatcherConfig(
        grid_cell_metres=_CONFIG.grid_km * 1000.0, num_shards=shards, **dispatcher_overrides
    )
    return run_simulation(
        build_instance(_CONFIG), make_dispatcher(algorithm, dispatcher_config)
    )


class TestConstruction:
    def test_registry_prefix_builds_the_wrapper(self):
        dispatcher = make_dispatcher("sharded:GreedyDP", DispatcherConfig(num_shards=4))
        assert isinstance(dispatcher, ShardedDispatcher)
        assert dispatcher.name == "sharded:GreedyDP"
        assert dispatcher.num_shards == 4

    def test_bare_sharded_defaults_to_prune_greedy_dp(self):
        dispatcher = make_dispatcher("sharded")
        assert dispatcher.name == "sharded:pruneGreedyDP"

    def test_unknown_inner_rejected(self):
        with pytest.raises(KeyError):
            make_dispatcher("sharded:magic")

    def test_nested_sharding_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedDispatcher(inner="sharded:pruneGreedyDP")

    def test_non_positive_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedDispatcher(num_shards=0)

    def test_requires_exact_positions_follows_inner(self):
        assert ShardedDispatcher(inner="tshare").requires_exact_positions
        assert not ShardedDispatcher(inner="pruneGreedyDP").requires_exact_positions

    def test_multi_shard_requires_exact_positions(self):
        # shard routing is position-dependent, so lazy (stale) positions
        # would make K>1 results depend on the advancement regime
        assert ShardedDispatcher(inner="pruneGreedyDP", num_shards=2).requires_exact_positions


class TestCountersSurfaced:
    def test_extra_metrics_reach_the_result(self):
        result = _run("sharded:pruneGreedyDP", shards=4)
        for key in (
            "sharding_shards",
            "sharding_local_hits",
            "sharding_escalations",
            "sharding_cross_shard_assignments",
            "sharding_distance_queries",
        ):
            assert key in result.extra
        assert result.extra["sharding_shards"] == 4.0
        handled = (
            result.extra["sharding_local_hits"]
            + result.extra["sharding_cross_shard_assignments"]
            + result.extra["sharding_rejections"]
        )
        assert handled == result.total_requests

    def test_rows_and_tables_show_sharding_columns(self):
        from repro.experiments.reporting import format_results

        result = _run("sharded:pruneGreedyDP", shards=2)
        row = result.as_row()
        assert "sharding_local_hits" in row
        table = format_results([result])
        assert "sharding_local_hits" in table

    def test_per_shard_counters_aggregate_not_overwrite(self):
        """Satellite fix: per-shard oracle totals are merged, not last-wins."""
        result = _run("sharded:pruneGreedyDP", shards=4)
        per_shard = [
            result.extra[f"sharding_shard{shard}_distance_queries"] for shard in range(4)
        ]
        assert result.extra["sharding_distance_queries"] == sum(per_shard)
        # at least two shards did work, so a last-wins bug cannot produce the sum
        assert sum(1 for value in per_shard if value > 0) >= 2
        assert result.extra["sharding_distance_queries"] > max(per_shard)

    def test_shard_totals_bounded_by_global_counters(self):
        result = _run("sharded:pruneGreedyDP", shards=4)
        # the engine issues extra completion-recording queries outside the
        # dispatcher, so the dispatcher-attributed total is a lower bound
        assert result.extra["sharding_distance_queries"] <= result.distance_queries
        assert result.extra["sharding_lower_bound_queries"] == result.lower_bound_queries


class TestShardOracleBackends:
    def test_shared_mode_attaches_no_shard_oracles(self):
        result = _run("sharded:pruneGreedyDP", shards=2)
        assert not any(
            key.endswith("_oracle_backend") for key in result.extra
        )

    def test_per_shard_backends_match_the_shared_run(self):
        # shard-local oracles answer over the full network with value-exact
        # backends, so outcomes — including the headline query counters,
        # folded back in through oracle_counter_totals — must not move
        shared = _run("sharded:pruneGreedyDP", shards=2)
        local = _run(
            "sharded:pruneGreedyDP", shards=2, shard_oracle_backend="apsp"
        )
        assert local.served_rate == shared.served_rate
        assert local.unified_cost == shared.unified_cost
        assert local.mean_wait_seconds == shared.mean_wait_seconds
        assert local.distance_queries == shared.distance_queries
        assert local.extra["sharding_shard0_oracle_backend"] == "apsp"
        assert local.extra["sharding_shard1_oracle_backend"] == "apsp"
        # decision queries are attributed to the shards' own counters
        assert local.extra["sharding_distance_queries"] > 0

    def test_auto_mode_selects_per_shard(self):
        result = _run(
            "sharded:pruneGreedyDP", shards=2, shard_oracle_backend="auto"
        )
        from repro.network.backends import BACKEND_NAMES

        for shard in range(2):
            assert result.extra[f"sharding_shard{shard}_oracle_backend"] in BACKEND_NAMES

    def test_shards_share_one_oracle_build_per_backend(self):
        dispatcher = make_dispatcher(
            "sharded:pruneGreedyDP",
            DispatcherConfig(
                grid_cell_metres=_CONFIG.grid_km * 1000.0,
                num_shards=4,
                shard_oracle_backend="apsp",
            ),
        )
        run_simulation(build_instance(_CONFIG), dispatcher)
        # four shards, one dense matrix — not four
        assert list(dispatcher._shard_oracles) == ["apsp"]
        oracles = {id(shard.oracle) for shard in dispatcher._shards}
        assert len(oracles) == 1

    def test_auto_mode_respects_the_apsp_size_limit(self):
        # auto must size the backend by the network the index is built on
        # (the full city), not the shard's slice of it
        from repro.network.backends import APSP_VERTEX_LIMIT, select_backend_name

        hint = 10_000
        assert select_backend_name(APSP_VERTEX_LIMIT + 1, hint) != "apsp"

    def test_unknown_shard_oracle_backend_rejected(self):
        from repro.dispatch.registry import DispatcherSpec

        with pytest.raises(ConfigurationError, match="shard oracle backend"):
            DispatcherSpec(
                algorithm="pruneGreedyDP", num_shards=2, shard_oracle_backend="bogus"
            ).validate()


class TestOracleCountersMerge:
    def test_merge_sums_every_field(self):
        first = OracleCounters(distance_queries=3, path_queries=1, lower_bound_queries=7, dijkstra_runs=2)
        second = OracleCounters(distance_queries=5, path_queries=4, lower_bound_queries=1, dijkstra_runs=0)
        merged = OracleCounters.merge([first, second])
        assert merged.distance_queries == 8
        assert merged.path_queries == 5
        assert merged.lower_bound_queries == 8
        assert merged.dijkstra_runs == 2

    def test_merge_of_nothing_is_zero(self):
        merged = OracleCounters.merge([])
        assert merged.distance_queries == 0


class TestEscalation:
    def _corner_instance(self):
        """All workers in the south-west corner; requests from the north-east."""
        network = grid_city(rows=8, columns=8, block_metres=300.0, seed=5,
                            removed_block_fraction=0.0)
        oracle = DistanceOracle(network, precompute="apsp")
        csr = network.csr
        order = np.lexsort((csr.ys, csr.xs))
        south_west = [int(csr.vertex_ids[i]) for i in order[:4]]
        north_east = [int(csr.vertex_ids[i]) for i in order[-6:]]
        workers = [Worker(id=i, initial_location=v, capacity=4)
                   for i, v in enumerate(south_west)]
        objective = ObjectiveConfig(alpha=1.0, penalty_policy=PenaltyPolicy.FIXED,
                                    penalty_value=1e9)
        requests = []
        for i, origin in enumerate(north_east[:-1]):
            destination = north_east[-1] if north_east[-1] != origin else north_east[0]
            # spaced far enough apart that workers visibly travel (and cross
            # shard borders) between consecutive dispatches
            requests.append(Request(
                id=i, origin=origin, destination=destination,
                release_time=i * 600.0, deadline=i * 600.0 + 7200.0,
                penalty=1e9, capacity=1,
            ))
        return URPSMInstance(network=network, oracle=oracle, workers=workers,
                             requests=requests, objective=objective,
                             name="corner")

    def test_requests_escalate_to_the_workers_shard(self):
        instance = self._corner_instance()
        dispatcher = make_dispatcher(
            "sharded:pruneGreedyDP",
            DispatcherConfig(grid_cell_metres=1000.0, num_shards=4),
        )
        result = run_simulation(instance, dispatcher)
        # the first requests' origin shard holds no workers, so they can only
        # be served by escalating into the workers' corner (later requests
        # may become local hits once workers have migrated north-east)
        assert result.served_requests == result.total_requests
        assert result.extra["sharding_escalations"] > 0
        assert result.extra["sharding_cross_shard_assignments"] > 0
        assert (
            result.extra["sharding_local_hits"]
            + result.extra["sharding_cross_shard_assignments"]
            == result.served_requests
        )

    def test_workers_rebucket_when_crossing_borders(self):
        instance = self._corner_instance()
        dispatcher = make_dispatcher(
            "sharded:pruneGreedyDP",
            DispatcherConfig(grid_cell_metres=1000.0, num_shards=4),
        )
        result = run_simulation(instance, dispatcher)
        # serving the far corner forces workers across shard borders
        assert result.extra["sharding_cross_shard_moves"] > 0
        # membership stayed consistent: every worker is in exactly one view
        members = [shard.view.members for shard in dispatcher._shards]
        all_ids = sorted(worker_id for shard in members for worker_id in shard)
        assert all_ids == sorted(state.worker.id for state in dispatcher.fleet)
        for worker_id in all_ids:
            assert sum(worker_id in shard for shard in members) == 1


class TestBatchProtocol:
    def test_batch_inner_runs_and_resolves_everything(self):
        result = _run("sharded:batch", shards=4)
        assert result.total_requests == _CONFIG.num_requests
        assert result.served_requests + result.rejected_requests == result.total_requests

    def test_batch_inner_with_dynamics(self):
        config = _CONFIG.with_overrides(cancellation_rate=0.2, shift_hours=2.0)
        dispatcher_config = DispatcherConfig(
            grid_cell_metres=config.grid_km * 1000.0, num_shards=4
        )
        result = run_simulation(
            build_instance(config), make_dispatcher("sharded:batch", dispatcher_config)
        )
        assert result.total_requests == config.num_requests

    def test_memory_estimate_sums_shard_grids(self):
        dispatcher = make_dispatcher(
            "sharded:pruneGreedyDP",
            DispatcherConfig(grid_cell_metres=_CONFIG.grid_km * 1000.0, num_shards=4),
        )
        run_simulation(build_instance(_CONFIG), dispatcher)
        total = sum(
            shard.dispatcher.memory_estimate_bytes() for shard in dispatcher._shards
        )
        assert dispatcher.memory_estimate_bytes() == total > 0


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["grid", "kd"])
    def test_both_strategies_run_end_to_end(self, strategy):
        result = _run("sharded:pruneGreedyDP", shards=4, shard_strategy=strategy)
        assert result.total_requests == _CONFIG.num_requests
        assert result.served_rate > 0.5
