"""Sharded-vs-unsharded equivalence: exact at K=1, bounded degradation at K>1.

These are the acceptance tests of the sharding subsystem:

* with one shard the wrapper is pure plumbing — served rate, unified cost and
  every oracle counter must reproduce the unsharded dispatcher bit for bit,
  on both simulation engines and for immediate *and* batch inner algorithms;
* with K>1 dispatching is local-first, which may trade assignment quality for
  locality; on the smoke scenario the served rate must stay within a
  documented tolerance of the unsharded baseline (the same tolerance
  ``benchmarks/bench_sharding.py`` tracks over time).
"""

import pytest

from repro.dispatch import DispatcherConfig, make_dispatcher
from repro.simulation.simulator import run_simulation
from repro.workloads.scenarios import ScenarioConfig, build_instance

#: maximum served-rate degradation tolerated at K>1 on the smoke scenario.
#: Local-first dispatch with escalation considers every worker before
#: rejecting, so in practice the delta is close to zero; the bound guards
#: against regressions in the escalation path.
SERVED_RATE_TOLERANCE = 0.05

_SMOKE = ScenarioConfig(city="small-grid", num_workers=14, num_requests=80, seed=2018)


def _fingerprint(result):
    return {
        "total": result.total_requests,
        "served": result.served_requests,
        "rejected": result.rejected_requests,
        "unified_cost": result.unified_cost,
        "travel_cost": result.total_travel_cost,
        "penalty": result.total_penalty,
        "distance_queries": result.distance_queries,
        "lower_bound_queries": result.lower_bound_queries,
        "candidates": result.candidates_considered,
        "insertions": result.insertions_evaluated,
        "dijkstra_runs": result.extra.get("dijkstra_runs"),
    }


def _run(algorithm: str, engine: str = "event", shards: int | None = None,
         strategy: str = "grid", config: ScenarioConfig = _SMOKE):
    dispatcher_config = DispatcherConfig(
        grid_cell_metres=config.grid_km * 1000.0,
        num_shards=shards or 1,
        shard_strategy=strategy,
    )
    name = algorithm if shards is None else f"sharded:{algorithm}"
    return run_simulation(
        build_instance(config), make_dispatcher(name, dispatcher_config), engine=engine
    )


class TestK1Exactness:
    @pytest.mark.parametrize("algorithm", ["pruneGreedyDP", "GreedyDP", "nearest", "batch"])
    def test_event_engine_bit_identical(self, algorithm):
        baseline = _run(algorithm)
        sharded = _run(algorithm, shards=1)
        assert _fingerprint(sharded) == _fingerprint(baseline)

    @pytest.mark.parametrize("algorithm", ["pruneGreedyDP", "batch"])
    def test_legacy_engine_bit_identical(self, algorithm):
        baseline = _run(algorithm, engine="legacy")
        sharded = _run(algorithm, engine="legacy", shards=1)
        assert _fingerprint(sharded) == _fingerprint(baseline)

    def test_tshare_bit_identical(self):
        # tshare forces exact positions (fleet-wide materialisation per event)
        baseline = _run("tshare")
        sharded = _run("tshare", shards=1)
        assert _fingerprint(sharded) == _fingerprint(baseline)

    @pytest.mark.parametrize("strategy", ["grid", "kd"])
    def test_exact_for_both_strategies(self, strategy):
        baseline = _run("pruneGreedyDP")
        sharded = _run("pruneGreedyDP", shards=1, strategy=strategy)
        assert _fingerprint(sharded) == _fingerprint(baseline)

    def test_k1_with_dynamics_bit_identical(self):
        config = _SMOKE.with_overrides(cancellation_rate=0.15, shift_hours=2.0)
        baseline = _run("pruneGreedyDP", config=config)
        sharded = _run("pruneGreedyDP", shards=1, config=config)
        assert _fingerprint(sharded) == _fingerprint(baseline)
        assert sharded.cancelled_requests == baseline.cancelled_requests


class TestEngineIdentity:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_event_and_legacy_agree_at_k_greater_one(self, shards):
        # shard routing materialises exact positions, so the advancement
        # regime (lazy event kernel vs eager legacy loop) must not leak into
        # the metrics — the same contract the unsharded dispatchers honour
        event = _run("pruneGreedyDP", engine="event", shards=shards)
        legacy = _run("pruneGreedyDP", engine="legacy", shards=shards)
        assert event.served_rate == legacy.served_rate
        assert event.unified_cost == pytest.approx(legacy.unified_cost, abs=1e-9)


class TestBoundedDegradation:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_served_rate_within_tolerance(self, shards):
        baseline = _run("pruneGreedyDP")
        sharded = _run("pruneGreedyDP", shards=shards)
        assert sharded.total_requests == baseline.total_requests
        assert (
            baseline.served_rate - sharded.served_rate <= SERVED_RATE_TOLERANCE
        ), f"K={shards} served rate degraded beyond tolerance"

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharding_reduces_dispatcher_query_volume(self, shards):
        # the point of locality: fewer lower-bound probes per request
        baseline = _run("pruneGreedyDP")
        sharded = _run("pruneGreedyDP", shards=shards)
        assert sharded.lower_bound_queries < baseline.lower_bound_queries

    def test_escalation_prevents_extra_rejections_when_fleet_is_free(self):
        # generous deadlines: anything the unsharded dispatcher serves, the
        # sharded one must also serve somewhere (possibly cross-shard)
        config = _SMOKE.with_overrides(deadline_minutes=30.0, num_requests=40)
        baseline = _run("pruneGreedyDP", config=config)
        sharded = _run("pruneGreedyDP", shards=4, config=config)
        assert sharded.served_requests >= baseline.served_requests
