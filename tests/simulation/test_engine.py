"""Tests for the event-driven simulation kernel.

Covers the acceptance criteria of the kernel refactor:

* metric identity with the legacy request-stream loop on dynamics-free
  instances, per algorithm;
* batch-flush edge cases (window expiring exactly at a release time, empty
  flushes, batches resolved after the last arrival);
* the bounded final drain (a dispatcher whose ``next_flush_time`` never
  returns ``None`` raises instead of hanging);
* rider cancellations and staggered worker shifts, which only run on the
  event kernel.
"""

import pytest

from repro.core.instance import Cancellation, InstanceDynamics, URPSMInstance, WorkerShift
from repro.core.objective import ObjectiveConfig, PenaltyPolicy
from repro.dispatch import Batch, DispatcherConfig, GreedyDP, NearestWorker, PruneGreedyDP
from repro.dispatch.base import Dispatcher
from repro.exceptions import ConfigurationError, DispatchError
from repro.simulation.engine import EventEngine
from repro.simulation.fleet import FleetState
from repro.simulation.simulator import Simulator, run_simulation
from repro.workloads.requests import sample_cancellations
from repro.workloads.scenarios import ScenarioConfig, build_instance
from repro.workloads.workers import staggered_shifts
from tests.conftest import make_request, make_worker, route_with_requests


def _instance(network, oracle, requests, workers=None, alpha=1.0, dynamics=None):
    objective = ObjectiveConfig(alpha=alpha, penalty_policy=PenaltyPolicy.FIXED, penalty_value=100.0)
    return URPSMInstance(
        network=network,
        oracle=oracle,
        workers=workers or [make_worker(0, 0, capacity=4)],
        requests=requests,
        objective=objective,
        name="engine-test",
        dynamics=dynamics,
    )


# --------------------------------------------------------------------- A / B


class TestMetricIdentity:
    """The event kernel must reproduce the legacy loop's metrics exactly."""

    @pytest.mark.parametrize(
        "make_dispatcher",
        [
            lambda: PruneGreedyDP(DispatcherConfig(grid_cell_metres=500.0)),
            lambda: GreedyDP(DispatcherConfig(grid_cell_metres=500.0)),
            lambda: Batch(DispatcherConfig(grid_cell_metres=500.0, batch_interval=6.0)),
            lambda: NearestWorker(DispatcherConfig(grid_cell_metres=500.0)),
        ],
        ids=["pruneGreedyDP", "GreedyDP", "batch", "nearest"],
    )
    def test_engines_agree_on_small_instance(self, small_instance, make_dispatcher):
        legacy = run_simulation(small_instance, make_dispatcher(), engine="legacy")
        event = run_simulation(small_instance, make_dispatcher(), engine="event")
        assert event.served_requests == legacy.served_requests
        assert event.rejected_requests == legacy.rejected_requests
        assert event.total_requests == legacy.total_requests
        assert event.unified_cost == pytest.approx(legacy.unified_cost)
        assert event.total_travel_cost == pytest.approx(legacy.total_travel_cost)
        assert event.deadline_violations == legacy.deadline_violations
        assert event.mean_wait_seconds == pytest.approx(legacy.mean_wait_seconds)
        assert event.mean_detour_ratio == pytest.approx(legacy.mean_detour_ratio)

    def test_engines_agree_on_generated_scenario(self):
        config = ScenarioConfig(city="small-grid", num_workers=8, num_requests=40, seed=13)
        results = {}
        for engine in ("legacy", "event"):
            instance = build_instance(config)
            dispatcher = PruneGreedyDP(DispatcherConfig(grid_cell_metres=1000.0))
            results[engine] = run_simulation(instance, dispatcher, engine=engine)
        assert results["event"].served_requests == results["legacy"].served_requests
        assert results["event"].unified_cost == pytest.approx(results["legacy"].unified_cost)

    def test_event_engine_is_deterministic(self, small_instance):
        first = run_simulation(
            small_instance, Batch(DispatcherConfig(grid_cell_metres=500.0)), engine="event"
        )
        second = run_simulation(
            small_instance, Batch(DispatcherConfig(grid_cell_metres=500.0)), engine="event"
        )
        assert first.served_requests == second.served_requests
        assert first.unified_cost == second.unified_cost
        assert first.total_travel_cost == second.total_travel_cost

    def test_unknown_engine_rejected(self, small_instance):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            Simulator(small_instance, GreedyDP(), engine="quantum")


# ------------------------------------------------------------- batch windows


class _RecordingBatch(Batch):
    """Batch dispatcher that logs the order of dispatch/flush interactions."""

    def __init__(self, config=None):
        super().__init__(config)
        self.log: list[tuple] = []

    def dispatch(self, request, now):
        self.log.append(("dispatch", now, request.id))
        return super().dispatch(request, now)

    def flush(self, now):
        self.log.append(("flush", now, tuple(r.id for r in self.pending_requests)))
        return super().flush(now)


class TestBatchFlushEdgeCases:
    def test_flush_deadline_equal_to_release_time(self, line_network, line_oracle):
        """A window expiring exactly at a release time flushes first; the new
        request opens the next window (deterministic equal-timestamp order)."""
        requests = [
            make_request(0, 1, 2, release=0.0),
            make_request(1, 2, 3, release=6.0),
        ]
        instance = _instance(line_network, line_oracle, requests)
        dispatcher = _RecordingBatch(DispatcherConfig(grid_cell_metres=200.0, batch_interval=6.0))
        result = run_simulation(instance, dispatcher, engine="event")
        assert result.total_requests == 2
        assert dispatcher.log == [
            ("dispatch", 0.0, 0),
            ("flush", 6.0, (0,)),
            ("dispatch", 6.0, 1),
            ("flush", 12.0, (1,)),
        ]

    def test_empty_flush_returns_no_outcomes(self, small_instance, fleet):
        dispatcher = Batch(DispatcherConfig(grid_cell_metres=500.0))
        dispatcher.setup(small_instance, fleet)
        assert dispatcher.flush(now=10.0) == []
        assert dispatcher.next_flush_time() is None

    def test_deferred_requests_resolved_after_last_arrival(self, line_network, line_oracle):
        """A window longer than the whole stream is drained after the stream."""
        requests = [
            make_request(0, 1, 2, release=0.0),
            make_request(1, 3, 4, release=5.0),
        ]
        instance = _instance(line_network, line_oracle, requests)
        dispatcher = _RecordingBatch(DispatcherConfig(grid_cell_metres=200.0, batch_interval=500.0))
        result = run_simulation(instance, dispatcher, engine="event")
        assert result.total_requests == 2
        assert dispatcher.log[-1] == ("flush", 500.0, (0, 1))

    def test_final_drain_matches_legacy(self, line_network, line_oracle):
        requests = [make_request(0, 1, 2, release=0.0), make_request(1, 3, 4, release=5.0)]
        results = {}
        for engine in ("legacy", "event"):
            instance = _instance(line_network, line_oracle, requests)
            dispatcher = Batch(DispatcherConfig(grid_cell_metres=200.0, batch_interval=500.0))
            results[engine] = run_simulation(instance, dispatcher, engine=engine)
        assert results["event"].served_requests == results["legacy"].served_requests
        assert results["event"].unified_cost == pytest.approx(results["legacy"].unified_cost)


class _NeverDrains(Dispatcher):
    """Pathological batch dispatcher: next_flush_time() never returns None.

    The seed loop's ``_final_flush`` spun forever on this; both engines must
    now raise instead.
    """

    name = "never-drains"

    @property
    def is_batched(self) -> bool:
        return True

    def dispatch(self, request, now):
        return None

    def next_flush_time(self):
        return 6.0

    def flush(self, now):
        return []


class TestBoundedFinalDrain:
    @pytest.mark.parametrize("engine", ["legacy", "event"])
    def test_non_terminating_batch_dispatcher_raises(self, line_network, line_oracle, engine):
        requests = [make_request(0, 1, 2, release=0.0)]
        instance = _instance(line_network, line_oracle, requests)
        with pytest.raises(DispatchError, match="does not terminate"):
            run_simulation(instance, _NeverDrains(), engine=engine)


# ------------------------------------------------------------- cancellations


class TestCancellations:
    def test_cancellation_before_pickup_frees_the_worker(self, line_network, line_oracle):
        # worker starts at 0; pickup at 4 takes 40s; cancel at t=10
        requests = [make_request(0, 4, 5, release=0.0)]
        dynamics = InstanceDynamics(cancellations=[Cancellation(request_id=0, time=10.0)])
        instance = _instance(line_network, line_oracle, requests, dynamics=dynamics)
        simulator = Simulator(instance, GreedyDP(DispatcherConfig(grid_cell_metres=200.0)))
        result = simulator.run()
        assert result.cancelled_requests == 1
        assert result.served_requests == 0
        assert result.rejected_requests == 0
        assert result.total_requests == 1
        assert result.total_penalty == 0.0
        # the worker drove towards the pickup for 10 seconds, then stopped
        assert result.total_travel_cost == pytest.approx(10.0)
        assert all(state.is_idle for state in simulator.fleet)

    def test_cancellation_after_pickup_is_ignored(self, line_network, line_oracle):
        # pickup happens at t=40; the cancellation at t=45 arrives too late
        requests = [make_request(0, 4, 5, release=0.0)]
        dynamics = InstanceDynamics(cancellations=[Cancellation(request_id=0, time=45.0)])
        instance = _instance(line_network, line_oracle, requests, dynamics=dynamics)
        result = run_simulation(instance, GreedyDP(DispatcherConfig(grid_cell_metres=200.0)))
        assert result.cancelled_requests == 0
        assert result.served_requests == 1
        assert result.total_travel_cost == pytest.approx(50.0)

    def test_cancellation_of_batched_request_before_flush(self, line_network, line_oracle):
        requests = [make_request(0, 1, 2, release=0.0)]
        dynamics = InstanceDynamics(cancellations=[Cancellation(request_id=0, time=3.0)])
        instance = _instance(line_network, line_oracle, requests, dynamics=dynamics)
        result = run_simulation(
            instance, Batch(DispatcherConfig(grid_cell_metres=200.0, batch_interval=6.0))
        )
        assert result.cancelled_requests == 1
        assert result.served_requests == 0
        assert result.total_requests == 1
        assert result.total_travel_cost == pytest.approx(0.0)

    def test_legacy_engine_refuses_dynamics(self, line_network, line_oracle):
        requests = [make_request(0, 1, 2, release=0.0)]
        dynamics = InstanceDynamics(cancellations=[Cancellation(request_id=0, time=3.0)])
        instance = _instance(line_network, line_oracle, requests, dynamics=dynamics)
        with pytest.raises(ConfigurationError, match="require the event engine"):
            run_simulation(instance, GreedyDP(), engine="legacy")

    def test_sample_cancellations_rate_and_window(self, line_network, line_oracle):
        requests = [
            make_request(index, 1, 3, release=10.0 * index, deadline=10.0 * index + 600.0)
            for index in range(50)
        ]
        none = sample_cancellations(requests, rate=0.0, seed=1)
        assert none == []
        all_cancelled = sample_cancellations(requests, rate=1.0, seed=1)
        assert len(all_cancelled) == 50
        by_id = {request.id: request for request in requests}
        for cancellation in all_cancelled:
            request = by_id[cancellation.request_id]
            assert request.release_time < cancellation.time < request.deadline
        times = [cancellation.time for cancellation in all_cancelled]
        assert times == sorted(times)
        assert sample_cancellations(requests, rate=1.0, seed=1) == all_cancelled


# ------------------------------------------------------------- worker shifts


class TestWorkerShifts:
    def test_staggered_shifts_cover_the_horizon(self):
        workers = [make_worker(index, 0) for index in range(10)]
        shifts = staggered_shifts(workers, horizon_seconds=7200.0, shift_seconds=3600.0, seed=3)
        assert len(shifts) == 10
        assert shifts[0].start == 0.0
        for shift in shifts:
            assert 0.0 <= shift.start <= 7200.0 - 3600.0 + 1e-9
            assert shift.end == pytest.approx(shift.start + 3600.0)
        # staggering: not everyone starts at once
        assert len({shift.start for shift in shifts}) > 1

    def test_shift_covering_the_horizon_means_no_dynamics(self):
        """Always-on shifts are the same as no shifts: the instance must stay
        dynamics-free (and therefore legacy-engine compatible)."""
        workers = [make_worker(0, 0)]
        assert staggered_shifts(workers, horizon_seconds=3600.0, shift_seconds=7200.0, seed=3) == []
        config = ScenarioConfig(
            city="small-grid", num_workers=4, num_requests=10, shift_hours=10.0, horizon_hours=2.0
        )
        instance = build_instance(config)
        assert instance.dynamics is None
        run_simulation(instance, GreedyDP(DispatcherConfig(grid_cell_metres=1000.0)), engine="legacy")

    def test_multiple_shifts_per_worker_rejected(self, line_network, line_oracle):
        requests = [make_request(0, 1, 2, release=0.0)]
        dynamics = InstanceDynamics(
            shifts=[
                WorkerShift(worker_id=0, start=0.0, end=10.0),
                WorkerShift(worker_id=0, start=20.0, end=30.0),
            ]
        )
        instance = _instance(line_network, line_oracle, requests, dynamics=dynamics)
        with pytest.raises(ConfigurationError, match="more than one shift"):
            instance.validate()

    def test_offline_worker_gets_no_new_assignments(self, line_network, line_oracle):
        # worker 0 sits at the request origin but is off shift from t=50;
        # worker 1 (far away, always on) must serve the late request.
        workers = [make_worker(0, 1, capacity=4), make_worker(1, 5, capacity=4)]
        requests = [make_request(0, 1, 2, release=60.0, deadline=600.0)]
        dynamics = InstanceDynamics(shifts=[WorkerShift(worker_id=0, start=0.0, end=50.0)])
        instance = _instance(line_network, line_oracle, requests, workers=workers, dynamics=dynamics)
        engine = EventEngine(instance, GreedyDP(DispatcherConfig(grid_cell_metres=200.0)))
        result = engine.run()
        assert result.served_requests == 1
        assert not engine.fleet.peek_state(0).assigned_requests
        assert 0 in engine.fleet.peek_state(1).assigned_requests

    def test_worker_online_only_after_shift_start(self, line_network, line_oracle):
        # worker 1 sits at the origin but starts its shift at t=100;
        # worker 0 (far away, always on) must serve the early request.
        workers = [make_worker(0, 5, capacity=4), make_worker(1, 1, capacity=4)]
        requests = [make_request(0, 1, 2, release=0.0, deadline=600.0)]
        dynamics = InstanceDynamics(shifts=[WorkerShift(worker_id=1, start=100.0, end=None)])
        instance = _instance(line_network, line_oracle, requests, workers=workers, dynamics=dynamics)
        engine = EventEngine(instance, GreedyDP(DispatcherConfig(grid_cell_metres=200.0)))
        result = engine.run()
        assert result.served_requests == 1
        assert 0 in engine.fleet.peek_state(0).assigned_requests
        assert not engine.fleet.peek_state(1).assigned_requests

    def test_tshare_respects_shifts(self, line_network, line_oracle):
        """Regression: tshare's own cell walk must also skip off-shift workers."""
        from repro.dispatch import TShare

        workers = [make_worker(0, 1, capacity=4), make_worker(1, 5, capacity=4)]
        requests = [make_request(0, 1, 2, release=60.0, deadline=600.0)]
        dynamics = InstanceDynamics(shifts=[WorkerShift(worker_id=0, start=0.0, end=50.0)])
        instance = _instance(line_network, line_oracle, requests, workers=workers, dynamics=dynamics)
        engine = EventEngine(instance, TShare(DispatcherConfig(grid_cell_metres=200.0)))
        engine.run()
        assert not engine.fleet.peek_state(0).assigned_requests

    def test_dynamic_scenario_runs_end_to_end(self):
        config = ScenarioConfig(
            city="small-grid",
            num_workers=10,
            num_requests=60,
            seed=5,
            horizon_hours=2.0,
            cancellation_rate=0.3,
            shift_hours=1.0,
        )
        instance = build_instance(config)
        assert instance.dynamics is not None
        assert instance.dynamics.cancellations and instance.dynamics.shifts
        result = run_simulation(instance, PruneGreedyDP(DispatcherConfig(grid_cell_metres=1000.0)))
        assert result.total_requests == 60
        assert (
            result.served_requests + result.rejected_requests + result.cancelled_requests == 60
        )
        assert result.cancelled_requests > 0
        # determinism of the dynamic run
        again = run_simulation(
            build_instance(config), PruneGreedyDP(DispatcherConfig(grid_cell_metres=1000.0))
        )
        assert again.unified_cost == result.unified_cost
        assert again.cancelled_requests == result.cancelled_requests


# ----------------------------------------------------------------- lazy fleet


class TestLazyFleet:
    def test_state_of_materialises_to_clock(self, line_oracle):
        worker = make_worker(0, 0)
        fleet = FleetState([worker], line_oracle, lazy=True)
        request = make_request(0, 3, 5)
        route = route_with_requests(worker, line_oracle, [request])
        fleet.peek_state(0).adopt_route(route, request=request)
        fleet.set_clock(25.0)
        state = fleet.state_of(0)
        # edges take 10s: at t=25 the last vertex passed is 2 (reached at t=20)
        assert state.position == 2
        assert state.position_time == pytest.approx(20.0)

    def test_position_slack_reflects_staleness(self, line_oracle):
        worker = make_worker(0, 0)
        fleet = FleetState([worker], line_oracle, lazy=True)
        request = make_request(0, 3, 5)
        route = route_with_requests(worker, line_oracle, [request])
        fleet.peek_state(0).adopt_route(route, request=request)
        fleet.set_clock(25.0)
        fleet.state_of(0)  # materialised at t=20 (vertex 2)
        # 5 seconds of unobserved motion at 10 m/s
        assert fleet.position_slack_metres(10.0) == pytest.approx(50.0)

    def test_eager_fleet_has_no_slack(self, line_oracle):
        worker = make_worker(0, 0)
        fleet = FleetState([worker], line_oracle)
        assert fleet.position_slack_metres(10.0) == 0.0

    def test_lazy_completions_are_buffered(self, line_oracle):
        worker = make_worker(0, 0)
        fleet = FleetState([worker], line_oracle, lazy=True)
        request = make_request(0, 1, 2)
        route = route_with_requests(worker, line_oracle, [request])
        fleet.peek_state(0).adopt_route(route, request=request)
        fleet.set_clock(100.0)
        fleet.state_of(0)
        records = fleet.drain_completions()
        assert len(records) == 1
        assert records[0].dropoff_time == pytest.approx(20.0)
        assert fleet.drain_completions() == []
