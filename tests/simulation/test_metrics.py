"""Tests for the metrics collector and simulation results."""

import pytest

from repro.dispatch.base import DispatchOutcome
from repro.network.oracle import OracleCounters
from repro.simulation.fleet import ServiceRecord
from repro.simulation.metrics import MetricsCollector
from tests.conftest import make_request


def _served(request, worker_id=0, cost=10.0):
    return DispatchOutcome(request=request, served=True, worker_id=worker_id, increased_cost=cost,
                           candidates_considered=3, insertions_evaluated=2)


def _rejected(request, decision=False):
    return DispatchOutcome(request=request, served=False, decision_rejected=decision)


class TestMetricsCollector:
    def test_counts_and_rates(self):
        collector = MetricsCollector("algo", "instance", alpha=1.0)
        collector.record_outcome(_served(make_request(0, 0, 1, penalty=5.0)))
        collector.record_outcome(_rejected(make_request(1, 0, 1, penalty=7.0), decision=True))
        collector.record_dispatch_time(0.2)
        result = collector.finalise(100.0, OracleCounters(distance_queries=42), index_memory_bytes=10)
        assert result.total_requests == 2
        assert result.served_requests == 1
        assert result.rejected_requests == 1
        assert result.decision_rejections == 1
        assert result.served_rate == pytest.approx(0.5)
        assert result.total_penalty == pytest.approx(7.0)
        assert result.unified_cost == pytest.approx(100.0 + 7.0)
        assert result.response_time_seconds == pytest.approx(0.1)
        assert result.distance_queries == 42
        assert result.index_memory_bytes == 10
        assert result.candidates_considered == 3
        assert result.insertions_evaluated == 2

    def test_alpha_weights_travel_cost(self):
        collector = MetricsCollector("algo", "instance", alpha=0.0)
        collector.record_outcome(_rejected(make_request(0, 0, 1, penalty=1.0)))
        result = collector.finalise(1e9, OracleCounters(), index_memory_bytes=0)
        assert result.unified_cost == pytest.approx(1.0)

    def test_completion_metrics(self):
        collector = MetricsCollector("algo", "instance", alpha=1.0)
        request = make_request(0, 0, 1, release=10.0, deadline=100.0)
        record = ServiceRecord(request=request, worker_id=0, pickup_time=30.0, dropoff_time=80.0)
        collector.record_completion(record, direct_distance=25.0)
        result = collector.finalise(0.0, OracleCounters(), index_memory_bytes=0)
        assert result.mean_wait_seconds == pytest.approx(20.0)
        assert result.mean_detour_ratio == pytest.approx(2.0)
        assert result.deadline_violations == 0

    def test_late_delivery_counted(self):
        collector = MetricsCollector("algo", "instance", alpha=1.0)
        request = make_request(0, 0, 1, release=0.0, deadline=50.0)
        record = ServiceRecord(request=request, worker_id=0, pickup_time=10.0, dropoff_time=90.0)
        collector.record_completion(record, direct_distance=10.0)
        result = collector.finalise(0.0, OracleCounters(), index_memory_bytes=0)
        assert result.deadline_violations == 1

    def test_empty_run(self):
        collector = MetricsCollector("algo", "instance", alpha=1.0)
        result = collector.finalise(0.0, OracleCounters(), index_memory_bytes=0)
        assert result.served_rate == 0.0
        assert result.response_time_seconds == 0.0
        assert result.unified_cost == 0.0

    def test_as_row_contains_headline_metrics(self):
        collector = MetricsCollector("algo", "instance", alpha=1.0)
        collector.record_outcome(_served(make_request(0, 0, 1)))
        row = collector.finalise(5.0, OracleCounters(), index_memory_bytes=3).as_row()
        for key in ("algorithm", "unified_cost", "served_rate", "response_time_s"):
            assert key in row
