"""Tests for live network updates flowing through the event engine.

The scenario runtime applies street closures mid-run via
``MatchingService.apply_network_update``; these tests pin the contract at the
engine/facade level: positions snap before the mutation, the oracle is
re-derived, routes are rebuilt (stale stop-completion events are ignored via
the plan-version bump), dispatcher grids are re-bucketed, and serving paths
that cannot absorb mutations refuse them up front.
"""

import pytest

from repro.dispatch.registry import DispatcherSpec
from repro.exceptions import ConfigurationError, DispatchError
from repro.service.facade import MatchingService
from repro.service.spec import PlatformSpec
from repro.workloads.scenarios import ScenarioConfig


@pytest.fixture()
def config():
    return ScenarioConfig(city="small-grid", num_workers=6, num_requests=30,
                          horizon_hours=1.0, seed=5)


def _service(config, dispatcher="pruneGreedyDP", engine="event"):
    spec = PlatformSpec(scenario=config, dispatcher=DispatcherSpec.parse(dispatcher),
                        engine=engine)
    return MatchingService.from_spec(spec)


def _busy_edge(service):
    """An edge on some worker's current route (closing it forces a re-plan)."""
    network = service.instance.network
    for worker_id in sorted(service.fleet.states):
        route = service.fleet.peek_state(worker_id).route
        if route.is_empty:
            continue
        path = service.instance.oracle.path(route.origin, route.stops[0].vertex)
        for u, v in zip(path, path[1:]):
            return network.edge(u, v)
    return None


class TestMidRunClosure:
    @pytest.mark.parametrize("dispatcher", ["pruneGreedyDP", "batch",
                                            "sharded:pruneGreedyDP", "tshare"])
    def test_close_and_reopen_mid_run(self, config, dispatcher):
        service = _service(config, dispatcher)
        requests = service.instance.requests
        midpoint = len(requests) // 2
        for request in requests[:midpoint]:
            service.submit(request)

        edge = _busy_edge(service) or next(iter(service.instance.network.edges()))
        removed = service.close_edge(edge.u, edge.v)
        assert not service.instance.network.has_edge(edge.u, edge.v)

        for request in requests[midpoint:midpoint + 5]:
            service.submit(request)
        service.reopen_edge(removed)
        assert service.instance.network.has_edge(edge.u, edge.v)

        for request in requests[midpoint + 5:]:
            service.submit(request)
        result = service.drain()
        assert result.total_requests == len(requests)
        assert result.served_requests + result.rejected_requests == len(requests)

    def test_cluster_close_and_reopen_mid_run(self, config):
        spec = PlatformSpec(scenario=config,
                            dispatcher=DispatcherSpec.parse("cluster:pruneGreedyDP"))
        with MatchingService.from_spec(spec) as service:
            requests = service.instance.requests
            midpoint = len(requests) // 2
            for request in requests[:midpoint]:
                service.submit(request)

            network = service.instance.network
            edge = _busy_edge(service) or next(iter(network.edges()))
            removed = service.close_edge(edge.u, edge.v)
            assert not network.has_edge(edge.u, edge.v)

            for request in requests[midpoint:midpoint + 5]:
                service.submit(request)
            service.reopen_edge(removed)
            assert network.has_edge(edge.u, edge.v)

            for request in requests[midpoint + 5:]:
                service.submit(request)

            snapshot = service.snapshot()
            assert snapshot.network_updates_applied == 2
            # every shard replica acknowledged both topology rebuilds
            assert snapshot.shard_replica_rebuilds
            assert all(count == 2 for count in snapshot.shard_replica_rebuilds)

            result = service.drain()
            assert result.total_requests == len(requests)
            assert result.served_requests + result.rejected_requests == len(requests)

    def test_closure_forces_rederivation(self, config):
        plain = _service(config).replay()

        service = _service(config)
        requests = service.instance.requests
        for request in requests[:10]:
            service.submit(request)
        # close streets currently being driven: the engine must re-plan
        closed = []
        for _ in range(3):
            edge = _busy_edge(service)
            if edge is None:
                break
            closed.append(service.close_edge(edge.u, edge.v))
        assert closed, "no busy edge found to close"
        for request in requests[10:]:
            service.submit(request)
        disrupted = service.drain()
        assert disrupted.total_requests == plain.total_requests
        # the disrupted run derived different routing work than the plain one
        # (on a uniform grid an equal-cost alternative path may keep the cost
        # itself identical, but the re-planning is observable in the query
        # pattern)
        assert (
            disrupted.total_travel_cost,
            disrupted.distance_queries,
            disrupted.extra.get("path_cache_misses"),
        ) != (
            plain.total_travel_cost,
            plain.distance_queries,
            plain.extra.get("path_cache_misses"),
        )

    def test_grid_rebucketed_after_update(self, config):
        service = _service(config)
        for request in service.instance.requests[:8]:
            service.submit(request)
        edge = next(iter(service.instance.network.edges()))
        service.close_edge(edge.u, edge.v)
        grid = service.dispatcher.grid
        # every fleet position is findable in the rebuilt grid
        assert set(grid.all_members()) == set(service.fleet.states)
        for worker_id in sorted(service.fleet.states):
            state = service.fleet.peek_state(worker_id)
            assert worker_id in grid.members_in_cell(grid.cell_of_vertex(state.position))

    def test_oracle_refreshed(self, config):
        service = _service(config)
        for request in service.instance.requests[:5]:
            service.submit(request)
        edge = next(iter(service.instance.network.edges()))
        service.close_edge(edge.u, edge.v)
        assert service.instance.oracle.distance(edge.u, edge.v) > edge.cost


class TestRefusalPaths:
    def test_legacy_engine_refuses(self, config):
        service = _service(config, engine="legacy")
        edge = next(iter(service.instance.network.edges()))
        with pytest.raises(ConfigurationError, match="legacy"):
            service.close_edge(edge.u, edge.v)

    def test_drained_engine_refuses(self, config):
        service = _service(config)
        service.drain()
        edge = next(iter(service.instance.network.edges()))
        with pytest.raises((ConfigurationError, DispatchError)):
            service.close_edge(edge.u, edge.v)
