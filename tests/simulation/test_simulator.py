"""Tests for the dynamic simulator."""

import pytest

from repro.core.instance import URPSMInstance
from repro.core.objective import ObjectiveConfig, PenaltyPolicy
from repro.dispatch import Batch, DispatcherConfig, GreedyDP, PruneGreedyDP
from repro.exceptions import ConfigurationError
from repro.simulation.simulator import Simulator, run_simulation
from tests.conftest import make_request, make_worker


def _instance(network, oracle, requests, workers=None, alpha=1.0):
    objective = ObjectiveConfig(alpha=alpha, penalty_policy=PenaltyPolicy.FIXED, penalty_value=100.0)
    return URPSMInstance(
        network=network,
        oracle=oracle,
        workers=workers or [make_worker(0, 0, capacity=4)],
        requests=requests,
        objective=objective,
        name="sim-test",
    )


class TestSimulator:
    def test_every_request_gets_an_outcome(self, small_instance):
        result = run_simulation(small_instance, GreedyDP(DispatcherConfig(grid_cell_metres=500.0)))
        assert result.total_requests == len(small_instance.requests)
        assert result.served_requests + result.rejected_requests == result.total_requests

    def test_unified_cost_accounts_for_rejections(self, line_network, line_oracle):
        # single worker, two simultaneous far-apart requests with tight deadlines:
        # at most one can be served
        requests = [
            make_request(0, 1, 2, release=0.0, deadline=40.0, penalty=100.0),
            make_request(1, 5, 4, release=0.0, deadline=40.0, penalty=100.0),
        ]
        instance = _instance(line_network, line_oracle, requests)
        result = run_simulation(instance, GreedyDP(DispatcherConfig(grid_cell_metres=200.0)))
        assert result.rejected_requests >= 1
        assert result.unified_cost == pytest.approx(
            result.total_travel_cost * 1.0 + result.total_penalty
        )

    def test_served_requests_meet_deadlines(self, small_instance):
        result = run_simulation(small_instance, PruneGreedyDP(DispatcherConfig(grid_cell_metres=500.0)))
        assert result.deadline_violations == 0

    def test_travel_cost_zero_when_nothing_served(self, line_network, line_oracle):
        requests = [make_request(0, 5, 0, release=0.0, deadline=1.0, penalty=100.0)]
        instance = _instance(line_network, line_oracle, requests)
        result = run_simulation(instance, GreedyDP(DispatcherConfig(grid_cell_metres=200.0)))
        assert result.served_requests == 0
        assert result.total_travel_cost == pytest.approx(0.0)
        assert result.unified_cost == pytest.approx(100.0)

    def test_invalid_instance_rejected(self, line_network, line_oracle):
        instance = _instance(line_network, line_oracle, [make_request(0, 0, 999)])
        with pytest.raises(ConfigurationError):
            Simulator(instance, GreedyDP())

    def test_oracle_counters_reset_per_run(self, small_instance):
        first = run_simulation(small_instance, GreedyDP(DispatcherConfig(grid_cell_metres=500.0)))
        second = run_simulation(small_instance, GreedyDP(DispatcherConfig(grid_cell_metres=500.0)))
        # counters are per-run, not cumulative across runs
        assert abs(first.distance_queries - second.distance_queries) < max(
            first.distance_queries, 1
        )

    def test_batch_dispatcher_resolves_all_requests(self, small_instance):
        result = run_simulation(
            small_instance, Batch(DispatcherConfig(grid_cell_metres=500.0, batch_interval=6.0))
        )
        assert result.total_requests == len(small_instance.requests)

    def test_response_time_positive(self, small_instance):
        result = run_simulation(small_instance, GreedyDP(DispatcherConfig(grid_cell_metres=500.0)))
        assert result.response_time_seconds > 0.0

    def test_workers_finish_pending_routes(self, line_network, line_oracle):
        requests = [make_request(0, 1, 5, release=0.0, deadline=10_000.0, penalty=100.0)]
        instance = _instance(line_network, line_oracle, requests)
        simulator = Simulator(instance, GreedyDP(DispatcherConfig(grid_cell_metres=200.0)))
        result = simulator.run()
        assert result.served_requests == 1
        # worker travelled 0->1 (pickup) -> 5 (dropoff): 50 seconds
        assert result.total_travel_cost == pytest.approx(50.0)
        assert all(state.is_idle for state in simulator.fleet)
