"""Property-based invariants of full simulation runs.

Whatever (small) random scenario and algorithm are drawn, a simulation run must
preserve the accounting identities of the URPSM model:

* every request gets exactly one outcome (served xor rejected);
* the unified cost decomposes as ``alpha * travel + sum of rejected penalties``;
* no served request misses its deadline;
* travelled cost is non-negative and zero when nothing is served.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dispatch import DispatcherConfig, make_dispatcher
from repro.simulation.simulator import run_simulation
from repro.workloads.scenarios import ScenarioConfig, build_instance, build_network, make_oracle

_BASE = ScenarioConfig(city="small-grid", seed=29)
_NETWORK = build_network(_BASE)
_ORACLE = make_oracle(_NETWORK, _BASE)

_ALGORITHMS = ["pruneGreedyDP", "GreedyDP", "tshare", "batch", "nearest"]

_SETTINGS = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def scenario_runs(draw):
    algorithm = draw(st.sampled_from(_ALGORITHMS))
    config = _BASE.with_overrides(
        num_workers=draw(st.integers(min_value=2, max_value=10)),
        num_requests=draw(st.integers(min_value=5, max_value=40)),
        deadline_minutes=draw(st.sampled_from([5.0, 10.0, 20.0])),
        penalty_factor=draw(st.sampled_from([2.0, 10.0, 30.0])),
        seed=draw(st.integers(min_value=0, max_value=50)),
    )
    return algorithm, config


class TestSimulationInvariants:
    @given(scenario_runs())
    @_SETTINGS
    def test_accounting_identities(self, scenario):
        algorithm, config = scenario
        instance = build_instance(config, network=_NETWORK, oracle=_ORACLE)
        dispatcher = make_dispatcher(
            algorithm, DispatcherConfig(grid_cell_metres=config.grid_km * 1000.0)
        )
        result = run_simulation(instance, dispatcher)

        assert result.total_requests == config.num_requests
        assert result.served_requests + result.rejected_requests == result.total_requests
        assert 0.0 <= result.served_rate <= 1.0
        assert result.total_travel_cost >= -1e-9
        assert result.unified_cost == pytest.approx(
            result.alpha * result.total_travel_cost + result.total_penalty, rel=1e-9, abs=1e-6
        )
        assert result.deadline_violations == 0
        if result.served_requests == 0:
            assert result.total_travel_cost == pytest.approx(0.0, abs=1e-6)
