"""Test package."""
