"""Tests for the typed event protocol and its documented ordering."""

import heapq

from repro.simulation.events import (
    BatchFlush,
    RequestArrival,
    RequestCancellation,
    StopCompletion,
    WorkerOffline,
    WorkerOnline,
)
from tests.conftest import make_request


def _pop_all(events):
    """Push events through a heap exactly like the engine does."""
    heap = []
    for seq, event in enumerate(events):
        heapq.heappush(heap, (event.sort_key(seq), event))
    ordered = []
    while heap:
        ordered.append(heapq.heappop(heap)[1])
    return ordered


class TestEventOrdering:
    def test_time_dominates_priority(self):
        early = WorkerOffline(time=1.0, worker_id=0)
        late = WorkerOnline(time=2.0, worker_id=0)
        assert _pop_all([late, early]) == [early, late]

    def test_equal_timestamp_priority_order(self):
        """At an equal timestamp the documented order is online < stop <
        flush < arrival < cancellation < offline."""
        t = 42.0
        request = make_request(0, 0, 1)
        events = [
            WorkerOffline(time=t, worker_id=0),
            RequestCancellation(time=t, request_id=0),
            RequestArrival(time=t, request=request),
            BatchFlush(time=t),
            StopCompletion(time=t, worker_id=0, plan_version=0),
            WorkerOnline(time=t, worker_id=0),
        ]
        ordered = [type(event) for event in _pop_all(events)]
        assert ordered == [
            WorkerOnline,
            StopCompletion,
            BatchFlush,
            RequestArrival,
            RequestCancellation,
            WorkerOffline,
        ]

    def test_equal_time_and_priority_is_fifo(self):
        """Same (time, priority) resolves in scheduling order: stable replay."""
        requests = [make_request(index, 0, 1) for index in range(5)]
        arrivals = [RequestArrival(time=7.0, request=request) for request in requests]
        ordered = _pop_all(arrivals)
        assert [event.request.id for event in ordered] == [0, 1, 2, 3, 4]

    def test_flush_fires_before_arrival_at_equal_timestamp(self):
        """A batch window expiring exactly at a release time resolves first,
        so the newly released request lands in the next window (the seed loop
        behaved the same way)."""
        request = make_request(0, 0, 1, release=6.0)
        ordered = _pop_all([RequestArrival(time=6.0, request=request), BatchFlush(time=6.0)])
        assert isinstance(ordered[0], BatchFlush)

    def test_events_are_immutable(self):
        event = BatchFlush(time=1.0)
        try:
            event.time = 2.0
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("events must be frozen")
