"""Tests for worker-state advancement and fleet bookkeeping."""

import math

import pytest

from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.exceptions import DispatchError
from repro.simulation.fleet import FleetState, WorkerState
from tests.conftest import make_request, make_worker


def _assign(state: WorkerState, request, oracle, now=0.0):
    """Insert ``request`` into the worker's route with the linear DP operator."""
    operator = LinearDPInsertion()
    result = operator.best_insertion(state.route, request, oracle)
    assert result.feasible
    new_route = state.route.with_insertion(request, result.pickup_index, result.dropoff_index, oracle)
    state.adopt_route(new_route, request=request)
    return result


class TestWorkerState:
    def test_initial_state(self, line_oracle):
        state = WorkerState(make_worker(0, 3), line_oracle)
        assert state.position == 3
        assert state.is_idle
        assert state.travelled_cost == 0.0

    def test_adopt_route_rejects_foreign_worker(self, line_oracle):
        state = WorkerState(make_worker(0, 0), line_oracle)
        other = WorkerState(make_worker(1, 1), line_oracle)
        with pytest.raises(DispatchError, match="assigned to worker"):
            state.adopt_route(other.route)

    def test_duplicate_assignment_rejected(self, line_oracle):
        state = WorkerState(make_worker(0, 0), line_oracle)
        request = make_request(1, 1, 3)
        _assign(state, request, line_oracle)
        with pytest.raises(DispatchError, match="assigned twice"):
            state.adopt_route(state.route, request=request)

    def test_advance_completes_stops_in_order(self, line_oracle):
        state = WorkerState(make_worker(0, 0), line_oracle)
        request = make_request(1, 2, 4, deadline=1000.0)  # pickup at t=20, dropoff at t=40
        _assign(state, request, line_oracle)
        completed = state.advance_to(25.0)
        assert completed == []  # picked up but not delivered yet
        record = state.assigned_requests[1]
        assert record.pickup_time == pytest.approx(20.0)
        completed = state.advance_to(45.0)
        assert len(completed) == 1
        assert completed[0].dropoff_time == pytest.approx(40.0)
        assert state.is_idle

    def test_partial_advance_moves_along_path(self, line_oracle):
        state = WorkerState(make_worker(0, 0), line_oracle)
        request = make_request(1, 4, 5, deadline=1000.0)
        _assign(state, request, line_oracle)
        state.advance_to(25.0)  # 25 seconds towards vertex 4 (10 s per edge)
        assert state.position == 2
        assert state.position_time == pytest.approx(20.0)
        assert state.travelled_cost == pytest.approx(20.0)

    def test_arrival_times_unchanged_by_partial_advance(self, line_oracle):
        state = WorkerState(make_worker(0, 0), line_oracle)
        request = make_request(1, 4, 5, deadline=1000.0)
        _assign(state, request, line_oracle)
        planned_arrival = state.route.arr[1]
        state.advance_to(25.0)
        assert state.route.arr[1] == pytest.approx(planned_arrival)

    def test_idle_worker_clock_advances(self, line_oracle):
        state = WorkerState(make_worker(0, 2), line_oracle)
        state.advance_to(500.0)
        assert state.position == 2
        assert state.position_time == pytest.approx(500.0)
        assert state.travelled_cost == 0.0

    def test_finish_route_completes_everything(self, line_oracle):
        state = WorkerState(make_worker(0, 0), line_oracle)
        _assign(state, make_request(1, 2, 5, deadline=1e6), line_oracle)
        completed = state.finish_route()
        assert len(completed) == 1
        assert state.is_idle
        assert state.travelled_cost == pytest.approx(50.0)

    def test_total_cost_combines_travelled_and_planned(self, line_oracle):
        state = WorkerState(make_worker(0, 0), line_oracle)
        _assign(state, make_request(1, 2, 5, deadline=1e6), line_oracle)
        assert state.total_cost() == pytest.approx(50.0)
        state.advance_to(30.0)
        assert state.total_cost() == pytest.approx(50.0)

    def test_onboard_request_completion(self, line_oracle):
        """A request picked up before a later advance is eventually delivered."""
        state = WorkerState(make_worker(0, 0), line_oracle)
        _assign(state, make_request(1, 1, 5, deadline=1e6), line_oracle)
        state.advance_to(15.0)  # past the pickup at vertex 1
        assert state.route.initial_load() == 1
        completed = state.finish_route()
        assert [record.request.id for record in completed] == [1]
        assert completed[0].on_time


class TestFleetState:
    def test_requires_at_least_one_worker(self, line_oracle):
        with pytest.raises(DispatchError):
            FleetState([], line_oracle)

    def test_unknown_worker_lookup_rejected(self, line_oracle):
        fleet = FleetState([make_worker(0, 0)], line_oracle)
        with pytest.raises(DispatchError, match="unknown worker"):
            fleet.state_of(99)

    def test_advance_all_and_totals(self, line_oracle):
        fleet = FleetState([make_worker(0, 0), make_worker(1, 5)], line_oracle)
        _assign(fleet.state_of(0), make_request(1, 2, 3, deadline=1e6), line_oracle)
        completed = fleet.advance_all(1000.0)
        assert len(completed) == 1
        assert fleet.total_travel_cost() == pytest.approx(30.0)
        assert fleet.positions() == {0: 3, 1: 5}

    def test_finish_all(self, line_oracle):
        fleet = FleetState([make_worker(0, 0)], line_oracle)
        _assign(fleet.state_of(0), make_request(1, 1, 2, deadline=1e6), line_oracle)
        records = fleet.finish_all()
        assert len(records) == 1
        assert not math.isinf(fleet.total_travel_cost())
