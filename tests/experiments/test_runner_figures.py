"""Tests for the experiment runner, figure harness, tables and reporting.

These run at the ``tiny`` scale on the smallest synthetic city so the whole
module stays fast while exercising the full sweep machinery end to end.
"""

import math

import pytest

from repro.dispatch.base import DispatcherConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURES, figure3_workers, figure6_deadline
from repro.experiments.reporting import (
    figure_summary_rows,
    format_figure,
    format_results,
    format_table,
)
from repro.experiments.runner import ScenarioRunner
from repro.experiments.tables import table4_datasets, table5_parameters
from repro.workloads.scenarios import ScenarioConfig


@pytest.fixture(scope="module")
def experiment():
    return ExperimentConfig(
        cities=("small-grid",),
        algorithms=("pruneGreedyDP", "GreedyDP"),
        scale="tiny",
        seed=5,
    )


@pytest.fixture(scope="module")
def runner():
    return ScenarioRunner(DispatcherConfig())


class TestScenarioRunner:
    def test_compare_returns_one_result_per_algorithm(self, runner):
        config = ScenarioConfig(city="small-grid", num_workers=6, num_requests=25, seed=5)
        results = runner.compare(config, ["pruneGreedyDP", "tshare"])
        assert [result.algorithm for result in results] == ["pruneGreedyDP", "tshare"]
        for result in results:
            assert result.total_requests == 25

    def test_network_cache_reused(self, runner):
        config = ScenarioConfig(city="small-grid", num_workers=6, num_requests=10, seed=5)
        assert runner.network_for(config) is runner.network_for(config.with_overrides(num_workers=9))

    def test_sweep_produces_one_point_per_value(self, runner):
        base = ScenarioConfig(city="small-grid", num_workers=6, num_requests=20, seed=5)
        points = runner.sweep("num_workers", [4, 8], base, ["pruneGreedyDP"])
        assert [point.value for point in points] == [4, 8]
        assert all(point.parameter == "num_workers" for point in points)
        assert all(point.result_for("pruneGreedyDP") is not None for point in points)
        assert points[0].result_for("missing") is None


class TestFigures:
    def test_registry_covers_figures_3_to_7(self):
        assert set(FIGURES) == {"figure3", "figure4", "figure5", "figure6", "figure7"}

    def test_figure3_series_shapes(self, experiment, runner):
        figure = figure3_workers(experiment, runner)
        assert figure.parameter == "num_workers"
        assert figure.cities() == ["small-grid"]
        assert set(figure.algorithms()) == {"pruneGreedyDP", "GreedyDP"}
        series = figure.series("small-grid", "pruneGreedyDP", "unified_cost")
        assert len(series) == 5
        assert all(math.isfinite(value) for _, value in series)

    def test_more_workers_do_not_increase_unified_cost(self, experiment, runner):
        figure = figure3_workers(experiment, runner)
        series = figure.series("small-grid", "pruneGreedyDP", "unified_cost")
        values = [value for _, value in series]
        assert values[-1] <= values[0] * 1.05  # small tolerance for tie-breaking noise

    def test_figure6_longer_deadline_serves_more(self, experiment, runner):
        figure = figure6_deadline(experiment, runner)
        served = figure.series("small-grid", "pruneGreedyDP", "served_rate")
        values = [value for _, value in served]
        assert values[-1] >= values[0]


class TestTablesAndReporting:
    def test_table4_rows(self, experiment):
        rows = table4_datasets(experiment)
        assert len(rows) == 1
        assert rows[0]["dataset"] == "small-grid"
        assert rows[0]["vertices"] > 0

    def test_table5_rows_include_all_parameters(self, experiment):
        rows = table5_parameters(experiment)
        names = {row["parameter"] for row in rows}
        assert any("grid size" in name for name in names)
        assert any("deadline" in name for name in names)
        assert any("capacity" in name for name in names)
        assert any("penalty" in name for name in names)
        assert any("workers" in name for name in names)

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_figure_and_results(self, experiment, runner):
        figure = figure3_workers(experiment, runner)
        text = format_figure(figure)
        assert "Unified cost" in text and "Served rate" in text
        point = figure.points[0]
        assert "pruneGreedyDP" in format_results(point.results)
        rows = figure_summary_rows(figure)
        assert len(rows) == len(figure.points) * 2
        assert {"figure", "value", "city"} <= set(rows[0])
