"""Tests for result/figure serialisation (JSON, CSV, Markdown)."""

import json

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.io import (
    figure_from_dict,
    figure_to_dict,
    figure_to_markdown,
    load_figure_json,
    load_results_json,
    result_from_dict,
    result_to_dict,
    save_figure_csv,
    save_figure_json,
    save_results_json,
)
from repro.experiments.runner import SweepPoint
from repro.simulation.metrics import SimulationResult


def _result(algorithm="pruneGreedyDP", unified=123.0, served=40, total=50):
    return SimulationResult(
        algorithm=algorithm,
        instance_name="unit-test",
        alpha=1.0,
        total_requests=total,
        served_requests=served,
        rejected_requests=total - served,
        total_travel_cost=100.0,
        total_penalty=23.0,
        unified_cost=unified,
        total_dispatch_seconds=0.5,
        distance_queries=999,
    )


def _figure():
    figure = FigureResult(figure="figure3", parameter="num_workers")
    for value in (10, 20):
        point = SweepPoint(parameter="num_workers", value=value, city="chengdu-like")
        point.results = [_result("pruneGreedyDP", unified=100.0 / value), _result("tshare", unified=200.0 / value)]
        figure.points.append(point)
    return figure


class TestResultSerialisation:
    def test_round_trip_preserves_fields(self):
        original = _result()
        restored = result_from_dict(result_to_dict(original))
        assert restored.algorithm == original.algorithm
        assert restored.unified_cost == original.unified_cost
        assert restored.served_rate == pytest.approx(original.served_rate)
        assert restored.distance_queries == original.distance_queries

    def test_save_and_load_json(self, tmp_path):
        path = tmp_path / "results.json"
        save_results_json([_result(), _result("tshare")], path)
        restored = load_results_json(path)
        assert [result.algorithm for result in restored] == ["pruneGreedyDP", "tshare"]

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text(json.dumps({"schema_version": 99, "results": []}), encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            load_results_json(path)


class TestFigureSerialisation:
    def test_dict_round_trip(self):
        figure = _figure()
        restored = figure_from_dict(figure_to_dict(figure))
        assert restored.figure == "figure3"
        assert [point.value for point in restored.points] == [10, 20]
        assert restored.series("chengdu-like", "pruneGreedyDP", "unified_cost") == [
            (10, pytest.approx(10.0)),
            (20, pytest.approx(5.0)),
        ]

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "figure.json"
        save_figure_json(_figure(), path)
        restored = load_figure_json(path)
        assert restored.parameter == "num_workers"
        assert len(restored.points) == 2

    def test_csv_export(self, tmp_path):
        path = tmp_path / "figure.csv"
        save_figure_csv(_figure(), path)
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == 1 + 4  # header + 2 points x 2 algorithms
        assert "algorithm" in lines[0]

    def test_markdown_rendering(self):
        text = figure_to_markdown(_figure())
        assert "figure3" in text
        assert "| pruneGreedyDP |" in text
        assert "Unified cost" in text

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            figure_from_dict({"schema_version": 42, "figure": "x", "parameter": "y"})
