"""Test package."""
