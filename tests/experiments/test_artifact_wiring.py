"""Wiring of real-map cities and the artifact store through CLI and runner."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import ScenarioRunner
from repro.workloads.scenarios import ScenarioConfig, build_network, make_oracle


@pytest.fixture()
def geojson_extract(tmp_path):
    path = tmp_path / "toytown.geojson"
    features = []
    for i in range(6):
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    "coordinates": [[i * 100.0, 0.0], [(i + 1) * 100.0, 0.0]],
                },
                "properties": {"highway": "residential"},
            }
        )
    features.append(
        {
            "type": "Feature",
            "geometry": {
                "type": "LineString",
                "coordinates": [[200.0, 0.0], [200.0, 150.0]],
            },
            "properties": {"highway": "primary"},
        }
    )
    path.write_text(
        json.dumps({"type": "FeatureCollection", "features": features}),
        encoding="utf-8",
    )
    return path


class TestCityNameValidation:
    def test_registry_city_accepted(self):
        args = build_parser().parse_args(["simulate", "--city", "riverton"])
        assert args.city == "riverton"

    def test_file_city_accepted(self):
        args = build_parser().parse_args(["simulate", "--city", "file:/tmp/x.geojson"])
        assert args.city == "file:/tmp/x.geojson"

    def test_unknown_city_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--city", "atlantis"])

    def test_empty_file_city_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--city", "file:"])


class TestIngestCommand:
    def test_ingest_prints_report_and_hash(self, geojson_extract, capsys):
        exit_code = main(["ingest", str(geojson_extract), "--projection", "planar"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "network 'toytown'" in out
        assert "content hash:" in out
        assert "node snapping:" in out

    def test_ingest_writes_network_json(self, geojson_extract, tmp_path, capsys):
        output = tmp_path / "toytown.json.gz"
        exit_code = main(
            ["ingest", str(geojson_extract), "--projection", "planar",
             "--output", str(output)]
        )
        assert exit_code == 0
        assert output.exists()
        from repro.network.io import load_network

        network = load_network(output)
        assert network.name == "toytown"
        assert network.num_edges == 7

    def test_ingest_error_is_reported_not_raised(self, tmp_path, capsys):
        exit_code = main(["ingest", str(tmp_path / "missing.geojson")])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err


class TestPreprocessCommand:
    def test_build_then_load(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        argv = ["preprocess", "--city", "small-grid", "--seed", "3",
                "--artifact-dir", str(store_dir), "--backends", "ch"]
        assert main(argv) == 0
        assert "ch: built and saved" in capsys.readouterr().out
        assert main(argv) == 0
        assert "ch: loaded from store" in capsys.readouterr().out

    def test_list_entries(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["preprocess", "--city", "small-grid", "--seed", "3",
                     "--artifact-dir", str(store_dir), "--list"]) == 0
        assert "is empty" in capsys.readouterr().out
        main(["preprocess", "--city", "small-grid", "--seed", "3",
              "--artifact-dir", str(store_dir), "--backends", "ch"])
        capsys.readouterr()
        assert main(["preprocess", "--city", "small-grid", "--seed", "3",
                     "--artifact-dir", str(store_dir), "--list"]) == 0
        out = capsys.readouterr().out
        assert "small-grid" in out
        assert "ch: built in" in out

    def test_file_city_preprocess(self, geojson_extract, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["preprocess", "--city", f"file:{geojson_extract}",
                     "--artifact-dir", str(store_dir), "--backends", "apsp"]) == 0
        assert "apsp: built and saved" in capsys.readouterr().out


class TestScenarioArtifactWiring:
    def test_make_oracle_attaches_store(self, tmp_path):
        config = ScenarioConfig(
            city="small-grid", seed=3, oracle_backend="ch",
            oracle_artifact_dir=str(tmp_path / "store"),
        )
        network = build_network(config)
        first = make_oracle(network, config)
        assert first.artifact_store is not None
        assert not first.artifact_loaded
        second = make_oracle(network, config)
        assert second.artifact_loaded

    def test_simulate_with_artifact_dir(self, tmp_path, capsys):
        import re

        def mask_timings(text):
            return re.sub(r"\d+\.\d+e[+-]\d+", "<t>", text)

        argv = ["simulate", "--city", "small-grid", "--workers", "6",
                "--requests", "15", "--algorithm", "nearest", "--seed", "3",
                "--oracle-backend", "ch", "--artifact-dir", str(tmp_path / "store")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0  # second run loads the artifact: same metrics,
        second = capsys.readouterr().out  # only the runtime column may move
        assert mask_timings(second) == mask_timings(first)


class TestRunnerMemoKey:
    def test_distinct_stores_build_distinct_oracles(self, tmp_path):
        runner = ScenarioRunner()
        base = dict(city="small-grid", seed=3, oracle_backend="ch")
        a = runner.oracle_for(
            ScenarioConfig(**base, oracle_artifact_dir=str(tmp_path / "a"))
        )
        b = runner.oracle_for(
            ScenarioConfig(**base, oracle_artifact_dir=str(tmp_path / "b"))
        )
        assert a is not b

    def test_same_store_two_spellings_share_one_oracle(self, tmp_path):
        runner = ScenarioRunner()
        base = dict(city="small-grid", seed=3, oracle_backend="ch")
        store = tmp_path / "store"
        a = runner.oracle_for(
            ScenarioConfig(**base, oracle_artifact_dir=str(store))
        )
        b = runner.oracle_for(
            ScenarioConfig(**base, oracle_artifact_dir=str(tmp_path / "." / "store"))
        )
        assert a is b

    def test_no_store_still_memoises(self):
        runner = ScenarioRunner()
        config = ScenarioConfig(city="small-grid", seed=3, oracle_backend="dijkstra")
        assert runner.oracle_for(config) is runner.oracle_for(config)
