"""Parallel sweep runner: determinism, seed derivation, city memoization."""

import pytest

from repro.experiments.parallel import (
    ParallelSweepRunner,
    SweepTask,
    metric_fingerprint,
    run_sweep_task,
)
from repro.experiments.runner import ScenarioRunner
from repro.utils.rng import derive_spawned_seed, spawn_key
from repro.workloads.scenarios import ScenarioConfig

_BASE = ScenarioConfig(city="small-grid", num_workers=6, num_requests=20, seed=5)


class TestSpawnKeys:
    def test_spawn_key_is_stable_across_calls(self):
        assert spawn_key("sweep", "num_workers", "10", 0) == spawn_key(
            "sweep", "num_workers", "10", 0
        )

    def test_spawn_key_mixes_ints_and_strings(self):
        key = spawn_key("a", 7, "b")
        assert len(key) == 3 and all(isinstance(part, int) for part in key)

    def test_derived_seeds_differ_per_label(self):
        seeds = {
            derive_spawned_seed(5, "sweep", "num_workers", str(value), replicate)
            for value in (10, 20)
            for replicate in (0, 1)
        }
        assert len(seeds) == 4

    def test_derived_seed_deterministic(self):
        assert derive_spawned_seed(5, "x", 1) == derive_spawned_seed(5, "x", 1)
        assert derive_spawned_seed(5, "x", 1) != derive_spawned_seed(6, "x", 1)


class TestPlanning:
    def test_plan_expands_the_full_grid(self):
        runner = ParallelSweepRunner(jobs=1)
        tasks = runner.plan("num_workers", [4, 6], _BASE, ["nearest", "GreedyDP"],
                            replicates=2)
        assert len(tasks) == 2 * 2 * 2
        assert {task.value for task in tasks} == {4, 6}

    def test_points_pin_the_city_seed(self):
        runner = ParallelSweepRunner(jobs=1)
        tasks = runner.plan("num_workers", [4, 6], _BASE, ["nearest"], replicates=2)
        for task in tasks:
            assert task.config.city_seed == _BASE.seed
            assert task.config.effective_city_seed == _BASE.seed
        # workload seeds all differ across (value, replicate) points
        assert len({task.config.seed for task in tasks}) == 4

    def test_algorithms_share_the_point_seed(self):
        runner = ParallelSweepRunner(jobs=1)
        tasks = runner.plan("num_workers", [4], _BASE, ["nearest", "GreedyDP"])
        assert tasks[0].config.seed == tasks[1].config.seed

    def test_planning_is_deterministic(self):
        runner = ParallelSweepRunner(jobs=1)
        first = runner.plan("num_workers", [4, 6], _BASE, ["nearest"], replicates=2)
        second = runner.plan("num_workers", [4, 6], _BASE, ["nearest"], replicates=2)
        assert [task.config.seed for task in first] == [task.config.seed for task in second]

    def test_sweeping_the_seed_itself_is_not_clobbered(self):
        runner = ParallelSweepRunner(jobs=1)
        tasks = runner.plan("seed", [101, 202], _BASE, ["nearest"])
        assert [task.config.seed for task in tasks] == [101, 202]
        assert all(task.config.city_seed is None for task in tasks)

    def test_sweeping_city_seed_is_not_clobbered(self):
        runner = ParallelSweepRunner(jobs=1)
        tasks = runner.plan("city_seed", [7, 8], _BASE, ["nearest"])
        assert [task.config.city_seed for task in tasks] == [7, 8]
        assert all(task.config.seed == _BASE.seed for task in tasks)

    def test_seed_sweep_rejects_replicates(self):
        runner = ParallelSweepRunner(jobs=1)
        with pytest.raises(ValueError):
            runner.plan("seed", [1, 2], _BASE, ["nearest"], replicates=2)


class TestSerialParallelEquivalence:
    @pytest.fixture(scope="class")
    def tasks(self):
        return ParallelSweepRunner(jobs=1).plan(
            "num_workers", [4, 6], _BASE, ["nearest"], replicates=1
        )

    def test_parallel_metrics_identical_to_serial(self, tasks):
        serial = ParallelSweepRunner(jobs=1).run(tasks)
        parallel = ParallelSweepRunner(jobs=2).run(tasks)
        assert [metric_fingerprint(r) for r in serial] == [
            metric_fingerprint(r) for r in parallel
        ]

    def test_task_outcome_is_a_pure_function_of_the_task(self, tasks):
        first = run_sweep_task(tasks[0])
        second = run_sweep_task(tasks[0])
        assert metric_fingerprint(first) == metric_fingerprint(second)

    def test_sweep_groups_points_in_order(self):
        points = ParallelSweepRunner(jobs=1).sweep(
            "num_workers", [4, 6], _BASE, ["nearest"], replicates=1
        )
        assert [point.value for point in points] == [4, 6]
        assert all(len(point.results) == 1 for point in points)

    def test_replicates_are_labelled_on_the_points(self):
        points = ParallelSweepRunner(jobs=1).sweep(
            "num_workers", [4], _BASE, ["nearest"], replicates=3
        )
        assert [(point.value, point.replicate) for point in points] == [
            (4, 0), (4, 1), (4, 2)
        ]

    def test_cache_statistics_independent_of_task_order(self):
        # the memoized oracle's LRU caches are cleared per task, so hit rates
        # cannot depend on which tasks shared the process earlier
        runner = ParallelSweepRunner(jobs=1)
        tasks = runner.plan("num_workers", [4, 6], _BASE, ["nearest"])
        forward = [run_sweep_task(task) for task in tasks]
        backward = [run_sweep_task(task) for task in reversed(tasks)][::-1]
        for one, other in zip(forward, backward):
            assert one.extra.get("distance_cache_hit_rate") == pytest.approx(
                other.extra.get("distance_cache_hit_rate")
            )

    def test_sharded_sweep_runs_in_parallel(self):
        points = ParallelSweepRunner(jobs=2).sweep(
            "num_workers", [4, 6], _BASE, ["sharded:pruneGreedyDP"], replicates=1
        )
        for point in points:
            assert point.results[0].extra["sharding_shards"] == 1.0


class TestCityMemoization:
    """Satellite: one network/oracle build per distinct city across a sweep."""

    def test_scenario_runner_builds_each_city_once(self):
        runner = ScenarioRunner()
        runner.sweep("num_workers", [4, 6, 8], _BASE, ["nearest"])
        assert sum(runner.network_builds.values()) == 1
        assert sum(runner.oracle_builds.values()) == 1

    def test_one_build_per_distinct_city(self):
        runner = ScenarioRunner()
        for city in ("small-grid", "random", "small-grid"):
            runner.compare(_BASE.with_overrides(city=city, num_workers=4, num_requests=5),
                           ["nearest"])
        assert sum(runner.network_builds.values()) == 2
        assert len(runner.network_builds) == 2

    def test_replicate_seeds_share_the_city_build(self):
        """Pinning city_seed keeps the cache hot while workload seeds vary."""
        runner = ScenarioRunner()
        tasks = ParallelSweepRunner(jobs=1).plan(
            "num_workers", [4, 6], _BASE, ["nearest"], replicates=3
        )
        for task in tasks:
            runner.compare(task.config, [task.algorithm])
        assert sum(runner.network_builds.values()) == 1

    def test_distinct_city_seeds_rebuild(self):
        runner = ScenarioRunner()
        runner.compare(_BASE.with_overrides(num_workers=4, num_requests=5), ["nearest"])
        runner.compare(
            _BASE.with_overrides(num_workers=4, num_requests=5, seed=99), ["nearest"]
        )
        assert sum(runner.network_builds.values()) == 2


class TestPlatformThreading:
    def test_platform_collect_completions_reaches_the_workers(self):
        from repro.service.spec import PlatformSpec

        runner = ParallelSweepRunner(
            jobs=1, platform=PlatformSpec(collect_completions=False)
        )
        tasks = runner.plan("num_workers", [4], _BASE, ["nearest"])
        assert all(not task.collect_completions for task in tasks)
        (result,) = runner.run(tasks)
        # completions were not collected: no waits / detours were recorded
        assert result.mean_wait_seconds == 0.0
        assert result.mean_detour_ratio == 0.0

    def test_platform_sharded_flag_reaches_the_workers(self):
        from repro.dispatch.registry import DispatcherSpec
        from repro.service.spec import PlatformSpec

        runner = ParallelSweepRunner(
            jobs=1,
            platform=PlatformSpec(
                dispatcher=DispatcherSpec(sharded=True, num_shards=1)
            ),
        )
        tasks = runner.plan("num_workers", [4], _BASE, ["nearest"])
        assert all(task.sharded for task in tasks)
        (result,) = runner.run(tasks)
        # the exactness wrapper ran: sharding counters are reported
        assert result.algorithm == "sharded:nearest"
        assert result.extra["sharding_shards"] == 1.0
