"""Tests for the ASCII series chart renderer."""

from repro.experiments.reporting import render_series_chart


class TestRenderSeriesChart:
    def test_renders_one_row_per_point(self):
        chart = render_series_chart(
            {"pruneGreedyDP": [(10, 5.0), (20, 2.5)], "tshare": [(10, 10.0)]},
            width=20,
            title="unified cost",
        )
        lines = chart.splitlines()
        assert lines[0] == "unified cost"
        assert len(lines) == 4
        assert any("pruneGreedyDP @ 10" in line for line in lines)

    def test_bars_scale_to_maximum(self):
        chart = render_series_chart({"a": [(1, 10.0)], "b": [(1, 5.0)]}, width=10)
        lines = chart.splitlines()
        bar_a = lines[0].split("|")[1].count("#")
        bar_b = lines[1].split("|")[1].count("#")
        assert bar_a == 10
        assert bar_b == 5

    def test_empty_series(self):
        assert render_series_chart({}) == "(no data)"

    def test_all_zero_values(self):
        chart = render_series_chart({"a": [(1, 0.0), (2, 0.0)]}, width=10)
        assert "#" not in chart

    def test_labels_aligned(self):
        chart = render_series_chart({"long-algorithm-name": [(1, 1.0)], "x": [(1, 1.0)]})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")
