"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.algorithm == "pruneGreedyDP"
        assert args.city == "chengdu-like"

    def test_figure_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "figure99"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--algorithm", "magic"])

    def test_sharding_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.shards == 0
        assert args.shard_strategy == "grid"
        assert args.escalate_k == 2

    def test_sweep_requires_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--parameter", "num_workers"])

    def test_sweep_rejects_unknown_parameter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--parameter", "magic", "--values", "1"])


class TestCommands:
    def test_simulate_runs(self, capsys):
        exit_code = main([
            "simulate", "--city", "small-grid", "--workers", "6", "--requests", "20",
            "--algorithm", "GreedyDP", "--seed", "3",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "GreedyDP" in captured
        assert "unified_cost" in captured

    def test_compare_runs(self, capsys):
        exit_code = main([
            "compare", "--city", "small-grid", "--workers", "6", "--requests", "15",
            "--algorithms", "pruneGreedyDP", "tshare", "--seed", "3",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "pruneGreedyDP" in captured and "tshare" in captured

    def test_simulate_sharded(self, capsys):
        exit_code = main([
            "simulate", "--city", "small-grid", "--workers", "8", "--requests", "20",
            "--algorithm", "pruneGreedyDP", "--shards", "4", "--seed", "3",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "sharded:pruneGreedyDP" in captured
        assert "sharding_local_hits" in captured

    def test_sweep_runs_and_writes_json(self, capsys, tmp_path):
        output = tmp_path / "sweep.json"
        exit_code = main([
            "sweep", "--city", "small-grid", "--requests", "10", "--seed", "3",
            "--parameter", "num_workers", "--values", "4", "6",
            "--algorithms", "nearest", "--jobs", "1", "--output", str(output),
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "num_workers = 4" in captured and "num_workers = 6" in captured
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert len(payload) == 2
        assert {row["value"] for row in payload} == {4, 6}

    def test_datasets_prints_tables(self, capsys):
        exit_code = main(["datasets", "--scale", "tiny"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 4" in captured and "Table 5" in captured

    def test_figure_with_json_output(self, capsys, tmp_path):
        output = tmp_path / "fig3.json"
        exit_code = main([
            "figure", "figure3", "--scale", "tiny", "--cities", "small-grid",
            "--algorithms", "pruneGreedyDP", "--output", str(output),
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "figure3" in captured
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["figure"] == "figure3"
        assert len(payload["points"]) == 5

    def test_figure_with_markdown_output(self, capsys, tmp_path):
        output = tmp_path / "fig3.md"
        exit_code = main([
            "figure", "figure3", "--scale", "tiny", "--cities", "small-grid",
            "--algorithms", "GreedyDP", "--output", str(output),
        ])
        capsys.readouterr()
        assert exit_code == 0
        assert "GreedyDP" in output.read_text(encoding="utf-8")
