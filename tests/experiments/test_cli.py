"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.algorithm == "pruneGreedyDP"
        assert args.city == "chengdu-like"

    def test_figure_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "figure99"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--algorithm", "magic"])

    def test_sharding_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.shards == 0
        assert args.shard_strategy == "grid"
        assert args.escalate_k == 2

    def test_sweep_requires_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--parameter", "num_workers"])

    def test_sweep_rejects_unknown_parameter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--parameter", "magic", "--values", "1"])


class TestCommands:
    def test_simulate_runs(self, capsys):
        exit_code = main([
            "simulate", "--city", "small-grid", "--workers", "6", "--requests", "20",
            "--algorithm", "GreedyDP", "--seed", "3",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "GreedyDP" in captured
        assert "unified_cost" in captured

    def test_compare_runs(self, capsys):
        exit_code = main([
            "compare", "--city", "small-grid", "--workers", "6", "--requests", "15",
            "--algorithms", "pruneGreedyDP", "tshare", "--seed", "3",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "pruneGreedyDP" in captured and "tshare" in captured

    def test_simulate_sharded(self, capsys):
        exit_code = main([
            "simulate", "--city", "small-grid", "--workers", "8", "--requests", "20",
            "--algorithm", "pruneGreedyDP", "--shards", "4", "--seed", "3",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "sharded:pruneGreedyDP" in captured
        assert "sharding_local_hits" in captured

    def test_sweep_runs_and_writes_json(self, capsys, tmp_path):
        output = tmp_path / "sweep.json"
        exit_code = main([
            "sweep", "--city", "small-grid", "--requests", "10", "--seed", "3",
            "--parameter", "num_workers", "--values", "4", "6",
            "--algorithms", "nearest", "--jobs", "1", "--output", str(output),
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "num_workers = 4" in captured and "num_workers = 6" in captured
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert len(payload) == 2
        assert {row["value"] for row in payload} == {4, 6}

    def test_datasets_prints_tables(self, capsys):
        exit_code = main(["datasets", "--scale", "tiny"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 4" in captured and "Table 5" in captured

    def test_figure_with_json_output(self, capsys, tmp_path):
        output = tmp_path / "fig3.json"
        exit_code = main([
            "figure", "figure3", "--scale", "tiny", "--cities", "small-grid",
            "--algorithms", "pruneGreedyDP", "--output", str(output),
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "figure3" in captured
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["figure"] == "figure3"
        assert len(payload["points"]) == 5

    def test_figure_with_markdown_output(self, capsys, tmp_path):
        output = tmp_path / "fig3.md"
        exit_code = main([
            "figure", "figure3", "--scale", "tiny", "--cities", "small-grid",
            "--algorithms", "GreedyDP", "--output", str(output),
        ])
        capsys.readouterr()
        assert exit_code == 0
        assert "GreedyDP" in output.read_text(encoding="utf-8")


class TestOnlineCommands:
    def test_algorithms_lists_the_registry(self, capsys):
        exit_code = main(["algorithms"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "pruneGreedyDP" in captured and "tshare" in captured
        assert "sharded:<name>" in captured

    def test_unknown_algorithm_error_carries_suggestions(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--algorithm", "pruneGreedy"])
        assert excinfo.value.code == 2
        captured = capsys.readouterr().err
        assert "did you mean" in captured
        assert "pruneGreedyDP" in captured
        assert "repro algorithms" in captured

    def test_sharded_algorithm_names_accepted(self):
        args = build_parser().parse_args(["simulate", "--algorithm", "sharded:tshare"])
        assert args.algorithm == "sharded:tshare"

    def test_serve_replay_streams_decisions(self, capsys):
        exit_code = main([
            "serve-replay", "--city", "small-grid", "--workers", "6",
            "--requests", "8", "--algorithm", "batch", "--seed", "3",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "deferred to batch window" in captured
        assert "-> worker" in captured
        assert "session closed" in captured
        assert "unified_cost" in captured

    def test_serve_replay_quiet_and_limited(self, capsys):
        exit_code = main([
            "serve-replay", "--city", "small-grid", "--workers", "6",
            "--requests", "20", "--max-requests", "5", "--seed", "3", "--quiet",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "serving 5 requests" in captured
        assert "-> worker" not in captured

    def test_serve_replay_from_spec_file(self, capsys, tmp_path):
        spec_path = tmp_path / "platform.json"
        spec_path.write_text(json.dumps({
            "scenario": {"city": "small-grid", "num_workers": 6,
                         "num_requests": 8, "seed": 3},
            "dispatcher": {"algorithm": "nearest"},
            "engine": "event",
        }), encoding="utf-8")
        exit_code = main(["serve-replay", "--spec", str(spec_path)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "nearest" in captured and "session closed" in captured

    def test_simulate_from_spec_file_matches_flags(self, capsys, tmp_path):
        spec_path = tmp_path / "platform.json"
        spec_path.write_text(json.dumps({
            "scenario": {"city": "small-grid", "num_workers": 6,
                         "num_requests": 20, "seed": 3},
            "dispatcher": {"algorithm": "GreedyDP"},
        }), encoding="utf-8")
        assert main(["simulate", "--spec", str(spec_path)]) == 0
        from_spec = capsys.readouterr().out
        assert main([
            "simulate", "--city", "small-grid", "--workers", "6", "--requests", "20",
            "--algorithm", "GreedyDP", "--seed", "3",
        ]) == 0
        from_flags = capsys.readouterr().out
        # identical deterministic columns (wall-clock response time may differ)
        def deterministic(output: str) -> list[str]:
            rows = [line.split() for line in output.splitlines() if line.strip()]
            return [" ".join(row[:4] + row[5:]) for row in rows]

        assert "GreedyDP" in from_spec
        assert deterministic(from_spec) == deterministic(from_flags)
