"""Tests for the experiment configuration and scale presets."""

import pytest

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_ALGORITHMS,
    PAPER_DEADLINE_MINUTES,
    PAPER_GRID_KM,
    PAPER_PENALTY_FACTORS,
    PAPER_WORKER_CAPACITY,
    SCALES,
)


class TestPaperGrid:
    def test_paper_sweeps_match_table5(self):
        assert PAPER_GRID_KM == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert PAPER_DEADLINE_MINUTES == [5.0, 10.0, 15.0, 20.0, 25.0]
        assert PAPER_WORKER_CAPACITY == [3, 4, 6, 10, 20]
        assert PAPER_PENALTY_FACTORS["chengdu-like"] == [2.0, 5.0, 10.0, 20.0, 30.0]
        assert PAPER_PENALTY_FACTORS["nyc-like"] == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_all_five_algorithms_compared(self):
        assert set(PAPER_ALGORITHMS) == {"tshare", "kinetic", "pruneGreedyDP", "batch", "GreedyDP"}


class TestExperimentConfig:
    def test_base_scenario_uses_table5_defaults(self):
        experiment = ExperimentConfig(scale="tiny")
        scenario = experiment.base_scenario("chengdu-like")
        assert scenario.grid_km == 2.0
        assert scenario.deadline_minutes == 10.0
        assert scenario.worker_capacity == 4
        assert scenario.penalty_factor == 10.0
        assert scenario.alpha == 1.0

    def test_scales_define_every_city(self):
        for preset in SCALES.values():
            for city in ("chengdu-like", "nyc-like"):
                assert city in preset.requests
                assert len(preset.worker_sweep(city)) == 5
                assert city in preset.default_workers

    def test_nyc_scaled_larger_than_chengdu(self):
        preset = SCALES["small"]
        assert preset.requests["nyc-like"] > preset.requests["chengdu-like"]
        assert preset.default_workers["nyc-like"] > preset.default_workers["chengdu-like"]

    def test_sweep_accessors(self):
        experiment = ExperimentConfig(scale="tiny")
        assert len(experiment.worker_sweep("nyc-like")) == 5
        assert experiment.capacity_sweep() == PAPER_WORKER_CAPACITY
        assert experiment.grid_sweep() == PAPER_GRID_KM
        assert experiment.deadline_sweep() == PAPER_DEADLINE_MINUTES
        assert experiment.penalty_sweep("nyc-like") == PAPER_PENALTY_FACTORS["nyc-like"]

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            ExperimentConfig(scale="galactic").preset()
