"""Exception hierarchy for the URPSM reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class RoadNetworkError(ReproError):
    """Raised for malformed road networks (missing vertices, negative costs...)."""


class DisconnectedError(RoadNetworkError):
    """Raised when a shortest-path query targets an unreachable vertex."""


class InfeasibleRouteError(ReproError):
    """Raised when a route violates precedence, deadline or capacity constraints."""


class DispatchError(ReproError):
    """Raised for invalid dispatcher usage (e.g. unknown worker, duplicate request)."""


class ConfigurationError(ReproError):
    """Raised for invalid scenario or experiment configuration."""


class UnsupportedNetworkUpdateError(ConfigurationError):
    """Raised when a live network mutation reaches a path that cannot apply it.

    The cluster front door raises this when topology changes arrive outside
    the replica-sync ``NetworkUpdateCommand`` flow — worker processes hold
    pickled network copies, so mutating the authoritative network without
    broadcasting the matching update would silently desynchronise replicas.
    """


class IngestError(ReproError):
    """Raised for malformed real-map input (GeoJSON / CSV edge lists)."""


class ArtifactError(ReproError):
    """Raised for invalid preprocessing-artifact store contents."""
