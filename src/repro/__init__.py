"""repro — reproduction of *A Unified Approach to Route Planning for Shared Mobility*.

Tong, Zeng, Zhou, Chen, Ye, Xu — PVLDB 11(11), 2018.

The package provides:

* the URPSM problem model (workers, requests, routes, unified objective);
* the paper's linear DP insertion plus the basic and naive-DP references;
* the two-phase ``pruneGreedyDP`` solution and the evaluation baselines
  (``GreedyDP``, ``tshare``, ``kinetic``, ``batch``);
* a road-network substrate (graph, shortest paths, hub labels, grid indexes);
* a dynamic simulator, synthetic NYC/Chengdu-like workloads, and an experiment
  harness reproducing every table and figure of the paper's evaluation.

Quickstart (online API)::

    from repro import MatchingService, PlatformSpec

    spec = (PlatformSpec.builder()
            .city("chengdu-like")
            .workload(num_workers=50, num_requests=300)
            .dispatcher("pruneGreedyDP")
            .build())
    service = MatchingService.from_spec(spec)
    for request in service.instance.requests:
        decision = service.submit(request)   # typed AssignmentDecision
    result = service.drain()
    print(result.unified_cost, result.served_rate)
"""

from repro.core import (
    BasicInsertion,
    InsertionResult,
    LinearDPInsertion,
    NaiveDPInsertion,
    ObjectiveConfig,
    PenaltyPolicy,
    Request,
    Route,
    Stop,
    StopKind,
    URPSMInstance,
    Worker,
    empty_route,
    euclidean_insertion_lower_bound,
    max_revenue_objective,
    max_served_requests_objective,
    min_total_distance_objective,
    paper_default_objective,
    unified_cost,
)
from repro.dispatch import (
    ALGORITHMS,
    Batch,
    Dispatcher,
    DispatcherConfig,
    DispatcherSpec,
    DispatchOutcome,
    GreedyDP,
    Kinetic,
    NearestWorker,
    PruneGreedyDP,
    TShare,
    list_dispatchers,
    make_dispatcher,
)
from repro.network import (
    DistanceOracle,
    RoadNetwork,
    grid_city,
    random_geometric_city,
    ring_radial_city,
)
from repro.service import (
    AssignmentDecision,
    CancellationOutcome,
    DecisionStatus,
    MatchingService,
    PlatformSpec,
    RejectionReason,
    ServiceSnapshot,
    replay_workload,
)
from repro.simulation import SimulationResult, Simulator, run_simulation
from repro.workloads import ScenarioConfig, build_instance, paper_default_scenario

__version__ = "1.0.0"

__all__ = [
    "BasicInsertion",
    "InsertionResult",
    "LinearDPInsertion",
    "NaiveDPInsertion",
    "ObjectiveConfig",
    "PenaltyPolicy",
    "Request",
    "Route",
    "Stop",
    "StopKind",
    "URPSMInstance",
    "Worker",
    "empty_route",
    "euclidean_insertion_lower_bound",
    "max_revenue_objective",
    "max_served_requests_objective",
    "min_total_distance_objective",
    "paper_default_objective",
    "unified_cost",
    "ALGORITHMS",
    "Batch",
    "Dispatcher",
    "DispatcherConfig",
    "DispatcherSpec",
    "DispatchOutcome",
    "list_dispatchers",
    "GreedyDP",
    "Kinetic",
    "NearestWorker",
    "PruneGreedyDP",
    "TShare",
    "make_dispatcher",
    "DistanceOracle",
    "RoadNetwork",
    "grid_city",
    "random_geometric_city",
    "ring_radial_city",
    "AssignmentDecision",
    "CancellationOutcome",
    "DecisionStatus",
    "MatchingService",
    "PlatformSpec",
    "RejectionReason",
    "ServiceSnapshot",
    "replay_workload",
    "SimulationResult",
    "Simulator",
    "run_simulation",
    "ScenarioConfig",
    "build_instance",
    "paper_default_scenario",
    "__version__",
]
