"""Metrics collected during a simulation run.

The paper evaluates every algorithm with three primary metrics (Section 6.1):

* **unified cost** — ``alpha * sum_w D(S_w) + sum_{r rejected} p_r``;
* **served rate** — ``|R+| / |R|``;
* **response time** — average wall-clock time to process one request.

Secondary metrics reported in the text and reproduced here: the number of
shortest-distance queries (to quantify the savings of the Lemma 8 pruning),
the memory footprint of the grid index, and per-request work counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.objective import unified_cost
from repro.core.types import Request
from repro.dispatch.base import DispatchOutcome
from repro.network.oracle import OracleCounters
from repro.simulation.fleet import ServiceRecord


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulation run."""

    algorithm: str
    instance_name: str
    alpha: float

    total_requests: int = 0
    served_requests: int = 0
    rejected_requests: int = 0
    decision_rejections: int = 0
    cancelled_requests: int = 0
    """Requests withdrawn by the rider (event-kernel dynamics); they count in
    ``total_requests`` but neither as served nor as rejected, and incur no
    penalty."""

    total_travel_cost: float = 0.0
    total_penalty: float = 0.0
    unified_cost: float = 0.0

    total_dispatch_seconds: float = 0.0
    distance_queries: int = 0
    #: lower-bound probes actually issued; the scalar and batched decision
    #: phases probe in different patterns, so this count (unlike
    #: ``distance_queries``) depends on the ``vectorized`` flag.
    lower_bound_queries: int = 0
    candidates_considered: int = 0
    insertions_evaluated: int = 0

    index_memory_bytes: int = 0
    deadline_violations: int = 0

    mean_wait_seconds: float = 0.0
    mean_detour_ratio: float = 0.0

    #: dispatcher/oracle-reported extras; mostly floats, plus string markers
    #: such as ``oracle_backend`` and a bypassed cache's
    #: ``distance_cache_hit_rate = "bypassed (<backend>)"``.
    extra: dict[str, float | str] = field(default_factory=dict)

    @property
    def served_rate(self) -> float:
        """Fraction of requests served."""
        if self.total_requests == 0:
            return 0.0
        return self.served_requests / self.total_requests

    @property
    def response_time_seconds(self) -> float:
        """Average wall-clock time to process one request."""
        if self.total_requests == 0:
            return 0.0
        return self.total_dispatch_seconds / self.total_requests

    def as_row(self) -> dict[str, float | str]:
        """Flat representation for tabular reports."""
        row: dict[str, float | str] = {
            "algorithm": self.algorithm,
            "instance": self.instance_name,
            "unified_cost": self.unified_cost,
            "served_rate": self.served_rate,
            "response_time_s": self.response_time_seconds,
            "served": self.served_requests,
            "rejected": self.rejected_requests,
            "travel_cost": self.total_travel_cost,
            "penalty": self.total_penalty,
            "distance_queries": self.distance_queries,
            "index_memory_bytes": self.index_memory_bytes,
            "mean_wait_s": self.mean_wait_seconds,
            "mean_detour_ratio": self.mean_detour_ratio,
            "deadline_violations": self.deadline_violations,
        }
        for key in ("distance_cache_hit_rate", "path_cache_hit_rate"):
            if key in self.extra:
                row[key] = self.extra[key]
        # sharded runs report routing counters (local hits, escalations, ...)
        for key in sorted(self.extra):
            if key.startswith("sharding_"):
                row[key] = self.extra[key]
        # cluster runs report recovery telemetry next to them
        for key in (
            "cluster_worker_failures",
            "cluster_worker_restarts",
            "cluster_retries",
            "cluster_degraded_dispatches",
            "cluster_network_updates",
            "cluster_update_ack_retries",
        ):
            if key in self.extra:
                row[key] = self.extra[key]
        return row


class MetricsCollector:
    """Accumulates per-request outcomes and produces a :class:`SimulationResult`."""

    def __init__(self, algorithm: str, instance_name: str, alpha: float) -> None:
        self._result = SimulationResult(
            algorithm=algorithm, instance_name=instance_name, alpha=alpha
        )
        self._rejected: list[Request] = []
        self._dispatch_seconds = 0.0
        self._waits: list[float] = []
        self._detour_ratios: list[float] = []

    # ------------------------------------------------------------ recording

    def record_outcome(self, outcome: DispatchOutcome) -> None:
        """Record the dispatch outcome of one request."""
        result = self._result
        result.total_requests += 1
        result.candidates_considered += outcome.candidates_considered
        result.insertions_evaluated += outcome.insertions_evaluated
        if outcome.served:
            result.served_requests += 1
        else:
            result.rejected_requests += 1
            self._rejected.append(outcome.request)
            if outcome.decision_rejected:
                result.decision_rejections += 1

    def record_dispatch_time(self, seconds: float) -> None:
        """Add wall-clock time spent inside the dispatcher."""
        self._dispatch_seconds += seconds

    def record_cancellation(self, request: Request, was_assigned: bool) -> None:
        """Record a rider cancellation.

        Args:
            request: the cancelled request.
            was_assigned: ``True`` when the request had already been assigned
                (and recorded as served) — the earlier outcome is retracted;
                ``False`` when it was still deferred inside a batch window and
                never produced an outcome.
        """
        result = self._result
        result.cancelled_requests += 1
        if was_assigned:
            result.served_requests -= 1
        else:
            result.total_requests += 1

    def record_completion(self, record: ServiceRecord, direct_distance: float) -> None:
        """Record a completed delivery (waiting time, detour ratio, deadline check)."""
        if record.pickup_time is not None:
            self._waits.append(max(record.pickup_time - record.request.release_time, 0.0))
        if record.dropoff_time is not None and direct_distance > 0 and record.pickup_time is not None:
            self._detour_ratios.append(
                (record.dropoff_time - record.pickup_time) / direct_distance
            )
        if not record.on_time:
            self._result.deadline_violations += 1

    # ------------------------------------------------------------- finishing

    def finalise(
        self,
        total_travel_cost: float,
        oracle_counters: OracleCounters,
        index_memory_bytes: int,
        dispatcher_extra: dict[str, float] | None = None,
    ) -> SimulationResult:
        """Compute the derived metrics and return the result object.

        ``dispatcher_extra`` carries dispatcher-reported metrics
        (:meth:`~repro.dispatch.base.Dispatcher.extra_metrics`) into
        :attr:`SimulationResult.extra`.
        """
        result = self._result
        result.total_travel_cost = total_travel_cost
        result.total_penalty = sum(request.penalty for request in self._rejected)
        result.unified_cost = unified_cost(total_travel_cost, self._rejected, result.alpha)
        result.total_dispatch_seconds = self._dispatch_seconds
        result.distance_queries = oracle_counters.distance_queries
        result.lower_bound_queries = oracle_counters.lower_bound_queries
        result.index_memory_bytes = index_memory_bytes
        # surface the oracle LRU cache statistics (hits/misses/evictions/
        # hit rate) and the per-backend counters next to the query counters
        # in experiment reports; a bypassed distance cache stays the string
        # marker "bypassed (<backend>)" rather than a misleading 0.0
        base_counters = {
            "distance_queries", "path_queries", "lower_bound_queries", "dijkstra_runs",
        }
        for key, value in oracle_counters.snapshot().items():
            if key not in base_counters:
                result.extra[key] = value if isinstance(value, str) else float(value)
        result.extra["oracle_backend"] = oracle_counters.backend
        if dispatcher_extra:
            result.extra.update(dispatcher_extra)
        if self._waits:
            result.mean_wait_seconds = sum(self._waits) / len(self._waits)
        if self._detour_ratios:
            result.mean_detour_ratio = sum(self._detour_ratios) / len(self._detour_ratios)
        return result

    @property
    def rejected_requests(self) -> list[Request]:
        """Requests rejected so far."""
        return list(self._rejected)

    @property
    def live(self) -> SimulationResult:
        """The in-progress result (live counters; derived metrics unset).

        Read-only observability accessor for service snapshots — the derived
        fields (unified cost, penalties, means) are only populated by
        :meth:`finalise`.
        """
        return self._result
