"""Dynamic simulation of the URPSM setting: fleet state, simulator, metrics."""

from repro.simulation.fleet import FleetState, ServiceRecord, WorkerState
from repro.simulation.metrics import MetricsCollector, SimulationResult
from repro.simulation.simulator import Simulator, run_simulation

__all__ = [
    "FleetState",
    "ServiceRecord",
    "WorkerState",
    "MetricsCollector",
    "SimulationResult",
    "Simulator",
    "run_simulation",
]
