"""Dynamic simulation of the URPSM setting: events, kernel, fleet, metrics."""

from repro.simulation.engine import EventEngine
from repro.simulation.events import (
    BatchFlush,
    Event,
    RequestArrival,
    RequestCancellation,
    StopCompletion,
    WorkerOffline,
    WorkerOnline,
)
from repro.simulation.fleet import FleetState, ServiceRecord, WorkerState
from repro.simulation.metrics import MetricsCollector, SimulationResult
from repro.simulation.simulator import ENGINES, Simulator, run_simulation

__all__ = [
    "BatchFlush",
    "ENGINES",
    "Event",
    "EventEngine",
    "FleetState",
    "MetricsCollector",
    "RequestArrival",
    "RequestCancellation",
    "ServiceRecord",
    "SimulationResult",
    "Simulator",
    "StopCompletion",
    "WorkerOffline",
    "WorkerOnline",
    "WorkerState",
    "run_simulation",
]
