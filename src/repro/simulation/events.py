"""Typed events of the event-driven simulation kernel.

The online URPSM setting of Section 6.1 is inherently event-driven: requests
become known at their release times, batch windows expire, workers reach the
stops of their planned routes, and — in the dynamic-fleet extensions — workers
come on/off shift and riders cancel pending requests. Each of those moments is
modelled as one immutable :class:`Event` processed by
:class:`~repro.simulation.engine.EventEngine` in timestamp order.

Deterministic ordering
----------------------

Events are totally ordered by the key ``(time, priority, seq)`` where ``seq``
is the engine's monotonically increasing scheduling counter. Ties at the same
simulated timestamp therefore resolve in a *documented, stable* order:

1. :class:`WorkerOnline`   — capacity appears before any decision at ``t``;
2. :class:`StopCompletion` — route progress up to ``t`` is materialised before
   any dispatching at ``t`` (mirrors the seed loop, which called
   ``advance_all(now)`` before every dispatcher interaction);
3. :class:`BatchFlush`     — a batch whose window expires exactly at a release
   time is flushed *before* the newly released request is seen (the seed loop
   flushed while ``next_flush <= now``);
4. :class:`RequestArrival` — the dispatcher sees the request;
5. :class:`RequestCancellation` — a cancellation stamped at the release time
   is processed after the arrival it cancels;
6. :class:`WorkerOffline`  — a worker is usable up to and including ``t``.

Events scheduled for the same ``(time, priority)`` are processed in FIFO
scheduling order (the ``seq`` component), which makes whole simulations
replayable bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.core.types import Request

#: Priority ranks; lower runs first among events with equal timestamps.
PRIORITY_WORKER_ONLINE = 0
PRIORITY_STOP_COMPLETION = 1
PRIORITY_BATCH_FLUSH = 2
PRIORITY_REQUEST_ARRIVAL = 3
PRIORITY_REQUEST_CANCELLATION = 4
PRIORITY_WORKER_OFFLINE = 5


@dataclass(frozen=True, slots=True)
class Event:
    """Base class of all simulation events.

    Attributes:
        time: simulated timestamp (seconds) at which the event fires.
    """

    time: float

    #: tie-break rank among events with the same timestamp (see module docs).
    priority: ClassVar[int] = PRIORITY_REQUEST_ARRIVAL

    def sort_key(self, seq: int) -> tuple[float, int, int]:
        """Total-order key used by the engine's heap."""
        return (self.time, self.priority, seq)


@dataclass(frozen=True, slots=True)
class RequestArrival(Event):
    """A request is released and becomes known to the platform."""

    request: Request = field(kw_only=True)

    priority: ClassVar[int] = PRIORITY_REQUEST_ARRIVAL


@dataclass(frozen=True, slots=True)
class BatchFlush(Event):
    """A batch dispatcher's accumulation window expires."""

    priority: ClassVar[int] = PRIORITY_BATCH_FLUSH


@dataclass(frozen=True, slots=True)
class StopCompletion(Event):
    """A worker is due to reach the next stop of its planned route.

    The event is only valid for the plan it was derived from: ``plan_version``
    snapshots :attr:`~repro.simulation.fleet.WorkerState.plan_version` at
    scheduling time, and the engine drops the event silently when the worker's
    route has been re-planned since (a newer event was scheduled then).
    """

    worker_id: int = field(kw_only=True)
    plan_version: int = field(kw_only=True)

    priority: ClassVar[int] = PRIORITY_STOP_COMPLETION


@dataclass(frozen=True, slots=True)
class WorkerOnline(Event):
    """A worker starts its shift and becomes assignable."""

    worker_id: int = field(kw_only=True)

    priority: ClassVar[int] = PRIORITY_WORKER_ONLINE


@dataclass(frozen=True, slots=True)
class WorkerOffline(Event):
    """A worker ends its shift: it finishes its planned route but receives no
    new assignments."""

    worker_id: int = field(kw_only=True)

    priority: ClassVar[int] = PRIORITY_WORKER_OFFLINE


@dataclass(frozen=True, slots=True)
class RequestCancellation(Event):
    """A rider cancels a request.

    Semantics (documented, deterministic):

    * still deferred inside a batch window — dropped from the batch, counted
      as *cancelled* (no penalty, not served, not rejected);
    * assigned but not yet picked up — the pickup/drop-off stops are removed
      from the worker's route and the request moves from *served* to
      *cancelled*;
    * already picked up, already rejected, or unknown — the cancellation is
      ignored (in-flight trips complete; rejections are irrevocable).
    """

    request_id: int = field(kw_only=True)

    priority: ClassVar[int] = PRIORITY_REQUEST_CANCELLATION


__all__ = [
    "Event",
    "RequestArrival",
    "BatchFlush",
    "StopCompletion",
    "WorkerOnline",
    "WorkerOffline",
    "RequestCancellation",
]
