"""Event-driven simulation kernel for the online URPSM setting.

The seed reproduction replayed the request stream with one hard-coded loop:
advance every worker at every release time (``O(|W|)`` per request), probe
batch dispatchers via ``getattr``, and drain pending batches in a final loop
that could spin forever. This module replaces that loop with a heap-ordered
event kernel:

* every moment of interest is a typed :mod:`~repro.simulation.events` event —
  request arrivals, batch-window expiries, workers reaching stops, workers
  going on/off shift, rider cancellations;
* events are processed in the documented deterministic order
  ``(time, priority, scheduling sequence)``;
* fleet advancement is **lazy**: only workers actually touched by an event
  materialise their progress (the fleet clock plus per-worker
  materialisation replaces ``advance_all`` over the full fleet), and
  :class:`~repro.simulation.events.StopCompletion` events generated from the
  planned routes replace polling;
* batch dispatchers schedule their own
  :class:`~repro.simulation.events.BatchFlush` events through
  :meth:`~repro.dispatch.base.Dispatcher.bind_flush_scheduler`; a
  productivity guard bounds the final drain so a misbehaving dispatcher
  raises instead of hanging the simulation.

:class:`~repro.simulation.simulator.Simulator` remains the public entry point
and delegates here by default; results on dynamics-free instances are
metric-identical (served rate, unified cost) to the legacy loop.
"""

from __future__ import annotations

import heapq
import time as _time

from repro.core.instance import URPSMInstance
from repro.dispatch.base import Dispatcher, DispatchOutcome
from repro.exceptions import DispatchError
from repro.simulation.events import (
    BatchFlush,
    Event,
    RequestArrival,
    RequestCancellation,
    StopCompletion,
    WorkerOffline,
    WorkerOnline,
)
from repro.simulation.fleet import FleetState, ServiceRecord
from repro.simulation.metrics import MetricsCollector, SimulationResult

#: Consecutive flushes yielding no outcome before the kernel declares the
#: batch drain non-terminating. A well-behaved dispatcher produces at most one
#: empty flush per window before reporting ``next_flush_time() is None``.
MAX_UNPRODUCTIVE_FLUSHES = 64


class EventEngine:
    """Heap-ordered event kernel running one dispatcher over one instance.

    Args:
        instance: the problem instance (validated before the run).
        dispatcher: the algorithm under test.
        collect_completions: also track waiting times / detour ratios of
            completed requests (slightly more bookkeeping).
    """

    def __init__(
        self,
        instance: URPSMInstance,
        dispatcher: Dispatcher,
        collect_completions: bool = True,
    ) -> None:
        instance.validate()
        self.instance = instance
        self.dispatcher = dispatcher
        self.collect_completions = collect_completions
        self.fleet = FleetState(instance.workers, instance.oracle, lazy=True)
        self.metrics = MetricsCollector(
            algorithm=dispatcher.name,
            instance_name=instance.name,
            alpha=instance.objective.alpha,
        )
        self.clock: float = 0.0
        #: total events popped off the queue (benchmark observability).
        self.events_processed: int = 0
        self._heap: list[tuple[tuple[float, int, int], Event]] = []
        self._seq = 0
        self._requests_by_id = {request.id: request for request in instance.requests}
        self._scheduled_flush_times: set[float] = set()
        self._unproductive_flushes = 0
        self._handlers = {
            RequestArrival: self._handle_arrival,
            BatchFlush: self._handle_flush,
            StopCompletion: self._handle_stop_completion,
            WorkerOnline: self._handle_worker_online,
            WorkerOffline: self._handle_worker_offline,
            RequestCancellation: self._handle_cancellation,
        }

    # ------------------------------------------------------------ scheduling

    def schedule(self, event: Event) -> None:
        """Push ``event`` onto the queue (events in the past fire "now")."""
        self._seq += 1
        heapq.heappush(self._heap, (event.sort_key(self._seq), event))

    def _schedule_flush(self, when: float) -> None:
        """Flush scheduler handed to the dispatcher (deduplicated per time)."""
        when = max(when, self.clock)
        if when in self._scheduled_flush_times:
            return
        self._scheduled_flush_times.add(when)
        self.schedule(BatchFlush(time=when))

    def _seed_events(self) -> None:
        for request in self.instance.requests:
            self.schedule(RequestArrival(time=request.release_time, request=request))
        dynamics = self.instance.dynamics
        if dynamics is None:
            return
        for cancellation in dynamics.cancellations:
            self.schedule(
                RequestCancellation(time=cancellation.time, request_id=cancellation.request_id)
            )
        for shift in dynamics.shifts:
            if shift.start > 0.0:
                self.fleet.set_online(shift.worker_id, False)
                self.schedule(WorkerOnline(time=shift.start, worker_id=shift.worker_id))
            if shift.end is not None:
                self.schedule(WorkerOffline(time=shift.end, worker_id=shift.worker_id))

    # ----------------------------------------------------------------- main

    def run(self) -> SimulationResult:
        """Process every event and return the aggregated metrics."""
        instance = self.instance
        dispatcher = self.dispatcher
        instance.oracle.reset_counters()
        dispatcher.setup(instance, self.fleet)
        dispatcher.bind_flush_scheduler(self._schedule_flush)
        self._seed_events()

        heap = self._heap
        handlers = self._handlers
        while heap:
            _, event = heapq.heappop(heap)
            self.clock = event.time
            self.fleet.set_clock(event.time)
            self.events_processed += 1
            handlers[type(event)](event)

        # all events drained: let every worker finish its remaining route
        self._record_completions(self.fleet.finish_all())
        self._record_completions(self.fleet.drain_completions())
        return self.metrics.finalise(
            total_travel_cost=self.fleet.total_travel_cost(),
            oracle_counters=instance.oracle.counters,
            index_memory_bytes=dispatcher.memory_estimate_bytes(),
            dispatcher_extra=dispatcher.extra_metrics(),
        )

    # -------------------------------------------------------------- handlers

    def _handle_arrival(self, event: RequestArrival) -> None:
        self._materialise_for_dispatcher()
        outcome, elapsed = self._timed_call(
            lambda: self.dispatcher.dispatch(event.request, self.clock)
        )
        self.metrics.record_dispatch_time(elapsed)
        if outcome is None:
            # deferred: a BatchDispatcher scheduled its own flush through the
            # bound scheduler; cover dispatchers that only expose the polling
            # protocol as well.
            self._ensure_flush_scheduled()
        else:
            self.metrics.record_outcome(outcome)
        self._unproductive_flushes = 0
        self._post_dispatcher()

    def _handle_flush(self, event: BatchFlush) -> None:
        self._scheduled_flush_times.discard(event.time)
        dispatcher = self.dispatcher
        if not dispatcher.is_batched:
            return
        next_flush = dispatcher.next_flush_time()
        if next_flush is None or abs(next_flush - event.time) > 1e-9:
            return  # superseded: the window moved or was already drained
        self._materialise_for_dispatcher()
        outcomes, elapsed = self._timed_call(lambda: dispatcher.flush(event.time))
        self.metrics.record_dispatch_time(elapsed)
        for outcome in outcomes:
            self.metrics.record_outcome(outcome)
        if outcomes:
            self._unproductive_flushes = 0
        else:
            self._unproductive_flushes += 1
            if self._unproductive_flushes > MAX_UNPRODUCTIVE_FLUSHES:
                raise DispatchError(
                    f"{dispatcher.name}: {self._unproductive_flushes} consecutive batch "
                    "flushes produced no outcome while next_flush_time() kept returning "
                    "a deadline — the batch drain does not terminate"
                )
        self._post_dispatcher()
        self._ensure_flush_scheduled()

    def _handle_stop_completion(self, event: StopCompletion) -> None:
        state = self.fleet.peek_state(event.worker_id)
        if state.plan_version != event.plan_version:
            return  # the route was re-planned; a fresher event exists
        state = self.fleet.state_of(event.worker_id)  # materialise through the stop
        self._record_completions(self.fleet.drain_completions())
        self._schedule_next_stop(event.worker_id)

    def _handle_worker_online(self, event: WorkerOnline) -> None:
        self.fleet.set_online(event.worker_id, True)
        # materialise so the idle clock starts at the shift start, not at 0
        self.fleet.state_of(event.worker_id)

    def _handle_worker_offline(self, event: WorkerOffline) -> None:
        self.fleet.set_online(event.worker_id, False)

    def _handle_cancellation(self, event: RequestCancellation) -> None:
        request = self._requests_by_id.get(event.request_id)
        if request is None:
            return
        if self.dispatcher.cancel(request):
            # still deferred in a batch window: it never produced an outcome
            self.metrics.record_cancellation(request, was_assigned=False)
            return
        holder = self.fleet.find_assignment(event.request_id)
        if holder is None:
            return  # already rejected (irrevocable) or already delivered
        # materialise first: the pickup may have happened before "now" without
        # having been observed yet
        state = self.fleet.state_of(holder.worker.id)
        self._record_completions(self.fleet.drain_completions())
        if state.drop_request(event.request_id):
            self.metrics.record_cancellation(request, was_assigned=True)
            self._post_dispatcher()

    # --------------------------------------------------------------- helpers

    def _timed_call(self, call):
        """Run ``call`` measuring dispatcher time net of lazy materialisation.

        Lazy advancement happens *inside* dispatcher calls (``state_of``
        materialises candidates on access) but is fleet-execution work the
        legacy loop performs outside its timer — exclude it so the paper's
        response-time metric measures the same thing on both engines.
        """
        fleet = self.fleet
        materialisation_before = fleet.materialisation_seconds
        started = _time.perf_counter()
        result = call()
        elapsed = _time.perf_counter() - started
        elapsed -= fleet.materialisation_seconds - materialisation_before
        return result, max(elapsed, 0.0)

    def _materialise_for_dispatcher(self) -> None:
        """Advance the whole fleet for dispatchers with lossy candidate search."""
        if self.dispatcher.requires_exact_positions:
            self._record_completions(self.fleet.advance_all(self.clock))

    def _post_dispatcher(self) -> None:
        """Bookkeeping after any dispatcher interaction or re-planning."""
        self._record_completions(self.fleet.drain_completions())
        for worker_id in self.fleet.drain_dirty_plans():
            self._schedule_next_stop(worker_id)

    def _schedule_next_stop(self, worker_id: int) -> None:
        state = self.fleet.peek_state(worker_id)
        arrival = state.next_stop_arrival
        if arrival is None:
            return
        self.schedule(
            StopCompletion(
                time=max(arrival, self.clock),
                worker_id=worker_id,
                plan_version=state.plan_version,
            )
        )

    def _ensure_flush_scheduled(self) -> None:
        next_flush = self.dispatcher.next_flush_time()
        if next_flush is not None:
            self._schedule_flush(next_flush)

    def _record_completions(self, completions: list[ServiceRecord]) -> None:
        if not self.collect_completions:
            return
        oracle = self.instance.oracle
        for record in completions:
            direct = oracle.distance(record.request.origin, record.request.destination)
            self.metrics.record_completion(record, direct)
