"""Event-driven simulation kernel for the online URPSM setting.

The seed reproduction replayed the request stream with one hard-coded loop:
advance every worker at every release time (``O(|W|)`` per request), probe
batch dispatchers via ``getattr``, and drain pending batches in a final loop
that could spin forever. This module replaces that loop with a heap-ordered
event kernel:

* every moment of interest is a typed :mod:`~repro.simulation.events` event —
  request arrivals, batch-window expiries, workers reaching stops, workers
  going on/off shift, rider cancellations;
* events are processed in the documented deterministic order
  ``(time, priority, scheduling sequence)``;
* fleet advancement is **lazy**: only workers actually touched by an event
  materialise their progress (the fleet clock plus per-worker
  materialisation replaces ``advance_all`` over the full fleet), and
  :class:`~repro.simulation.events.StopCompletion` events generated from the
  planned routes replace polling;
* batch dispatchers schedule their own
  :class:`~repro.simulation.events.BatchFlush` events through
  :meth:`~repro.dispatch.base.Dispatcher.bind_flush_scheduler`; a
  productivity guard bounds the final drain so a misbehaving dispatcher
  raises instead of hanging the simulation.

:class:`~repro.simulation.simulator.Simulator` remains the public entry point
and delegates here by default; results on dynamics-free instances are
metric-identical (served rate, unified cost) to the legacy loop.

Incremental protocol
--------------------

Batch replay (:meth:`EventEngine.run`) seeds every arrival up front and drains
the heap in one loop. The online service facade
(:class:`~repro.service.facade.MatchingService`) instead drives the engine
*incrementally* through :meth:`EventEngine.start` /
:meth:`EventEngine.submit` / :meth:`EventEngine.advance_until` /
:meth:`EventEngine.finish`: each submission schedules its own
:class:`~repro.simulation.events.RequestArrival` and pumps the heap exactly up
to (and through) that arrival. Because event types are totally ordered by
``(time, priority, seq)`` and priorities disambiguate all cross-type ties, the
incremental drive processes events in the *same order* as the batch replay —
which is what makes service-driven runs metric-identical to
:func:`~repro.simulation.simulator.run_simulation`.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Callable

from repro.core.instance import URPSMInstance
from repro.core.route import Route
from repro.core.types import Request, Worker
from repro.dispatch.base import Dispatcher, DispatchOutcome
from repro.exceptions import ConfigurationError, DispatchError
from repro.simulation.events import (
    BatchFlush,
    Event,
    RequestArrival,
    RequestCancellation,
    StopCompletion,
    WorkerOffline,
    WorkerOnline,
)
from repro.simulation.fleet import FleetState, ServiceRecord
from repro.simulation.metrics import MetricsCollector, SimulationResult

#: Consecutive flushes yielding no outcome before the kernel declares the
#: batch drain non-terminating. A well-behaved dispatcher produces at most one
#: empty flush per window before reporting ``next_flush_time() is None``.
MAX_UNPRODUCTIVE_FLUSHES = 64


class EventEngine:
    """Heap-ordered event kernel running one dispatcher over one instance.

    Args:
        instance: the problem instance (validated before the run).
        dispatcher: the algorithm under test.
        collect_completions: also track waiting times / detour ratios of
            completed requests (slightly more bookkeeping).
    """

    def __init__(
        self,
        instance: URPSMInstance,
        dispatcher: Dispatcher,
        collect_completions: bool = True,
    ) -> None:
        instance.validate()
        self.instance = instance
        self.dispatcher = dispatcher
        self.collect_completions = collect_completions
        self.fleet = FleetState(instance.workers, instance.oracle, lazy=True)
        self.metrics = MetricsCollector(
            algorithm=dispatcher.name,
            instance_name=instance.name,
            alpha=instance.objective.alpha,
        )
        self.clock: float = 0.0
        #: total events popped off the queue (benchmark observability).
        self.events_processed: int = 0
        self._heap: list[tuple[tuple[float, int, int], Event]] = []
        self._seq = 0
        self._requests_by_id = {request.id: request for request in instance.requests}
        #: ids whose arrival has been fed into the stream (seeded by run() or
        #: submitted online); guards double submission and distinguishes
        #: "never submitted" from "already resolved" on cancellation.
        self._submitted_ids: set[int] = set()
        self._scheduled_flush_times: set[float] = set()
        self._unproductive_flushes = 0
        self._started = False
        self._finished = False
        #: outcome of the most recent RequestArrival (``None`` = deferred);
        #: read by :meth:`submit` right after pumping through the arrival.
        self.last_outcome: DispatchOutcome | None = None
        #: observer called as ``on_outcome(outcome, now)`` for every recorded
        #: dispatch outcome — the service facade turns these into decisions.
        self.on_outcome: Callable[[DispatchOutcome, float], None] | None = None
        #: observer called as ``on_cancellation(request, status, now)`` for
        #: every processed cancellation (client- or dynamics-initiated) so the
        #: facade can resolve still-open deferred decisions.
        self.on_cancellation: Callable[[Request, str, float], None] | None = None
        #: observer called as ``on_completion(record, now)`` for every
        #: delivered service record, independent of metric collection — the
        #: stress harness checks invariants (waits, deadlines) on raw records.
        self.on_completion: Callable[[ServiceRecord, float], None] | None = None
        self._last_cancel_status = "unknown_request"
        self._handlers = {
            RequestArrival: self._handle_arrival,
            BatchFlush: self._handle_flush,
            StopCompletion: self._handle_stop_completion,
            WorkerOnline: self._handle_worker_online,
            WorkerOffline: self._handle_worker_offline,
            RequestCancellation: self._handle_cancellation,
        }

    # ------------------------------------------------------------ scheduling

    def schedule(self, event: Event) -> None:
        """Push ``event`` onto the queue (events in the past fire "now")."""
        self._seq += 1
        heapq.heappush(self._heap, (event.sort_key(self._seq), event))

    def _schedule_flush(self, when: float) -> None:
        """Flush scheduler handed to the dispatcher (deduplicated per time)."""
        when = max(when, self.clock)
        if when in self._scheduled_flush_times:
            return
        self._scheduled_flush_times.add(when)
        self.schedule(BatchFlush(time=when))

    def _seed_dynamics(self) -> None:
        dynamics = self.instance.dynamics
        if dynamics is None:
            return
        for cancellation in dynamics.cancellations:
            self.schedule(
                RequestCancellation(time=cancellation.time, request_id=cancellation.request_id)
            )
        for shift in dynamics.shifts:
            if shift.start > 0.0:
                self.fleet.set_online(shift.worker_id, False)
                self.schedule(WorkerOnline(time=shift.start, worker_id=shift.worker_id))
            if shift.end is not None:
                self.schedule(WorkerOffline(time=shift.end, worker_id=shift.worker_id))

    # ----------------------------------------------------------------- main

    def start(self) -> None:
        """Bind the dispatcher and seed the dynamics events (idempotent).

        Called implicitly by :meth:`run` and by every incremental entry point,
        so drivers never need to sequence it themselves.
        """
        if self._started:
            return
        self._started = True
        self.instance.oracle.reset_counters()
        self.dispatcher.setup(self.instance, self.fleet)
        self.dispatcher.bind_flush_scheduler(self._schedule_flush)
        self._seed_dynamics()

    def run(self) -> SimulationResult:
        """Batch replay: seed every arrival, process every event, finalise."""
        self.start()
        for request in self.instance.requests:
            self._submitted_ids.add(request.id)
            self.schedule(RequestArrival(time=request.release_time, request=request))
        return self.finish()

    def finish(self) -> SimulationResult:
        """Drain the remaining events and return the aggregated metrics."""
        if self._finished:
            raise DispatchError("the engine has already been drained")
        self.start()
        while self._heap:
            self._step()
        # all events drained: let every worker finish its remaining route
        self._record_completions(self.fleet.finish_all())
        self._record_completions(self.fleet.drain_completions())
        self._finished = True
        # dispatchers owning extra oracles (sharded, local backends) fold
        # their counters into the headline totals; None = everything already
        # lives on the instance's oracle
        totals = self.dispatcher.oracle_counter_totals()
        return self.metrics.finalise(
            total_travel_cost=self.fleet.total_travel_cost(),
            oracle_counters=totals if totals is not None else self.instance.oracle.counters,
            index_memory_bytes=self.dispatcher.memory_estimate_bytes(),
            dispatcher_extra=self.dispatcher.extra_metrics(),
        )

    def _step(self) -> Event:
        """Pop and handle the next event; returns the handled event."""
        _, event = heapq.heappop(self._heap)
        self.clock = event.time
        self.fleet.set_clock(event.time)
        self.events_processed += 1
        self._handlers[type(event)](event)
        return event

    # ------------------------------------------------------- online interface

    def submit(self, request: Request) -> DispatchOutcome | None:
        """Feed one request into the stream and process it immediately.

        Schedules the request's :class:`~repro.simulation.events.
        RequestArrival` and pumps the heap *through* that arrival, so every
        event ordered before it (stop completions, batch flushes, shift
        changes) is processed first — exactly the order the batch replay
        would use. Returns the dispatch outcome, or ``None`` when a batch
        dispatcher deferred the request.
        """
        self.start()
        if self._finished:
            raise DispatchError("cannot submit to a drained engine")
        if request.release_time < self.clock - 1e-9:
            raise DispatchError(
                f"request {request.id} released at t={request.release_time:.3f} but "
                f"the engine clock is already at t={self.clock:.3f}; submissions "
                "must be time-ordered"
            )
        known = self._requests_by_id.get(request.id)
        if request.id in self._submitted_ids or (known is not None and known is not request):
            raise DispatchError(f"duplicate request id {request.id}")
        self._requests_by_id[request.id] = request
        self._submitted_ids.add(request.id)
        arrival = RequestArrival(time=max(request.release_time, self.clock), request=request)
        self.schedule(arrival)
        self._pump_through(arrival)
        return self.last_outcome

    def advance_until(self, now: float) -> None:
        """Process every event due up to ``now`` and move the clock there."""
        self.start()
        if self._finished:
            raise DispatchError("cannot advance a drained engine")
        while self._heap and self._heap[0][0][0] <= now:
            self._step()
        if now > self.clock:
            self.clock = now
            self.fleet.set_clock(now)

    def cancel_request(self, request_id: int) -> str:
        """Cancel a request "now"; returns the documented cancellation status.

        The cancellation is scheduled as a regular
        :class:`~repro.simulation.events.RequestCancellation` at the current
        clock (so pending same-time events keep their documented order) and
        processed immediately. Status values: ``"unknown_request"``,
        ``"removed_from_batch"``, ``"removed_from_route"``, ``"too_late"``.
        """
        self.start()
        if self._finished:
            raise DispatchError("cannot cancel on a drained engine")
        event = RequestCancellation(time=self.clock, request_id=request_id)
        self.schedule(event)
        self._pump_through(event)
        return self._last_cancel_status

    def add_worker(self, worker: Worker) -> None:
        """Add a new worker to the live fleet (online fleet growth).

        The worker materialises at its initial location at the current clock
        and is indexed by the dispatcher (the sharded dispatcher buckets it
        into the shard containing its position).
        """
        self.start()
        if self._finished:
            raise DispatchError("cannot add workers to a drained engine")
        self.fleet.add_worker(worker, at_time=self.clock)
        self.dispatcher.notify_worker_added(worker.id)

    def apply_network_update(self, mutate: Callable[[object], None]) -> None:
        """Mutate the road network mid-run (street closure / reopening).

        ``mutate`` is called with the live :class:`~repro.network.graph.
        RoadNetwork` and may add/remove edges or vertices. The engine then
        re-derives every piece of distance-dependent state, in order:

        1. the whole fleet is materialised to the current clock, so every
           worker sits on a concrete vertex and no cached concrete path is
           walked across the mutation boundary;
        2. the instance oracle rebuilds its backend against the new topology
           (:meth:`~repro.network.oracle.DistanceOracle.refresh_topology`);
        3. every non-idle route is rebuilt from its surviving stops — fresh
           :class:`~repro.core.route.Route` objects drop cached concrete
           paths and per-request direct distances, and ``replace_route``
           re-times the plan and bumps the plan version so stale
           :class:`~repro.simulation.events.StopCompletion` events are
           ignored;
        4. the dispatcher absorbs the update
           (:meth:`~repro.dispatch.base.Dispatcher.apply_network_update`) —
           in-process dispatchers re-derive their spatial index; the cluster
           dispatcher additionally broadcasts the recorded
           :class:`~repro.network.graph.EdgeMutation` batch to its worker
           replicas under a barrier acknowledgement.

        Existing commitments are kept: closures can make planned arrivals
        slip past deadlines, which is reported as deadline violations — the
        honest outcome of a street closing under committed trips.

        Raises:
            ConfigurationError: for dispatchers that declare themselves
                unable to absorb live network updates.
            DispatchError: on a drained engine.
        """
        self.start()
        if self._finished:
            raise DispatchError("cannot mutate the network of a drained engine")
        if not self.dispatcher.supports_network_updates:
            raise ConfigurationError(
                f"dispatcher {self.dispatcher.name!r} cannot apply live network "
                "updates; use a dispatcher that supports disruption scenarios"
            )
        self._record_completions(self.fleet.advance_all(self.clock))
        network = self.instance.network
        network.begin_mutation_capture()
        try:
            mutate(network)
        finally:
            mutations = network.end_mutation_capture()
        self.instance.oracle.refresh_topology()
        for worker_id in sorted(self.fleet.states):
            state = self.fleet.peek_state(worker_id)
            route = state.route
            if route.is_empty:
                continue
            state.replace_route(
                Route(
                    worker=route.worker,
                    origin=route.origin,
                    start_time=route.start_time,
                    stops=list(route.stops),
                )
            )
        self.dispatcher.apply_network_update(mutations, self.clock)
        self._post_dispatcher()

    def set_worker_online(self, worker_id: int, online: bool) -> None:
        """Toggle a worker's availability (online retire / reinstate)."""
        self.start()
        if self._finished:
            raise DispatchError("cannot toggle workers on a drained engine")
        self.fleet.set_online(worker_id, online)
        if online:
            # materialise so the idle clock starts now, not at the retire time
            self.fleet.state_of(worker_id)
            self._record_completions(self.fleet.drain_completions())

    def _pump_through(self, target: Event) -> None:
        """Process heap events in order until ``target`` has been handled."""
        while self._heap:
            if self._step() is target:
                return
        raise DispatchError("scheduled event disappeared from the queue")

    # -------------------------------------------------------------- handlers

    def _handle_arrival(self, event: RequestArrival) -> None:
        self._materialise_for_dispatcher()
        outcome, elapsed = self._timed_call(
            lambda: self.dispatcher.dispatch(event.request, self.clock)
        )
        self.metrics.record_dispatch_time(elapsed)
        self.last_outcome = outcome
        if outcome is None:
            # deferred: a BatchDispatcher scheduled its own flush through the
            # bound scheduler; cover dispatchers that only expose the polling
            # protocol as well.
            self._ensure_flush_scheduled()
        else:
            self._record_outcome(outcome)
        self._unproductive_flushes = 0
        self._post_dispatcher()

    def _handle_flush(self, event: BatchFlush) -> None:
        self._scheduled_flush_times.discard(event.time)
        dispatcher = self.dispatcher
        if not dispatcher.is_batched:
            return
        next_flush = dispatcher.next_flush_time()
        if next_flush is None or abs(next_flush - event.time) > 1e-9:
            return  # superseded: the window moved or was already drained
        self._materialise_for_dispatcher()
        outcomes, elapsed = self._timed_call(lambda: dispatcher.flush(event.time))
        self.metrics.record_dispatch_time(elapsed)
        for outcome in outcomes:
            self._record_outcome(outcome)
        if outcomes:
            self._unproductive_flushes = 0
        else:
            self._unproductive_flushes += 1
            if self._unproductive_flushes > MAX_UNPRODUCTIVE_FLUSHES:
                raise DispatchError(
                    f"{dispatcher.name}: {self._unproductive_flushes} consecutive batch "
                    "flushes produced no outcome while next_flush_time() kept returning "
                    "a deadline — the batch drain does not terminate"
                )
        self._post_dispatcher()
        self._ensure_flush_scheduled()

    def _handle_stop_completion(self, event: StopCompletion) -> None:
        state = self.fleet.peek_state(event.worker_id)
        if state.plan_version != event.plan_version:
            return  # the route was re-planned; a fresher event exists
        state = self.fleet.state_of(event.worker_id)  # materialise through the stop
        self._record_completions(self.fleet.drain_completions())
        self._schedule_next_stop(event.worker_id)

    def _handle_worker_online(self, event: WorkerOnline) -> None:
        self.fleet.set_online(event.worker_id, True)
        # materialise so the idle clock starts at the shift start, not at 0
        self.fleet.state_of(event.worker_id)

    def _handle_worker_offline(self, event: WorkerOffline) -> None:
        self.fleet.set_online(event.worker_id, False)

    def _handle_cancellation(self, event: RequestCancellation) -> None:
        request = self._requests_by_id.get(event.request_id)
        if request is None or event.request_id not in self._submitted_ids:
            # never fed into the stream (instance requests are known up front
            # for replay, but cancelling one before submission is still a
            # cancellation of an unknown request)
            self._last_cancel_status = "unknown_request"
            return
        if self.dispatcher.cancel(request):
            # still deferred in a batch window: it never produced an outcome
            self._last_cancel_status = "removed_from_batch"
            self.metrics.record_cancellation(request, was_assigned=False)
        else:
            holder = self.fleet.find_assignment(event.request_id)
            if holder is None:
                # already rejected (irrevocable) or already delivered
                self._last_cancel_status = "too_late"
            else:
                # materialise first: the pickup may have happened before "now"
                # without having been observed yet
                state = self.fleet.state_of(holder.worker.id)
                self._record_completions(self.fleet.drain_completions())
                if state.drop_request(event.request_id):
                    self._last_cancel_status = "removed_from_route"
                    self.metrics.record_cancellation(request, was_assigned=True)
                    self._post_dispatcher()
                else:
                    self._last_cancel_status = "too_late"
        if self.on_cancellation is not None:
            self.on_cancellation(request, self._last_cancel_status, self.clock)

    # --------------------------------------------------------------- helpers

    def _record_outcome(self, outcome: DispatchOutcome) -> None:
        """Record an outcome, notifying the service observer when bound."""
        self.metrics.record_outcome(outcome)
        if self.on_outcome is not None:
            self.on_outcome(outcome, self.clock)

    def _timed_call(self, call):
        """Run ``call`` measuring dispatcher time net of lazy materialisation.

        Lazy advancement happens *inside* dispatcher calls (``state_of``
        materialises candidates on access) but is fleet-execution work the
        legacy loop performs outside its timer — exclude it so the paper's
        response-time metric measures the same thing on both engines.
        """
        fleet = self.fleet
        materialisation_before = fleet.materialisation_seconds
        started = _time.perf_counter()
        result = call()
        elapsed = _time.perf_counter() - started
        elapsed -= fleet.materialisation_seconds - materialisation_before
        return result, max(elapsed, 0.0)

    def _materialise_for_dispatcher(self) -> None:
        """Advance the whole fleet for dispatchers with lossy candidate search."""
        if self.dispatcher.requires_exact_positions:
            self._record_completions(self.fleet.advance_all(self.clock))

    def _post_dispatcher(self) -> None:
        """Bookkeeping after any dispatcher interaction or re-planning."""
        self._record_completions(self.fleet.drain_completions())
        for worker_id in self.fleet.drain_dirty_plans():
            self._schedule_next_stop(worker_id)

    def _schedule_next_stop(self, worker_id: int) -> None:
        state = self.fleet.peek_state(worker_id)
        arrival = state.next_stop_arrival
        if arrival is None:
            return
        self.schedule(
            StopCompletion(
                time=max(arrival, self.clock),
                worker_id=worker_id,
                plan_version=state.plan_version,
            )
        )

    def _ensure_flush_scheduled(self) -> None:
        next_flush = self.dispatcher.next_flush_time()
        if next_flush is not None:
            self._schedule_flush(next_flush)

    def _record_completions(self, completions: list[ServiceRecord]) -> None:
        if self.on_completion is not None:
            for record in completions:
                self.on_completion(record, self.clock)
        if not self.collect_completions:
            return
        oracle = self.instance.oracle
        for record in completions:
            direct = oracle.distance(record.request.origin, record.request.destination)
            self.metrics.record_completion(record, direct)
