"""Public simulation entry points for the dynamic URPSM setting.

:class:`Simulator` and :func:`run_simulation` keep the interface of the seed
implementation but now delegate to the event-driven kernel
(:class:`~repro.simulation.engine.EventEngine`) by default, following the
protocol of Section 6.1 of the paper:

* requests become known only at their release time (dynamic/online setting);
* between two events every worker moves along its planned route;
* the dispatcher either assigns the new request (updating one worker's route)
  or rejects it, and rejections are irrevocable;
* batch-style dispatchers may defer requests until their next flush;
* at the end of the stream all pending stops are completed and the unified
  cost is evaluated over the full executed plan.

Wall-clock dispatcher time is measured per request to reproduce the paper's
*response time* metric.

The seed's request-stream loop is preserved as ``engine="legacy"`` — it is
metric-identical (served rate, unified cost) to the event kernel on
dynamics-free instances and serves as the baseline of
``benchmarks/bench_event_engine.py``. Instances with
:class:`~repro.core.instance.InstanceDynamics` (cancellations, worker
shifts) require the event kernel.
"""

from __future__ import annotations

import time

from repro.core.instance import URPSMInstance
from repro.dispatch.base import Dispatcher, DispatchOutcome
from repro.exceptions import ConfigurationError, DispatchError
from repro.simulation.engine import MAX_UNPRODUCTIVE_FLUSHES, EventEngine
from repro.simulation.fleet import FleetState
from repro.simulation.metrics import MetricsCollector, SimulationResult

#: engine names accepted by :class:`Simulator` / :func:`run_simulation`.
ENGINES = ("event", "legacy")


class Simulator:
    """Runs one dispatcher over one URPSM instance.

    Args:
        instance: the problem instance (validated before the run).
        dispatcher: the algorithm under test.
        collect_completions: also track waiting times / detour ratios of
            completed requests (slightly more bookkeeping).
        engine: ``"event"`` (default) for the event-driven kernel, or
            ``"legacy"`` for the seed's request-stream loop (dynamics-free
            instances only).
    """

    def __init__(
        self,
        instance: URPSMInstance,
        dispatcher: Dispatcher,
        collect_completions: bool = True,
        engine: str = "event",
    ) -> None:
        if engine not in ENGINES:
            raise ConfigurationError(f"unknown engine {engine!r}; available: {ENGINES}")
        self.engine = engine
        if engine == "event":
            self._backend = EventEngine(
                instance, dispatcher, collect_completions=collect_completions
            )
        else:
            self._backend = _LegacyLoop(
                instance, dispatcher, collect_completions=collect_completions
            )

    # The backend owns the mutable state; expose it under the seed attribute
    # names so existing callers and tests keep working.

    @property
    def instance(self) -> URPSMInstance:
        """The problem instance under simulation."""
        return self._backend.instance

    @property
    def dispatcher(self) -> Dispatcher:
        """The algorithm under test."""
        return self._backend.dispatcher

    @property
    def fleet(self) -> FleetState:
        """The backend's fleet state."""
        return self._backend.fleet

    @property
    def metrics(self) -> MetricsCollector:
        """The backend's metrics collector."""
        return self._backend.metrics

    def run(self) -> SimulationResult:
        """Replay the full request stream and return the aggregated metrics."""
        return self._backend.run()


class _LegacyLoop:
    """The seed's request-stream loop (eager fleet advancement).

    Kept as a verification baseline: the event kernel must match its served
    rate and unified cost on every dynamics-free instance. The final batch
    drain is bounded — a dispatcher whose ``next_flush_time`` never returns
    ``None`` raises :class:`~repro.exceptions.DispatchError` instead of
    spinning forever (the seed's non-termination hazard).
    """

    def __init__(
        self,
        instance: URPSMInstance,
        dispatcher: Dispatcher,
        collect_completions: bool = True,
    ) -> None:
        instance.validate()
        if instance.dynamics is not None and not instance.dynamics.is_empty:
            raise ConfigurationError(
                "instance dynamics (cancellations, worker shifts) require the "
                "event engine; run with engine='event'"
            )
        self.instance = instance
        self.dispatcher = dispatcher
        self.collect_completions = collect_completions
        self.fleet = FleetState(instance.workers, instance.oracle)
        self.metrics = MetricsCollector(
            algorithm=dispatcher.name,
            instance_name=instance.name,
            alpha=instance.objective.alpha,
        )

    # ----------------------------------------------------------------- main

    def run(self) -> SimulationResult:
        instance = self.instance
        dispatcher = self.dispatcher
        oracle = instance.oracle
        oracle.reset_counters()
        dispatcher.setup(instance, self.fleet)

        last_time = 0.0
        for request in instance.requests:
            now = request.release_time
            self._flush_batches_until(now)
            completions = self.fleet.advance_all(now)
            self._record_completions(completions)
            last_time = now

            started = time.perf_counter()
            outcome = dispatcher.dispatch(request, now)
            elapsed = time.perf_counter() - started
            self.metrics.record_dispatch_time(elapsed)
            if outcome is not None:
                self.metrics.record_outcome(outcome)

        # resolve any deferred batch and let every worker finish its route
        self._final_flush(last_time)
        completions = self.fleet.finish_all()
        self._record_completions(completions)

        return self.metrics.finalise(
            total_travel_cost=self.fleet.total_travel_cost(),
            oracle_counters=oracle.counters,
            index_memory_bytes=dispatcher.memory_estimate_bytes(),
            dispatcher_extra=dispatcher.extra_metrics(),
        )

    # --------------------------------------------------------------- batches

    def _flush_batches_until(self, now: float) -> None:
        """Flush the dispatcher's pending batches whose deadline precedes ``now``."""
        dispatcher = self.dispatcher
        if not dispatcher.is_batched:
            return
        while True:
            next_flush = dispatcher.next_flush_time()
            if next_flush is None or next_flush > now:
                break
            completions = self.fleet.advance_all(next_flush)
            self._record_completions(completions)
            started = time.perf_counter()
            outcomes = dispatcher.flush(next_flush)
            elapsed = time.perf_counter() - started
            self.metrics.record_dispatch_time(elapsed)
            self._record_outcomes(outcomes)

    def _final_flush(self, last_time: float) -> None:
        """Flush whatever is still pending after the last request (bounded)."""
        dispatcher = self.dispatcher
        if not dispatcher.is_batched:
            return
        unproductive = 0
        next_flush = dispatcher.next_flush_time()
        while next_flush is not None:
            flush_time = max(next_flush, last_time)
            completions = self.fleet.advance_all(flush_time)
            self._record_completions(completions)
            started = time.perf_counter()
            outcomes = dispatcher.flush(flush_time)
            elapsed = time.perf_counter() - started
            self.metrics.record_dispatch_time(elapsed)
            self._record_outcomes(outcomes)
            if outcomes:
                unproductive = 0
            else:
                unproductive += 1
                if unproductive > MAX_UNPRODUCTIVE_FLUSHES:
                    raise DispatchError(
                        f"{dispatcher.name}: {unproductive} consecutive final flushes "
                        "produced no outcome while next_flush_time() kept returning "
                        "a deadline — the final drain does not terminate"
                    )
            next_flush = dispatcher.next_flush_time()

    # --------------------------------------------------------------- records

    def _record_outcomes(self, outcomes: list[DispatchOutcome]) -> None:
        for outcome in outcomes:
            self.metrics.record_outcome(outcome)

    def _record_completions(self, completions) -> None:
        if not self.collect_completions:
            return
        oracle = self.instance.oracle
        for record in completions:
            direct = oracle.distance(record.request.origin, record.request.destination)
            self.metrics.record_completion(record, direct)


def run_simulation(
    instance: URPSMInstance,
    dispatcher: Dispatcher,
    collect_completions: bool = True,
    engine: str = "event",
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(
        instance, dispatcher, collect_completions=collect_completions, engine=engine
    ).run()
