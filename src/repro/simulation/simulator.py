"""Public simulation entry points for the dynamic URPSM setting.

:class:`Simulator` and :func:`run_simulation` keep the interface of the seed
implementation but now delegate to the event-driven kernel
(:class:`~repro.simulation.engine.EventEngine`) by default, following the
protocol of Section 6.1 of the paper:

* requests become known only at their release time (dynamic/online setting);
* between two events every worker moves along its planned route;
* the dispatcher either assigns the new request (updating one worker's route)
  or rejects it, and rejections are irrevocable;
* batch-style dispatchers may defer requests until their next flush;
* at the end of the stream all pending stops are completed and the unified
  cost is evaluated over the full executed plan.

Wall-clock dispatcher time is measured per request to reproduce the paper's
*response time* metric.

The seed's request-stream loop is preserved as ``engine="legacy"`` — it is
metric-identical (served rate, unified cost) to the event kernel on
dynamics-free instances and serves as the baseline of
``benchmarks/bench_event_engine.py``. Instances with
:class:`~repro.core.instance.InstanceDynamics` (cancellations, worker
shifts) require the event kernel.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable

from repro.core.instance import URPSMInstance
from repro.core.types import Request, Worker
from repro.dispatch.base import Dispatcher, DispatchOutcome
from repro.exceptions import ConfigurationError, DispatchError
from repro.simulation.engine import MAX_UNPRODUCTIVE_FLUSHES, EventEngine
from repro.simulation.fleet import FleetState
from repro.simulation.metrics import MetricsCollector, SimulationResult

#: engine names accepted by :class:`Simulator` / :func:`run_simulation`.
ENGINES = ("event", "legacy")


class Simulator:
    """Runs one dispatcher over one URPSM instance.

    Args:
        instance: the problem instance (validated before the run).
        dispatcher: the algorithm under test.
        collect_completions: also track waiting times / detour ratios of
            completed requests (slightly more bookkeeping).
        engine: ``"event"`` (default) for the event-driven kernel, or
            ``"legacy"`` for the seed's request-stream loop (dynamics-free
            instances only).
    """

    def __init__(
        self,
        instance: URPSMInstance,
        dispatcher: Dispatcher,
        collect_completions: bool = True,
        engine: str = "event",
    ) -> None:
        if engine not in ENGINES:
            raise ConfigurationError(f"unknown engine {engine!r}; available: {ENGINES}")
        self.engine = engine
        if engine == "event":
            self._backend = EventEngine(
                instance, dispatcher, collect_completions=collect_completions
            )
        else:
            self._backend = LegacyLoop(
                instance, dispatcher, collect_completions=collect_completions
            )

    # The backend owns the mutable state; expose it under the seed attribute
    # names so existing callers and tests keep working.

    @property
    def instance(self) -> URPSMInstance:
        """The problem instance under simulation."""
        return self._backend.instance

    @property
    def dispatcher(self) -> Dispatcher:
        """The algorithm under test."""
        return self._backend.dispatcher

    @property
    def fleet(self) -> FleetState:
        """The backend's fleet state."""
        return self._backend.fleet

    @property
    def metrics(self) -> MetricsCollector:
        """The backend's metrics collector."""
        return self._backend.metrics

    def run(self) -> SimulationResult:
        """Replay the full request stream and return the aggregated metrics."""
        return self._backend.run()


class LegacyLoop:
    """The seed's request-stream loop (eager fleet advancement).

    Kept as a verification baseline: the event kernel must match its served
    rate and unified cost on every dynamics-free instance. The final batch
    drain is bounded — a dispatcher whose ``next_flush_time`` never returns
    ``None`` raises :class:`~repro.exceptions.DispatchError` instead of
    spinning forever (the seed's non-termination hazard).

    Like the event kernel, the loop speaks the incremental protocol
    (:meth:`start` / :meth:`submit` / :meth:`advance_until` / :meth:`finish`)
    so the online service facade can drive it one request at a time;
    :meth:`run` is literally ``start`` + ``submit`` per request + ``finish``,
    which is what makes batch and service-driven runs the same code path.
    """

    def __init__(
        self,
        instance: URPSMInstance,
        dispatcher: Dispatcher,
        collect_completions: bool = True,
    ) -> None:
        instance.validate()
        if instance.dynamics is not None and not instance.dynamics.is_empty:
            raise ConfigurationError(
                "instance dynamics (cancellations, worker shifts) require the "
                "event engine; run with engine='event'"
            )
        self.instance = instance
        self.dispatcher = dispatcher
        self.collect_completions = collect_completions
        self.fleet = FleetState(instance.workers, instance.oracle)
        self.metrics = MetricsCollector(
            algorithm=dispatcher.name,
            instance_name=instance.name,
            alpha=instance.objective.alpha,
        )
        self.clock: float = 0.0
        self._started = False
        self._finished = False
        self._submitted_ids: set[int] = set()
        #: observer called as ``on_outcome(outcome, now)`` for every recorded
        #: dispatch outcome — the service facade turns these into decisions.
        self.on_outcome: Callable[[DispatchOutcome, float], None] | None = None

    # ----------------------------------------------------------------- main

    def start(self) -> None:
        """Bind the dispatcher to the instance and fleet (idempotent)."""
        if self._started:
            return
        self._started = True
        self.instance.oracle.reset_counters()
        self.dispatcher.setup(self.instance, self.fleet)

    def run(self) -> SimulationResult:
        self.start()
        for request in self.instance.requests:
            self.submit(request)
        return self.finish()

    def submit(self, request: Request) -> DispatchOutcome | None:
        """Process one released request (flush due batches, advance, dispatch)."""
        self.start()
        if self._finished:
            raise DispatchError("cannot submit to a drained loop")
        now = request.release_time
        if now < self.clock - 1e-9:
            raise DispatchError(
                f"request {request.id} released at t={now:.3f} but the loop clock "
                f"is already at t={self.clock:.3f}; submissions must be time-ordered"
            )
        if request.id in self._submitted_ids:
            raise DispatchError(f"duplicate request id {request.id}")
        self._submitted_ids.add(request.id)
        now = max(now, self.clock)
        self._flush_batches_until(now)
        self._record_completions(self.fleet.advance_all(now))
        self.clock = now

        started = time.perf_counter()
        outcome = self.dispatcher.dispatch(request, now)
        elapsed = time.perf_counter() - started
        self.metrics.record_dispatch_time(elapsed)
        if outcome is not None:
            self._record_outcome(outcome)
        return outcome

    def advance_until(self, now: float) -> None:
        """Flush due batches and advance the whole fleet up to ``now``."""
        self.start()
        if self._finished:
            raise DispatchError("cannot advance a drained loop")
        if now <= self.clock:
            return
        self._flush_batches_until(now)
        self._record_completions(self.fleet.advance_all(now))
        self.clock = now

    def add_worker(self, worker: Worker) -> None:
        """Add a new worker to the live fleet (online fleet growth)."""
        self.start()
        if self._finished:
            raise DispatchError("cannot add workers to a drained loop")
        self.fleet.add_worker(worker, at_time=self.clock)
        self.dispatcher.notify_worker_added(worker.id)

    def set_worker_online(self, worker_id: int, online: bool) -> None:
        """Toggle a worker's availability (online retire / reinstate)."""
        self.start()
        if self._finished:
            raise DispatchError("cannot toggle workers on a drained loop")
        self.fleet.set_online(worker_id, online)

    def finish(self) -> SimulationResult:
        """Drain pending batches, finish every route, finalise the metrics."""
        if self._finished:
            raise DispatchError("the loop has already been drained")
        self.start()
        self._final_flush(self.clock)
        self._record_completions(self.fleet.finish_all())
        self._finished = True
        # dispatchers owning extra oracles (sharded, local backends) fold
        # their counters into the headline totals; None = everything already
        # lives on the instance's oracle
        totals = self.dispatcher.oracle_counter_totals()
        return self.metrics.finalise(
            total_travel_cost=self.fleet.total_travel_cost(),
            oracle_counters=totals if totals is not None else self.instance.oracle.counters,
            index_memory_bytes=self.dispatcher.memory_estimate_bytes(),
            dispatcher_extra=self.dispatcher.extra_metrics(),
        )

    # --------------------------------------------------------------- batches

    def _flush_batches_until(self, now: float) -> None:
        """Flush the dispatcher's pending batches whose deadline precedes ``now``."""
        dispatcher = self.dispatcher
        if not dispatcher.is_batched:
            return
        while True:
            next_flush = dispatcher.next_flush_time()
            if next_flush is None or next_flush > now:
                break
            completions = self.fleet.advance_all(next_flush)
            self._record_completions(completions)
            self.clock = max(self.clock, next_flush)
            started = time.perf_counter()
            outcomes = dispatcher.flush(next_flush)
            elapsed = time.perf_counter() - started
            self.metrics.record_dispatch_time(elapsed)
            self._record_outcomes(outcomes)

    def _final_flush(self, last_time: float) -> None:
        """Flush whatever is still pending after the last request (bounded)."""
        dispatcher = self.dispatcher
        if not dispatcher.is_batched:
            return
        unproductive = 0
        next_flush = dispatcher.next_flush_time()
        while next_flush is not None:
            flush_time = max(next_flush, last_time)
            completions = self.fleet.advance_all(flush_time)
            self._record_completions(completions)
            self.clock = max(self.clock, flush_time)
            started = time.perf_counter()
            outcomes = dispatcher.flush(flush_time)
            elapsed = time.perf_counter() - started
            self.metrics.record_dispatch_time(elapsed)
            self._record_outcomes(outcomes)
            if outcomes:
                unproductive = 0
            else:
                unproductive += 1
                if unproductive > MAX_UNPRODUCTIVE_FLUSHES:
                    raise DispatchError(
                        f"{dispatcher.name}: {unproductive} consecutive final flushes "
                        "produced no outcome while next_flush_time() kept returning "
                        "a deadline — the final drain does not terminate"
                    )
            next_flush = dispatcher.next_flush_time()

    # --------------------------------------------------------------- records

    def _record_outcome(self, outcome: DispatchOutcome) -> None:
        self.metrics.record_outcome(outcome)
        if self.on_outcome is not None:
            self.on_outcome(outcome, self.clock)

    def _record_outcomes(self, outcomes: list[DispatchOutcome]) -> None:
        for outcome in outcomes:
            self._record_outcome(outcome)

    def _record_completions(self, completions) -> None:
        if not self.collect_completions:
            return
        oracle = self.instance.oracle
        for record in completions:
            direct = oracle.distance(record.request.origin, record.request.destination)
            self.metrics.record_completion(record, direct)


#: backwards-compatible alias (the loop was module-private before the service
#: facade started driving it incrementally).
_LegacyLoop = LegacyLoop


def run_simulation(
    instance: URPSMInstance,
    dispatcher: Dispatcher,
    collect_completions: bool = True,
    engine: str = "event",
) -> SimulationResult:
    """Replay the instance's request stream and return the aggregated metrics.

    .. deprecated::
        ``run_simulation(instance, dispatcher, ...)`` is a shim over the
        online service facade: it builds a
        :class:`~repro.service.facade.MatchingService` and replays the
        workload through it (``MatchingService(instance, dispatcher,
        engine=...).replay()``), so batch runs are the same code path as
        online serving. Call the facade — or
        :func:`repro.service.replay_workload` with a
        :class:`~repro.service.spec.PlatformSpec` — directly.
    """
    warnings.warn(
        "run_simulation(instance, dispatcher, ...) is deprecated; use "
        "repro.service.MatchingService(instance, dispatcher, engine=...).replay() "
        "or repro.service.replay_workload(PlatformSpec(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.service.facade import MatchingService  # lazy: service sits above us

    return MatchingService(
        instance, dispatcher, engine=engine, collect_completions=collect_completions
    ).replay()
