"""The dynamic URPSM simulator.

Replays a time-ordered request stream against a dispatcher, following the
protocol of Section 6.1 of the paper:

* requests become known only at their release time (dynamic/online setting);
* between two events every worker moves along its planned route;
* the dispatcher either assigns the new request (updating one worker's route)
  or rejects it, and rejections are irrevocable;
* batch-style dispatchers may defer requests until their next flush;
* at the end of the stream all pending stops are completed and the unified
  cost is evaluated over the full executed plan.

Wall-clock dispatcher time is measured per request to reproduce the paper's
*response time* metric.
"""

from __future__ import annotations

import time

from repro.core.instance import URPSMInstance
from repro.dispatch.base import Dispatcher, DispatchOutcome
from repro.simulation.fleet import FleetState
from repro.simulation.metrics import MetricsCollector, SimulationResult


class Simulator:
    """Runs one dispatcher over one URPSM instance.

    Args:
        instance: the problem instance (validated before the run).
        dispatcher: the algorithm under test.
        collect_completions: also track waiting times / detour ratios of
            completed requests (slightly more bookkeeping).
    """

    def __init__(
        self,
        instance: URPSMInstance,
        dispatcher: Dispatcher,
        collect_completions: bool = True,
    ) -> None:
        instance.validate()
        self.instance = instance
        self.dispatcher = dispatcher
        self.collect_completions = collect_completions
        self.fleet = FleetState(instance.workers, instance.oracle)
        self.metrics = MetricsCollector(
            algorithm=dispatcher.name,
            instance_name=instance.name,
            alpha=instance.objective.alpha,
        )

    # ----------------------------------------------------------------- main

    def run(self) -> SimulationResult:
        """Replay the full request stream and return the aggregated metrics."""
        instance = self.instance
        dispatcher = self.dispatcher
        oracle = instance.oracle
        oracle.reset_counters()
        dispatcher.setup(instance, self.fleet)

        last_time = 0.0
        for request in instance.requests:
            now = request.release_time
            self._flush_batches_until(now)
            completions = self.fleet.advance_all(now)
            self._record_completions(completions)
            last_time = now

            started = time.perf_counter()
            outcome = dispatcher.dispatch(request, now)
            elapsed = time.perf_counter() - started
            self.metrics.record_dispatch_time(elapsed)
            if outcome is not None:
                self.metrics.record_outcome(outcome)

        # resolve any deferred batch and let every worker finish its route
        self._final_flush(last_time)
        completions = self.fleet.finish_all()
        self._record_completions(completions)

        return self.metrics.finalise(
            total_travel_cost=self.fleet.total_travel_cost(),
            oracle_counters=oracle.counters,
            index_memory_bytes=dispatcher.memory_estimate_bytes(),
        )

    # --------------------------------------------------------------- batches

    def _flush_batches_until(self, now: float) -> None:
        """Flush the dispatcher's pending batches whose deadline precedes ``now``."""
        dispatcher = self.dispatcher
        if not dispatcher.is_batched:
            return
        while True:
            next_flush = getattr(dispatcher, "next_flush_time", lambda: None)()
            if next_flush is None or next_flush > now:
                break
            completions = self.fleet.advance_all(next_flush)
            self._record_completions(completions)
            started = time.perf_counter()
            outcomes = dispatcher.flush(next_flush)
            elapsed = time.perf_counter() - started
            self.metrics.record_dispatch_time(elapsed)
            self._record_outcomes(outcomes)

    def _final_flush(self, last_time: float) -> None:
        """Flush whatever is still pending after the last request."""
        dispatcher = self.dispatcher
        if not dispatcher.is_batched:
            return
        next_flush = getattr(dispatcher, "next_flush_time", lambda: None)()
        while next_flush is not None:
            flush_time = max(next_flush, last_time)
            completions = self.fleet.advance_all(flush_time)
            self._record_completions(completions)
            started = time.perf_counter()
            outcomes = dispatcher.flush(flush_time)
            elapsed = time.perf_counter() - started
            self.metrics.record_dispatch_time(elapsed)
            self._record_outcomes(outcomes)
            next_flush = getattr(dispatcher, "next_flush_time", lambda: None)()

    # --------------------------------------------------------------- records

    def _record_outcomes(self, outcomes: list[DispatchOutcome]) -> None:
        for outcome in outcomes:
            self.metrics.record_outcome(outcome)

    def _record_completions(self, completions) -> None:
        if not self.collect_completions:
            return
        oracle = self.instance.oracle
        for record in completions:
            direct = oracle.distance(record.request.origin, record.request.destination)
            self.metrics.record_completion(record, direct)


def run_simulation(
    instance: URPSMInstance, dispatcher: Dispatcher, collect_completions: bool = True
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(instance, dispatcher, collect_completions=collect_completions).run()
