"""Fleet state: per-worker position, planned route and execution progress.

The dynamic simulator advances every worker along its planned route between
dispatch events ("when a worker is serving a request, he/she follows the
planned route and moves to the destination", Section 6.1). A worker's position
is always snapped to the last road-network vertex it passed on the concrete
shortest path towards its next stop, so insertion operators always work with
graph vertices and exact distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.route import Route, empty_route
from repro.core.types import Request, StopKind, Worker
from repro.exceptions import DispatchError
from repro.network.graph import Vertex
from repro.network.oracle import DistanceOracle

INFINITY = math.inf


@dataclass
class ServiceRecord:
    """Completion record of one served request."""

    request: Request
    worker_id: int
    pickup_time: float | None = None
    dropoff_time: float | None = None

    @property
    def completed(self) -> bool:
        """Whether the request has been delivered."""
        return self.dropoff_time is not None

    @property
    def on_time(self) -> bool:
        """Whether the delivery met the deadline (False while still in progress)."""
        return self.dropoff_time is not None and self.dropoff_time <= self.request.deadline + 1e-6


class WorkerState:
    """Execution state of one worker."""

    def __init__(self, worker: Worker, oracle: DistanceOracle) -> None:
        self.worker = worker
        self._oracle = oracle
        self.route: Route = empty_route(worker, start_time=0.0)
        self.route.refresh(oracle)
        self.travelled_cost: float = 0.0
        self.assigned_requests: dict[int, ServiceRecord] = {}

    # ------------------------------------------------------------ properties

    @property
    def position(self) -> Vertex:
        """Vertex the worker currently occupies (last vertex passed)."""
        return self.route.origin

    @property
    def position_time(self) -> float:
        """Time at which the worker was at :attr:`position`."""
        return self.route.start_time

    @property
    def is_idle(self) -> bool:
        """Whether the worker has no pending stop."""
        return self.route.is_empty

    @property
    def pending_stops(self) -> int:
        """Number of pending stops in the planned route."""
        return self.route.num_stops

    # -------------------------------------------------------------- planning

    def adopt_route(self, route: Route, request: Request | None = None) -> None:
        """Replace the planned route (after a successful insertion).

        Args:
            route: the new route; must belong to the same worker.
            request: the newly inserted request, if any, so a service record is
                opened for it.
        """
        if route.worker.id != self.worker.id:
            raise DispatchError(
                f"route of worker {route.worker.id} assigned to worker {self.worker.id}"
            )
        self.route = route
        if len(route.arr) != route.num_stops + 1:
            route.refresh(self._oracle)
        if request is not None:
            if request.id in self.assigned_requests:
                raise DispatchError(f"request {request.id} assigned twice to worker {self.worker.id}")
            self.assigned_requests[request.id] = ServiceRecord(
                request=request, worker_id=self.worker.id
            )

    # ------------------------------------------------------------- execution

    def advance_to(self, now: float) -> list[ServiceRecord]:
        """Move the worker along its planned route until time ``now``.

        Completed stops update pickup/drop-off times of the corresponding
        service records; the travelled cost is accumulated exactly. Returns the
        service records completed (delivered) during this advance.
        """
        completed: list[ServiceRecord] = []
        oracle = self._oracle
        while True:
            route = self.route
            if route.is_empty:
                # idle workers wait in place; their clock still moves forward
                if now > route.start_time:
                    route.start_time = now
                    route.refresh(oracle)
                break
            if len(route.arr) != route.num_stops + 1:
                route.refresh(oracle)
            next_arrival = route.arr[1]
            if next_arrival <= now + 1e-9:
                # the worker reaches the next stop
                stop = route.stops[0]
                leg_cost = next_arrival - route.arr[0]
                self.travelled_cost += max(leg_cost, 0.0)
                record = self.assigned_requests.get(stop.request.id)
                if record is not None:
                    if stop.kind is StopKind.PICKUP:
                        record.pickup_time = next_arrival
                    else:
                        record.dropoff_time = next_arrival
                        completed.append(record)
                self.route = Route(
                    worker=self.worker,
                    origin=stop.vertex,
                    start_time=next_arrival,
                    stops=route.stops[1:],
                    _direct_distances=dict(route._direct_distances),
                )
                self.route.refresh(oracle)
                continue
            # partially advance along the concrete shortest path to the next stop
            budget = now - route.arr[0]
            if budget <= 1e-9:
                break
            path = oracle.path(route.origin, route.stops[0].vertex)
            moved_cost = 0.0
            position = route.origin
            for u, v in zip(path, path[1:]):
                edge_cost = oracle.network.edge_cost(u, v)
                if moved_cost + edge_cost > budget + 1e-9:
                    break
                moved_cost += edge_cost
                position = v
            if position != route.origin:
                self.travelled_cost += moved_cost
                self.route = Route(
                    worker=self.worker,
                    origin=position,
                    start_time=route.arr[0] + moved_cost,
                    stops=list(route.stops),
                    _direct_distances=dict(route._direct_distances),
                )
                self.route.refresh(oracle)
            break
        return completed

    def finish_route(self) -> list[ServiceRecord]:
        """Complete every pending stop (used at the end of the simulation)."""
        return self.advance_to(INFINITY)

    # -------------------------------------------------------------- metrics

    def total_cost(self) -> float:
        """Travelled cost so far plus the remaining planned cost ``D(S_w)``."""
        return self.travelled_cost + self.route.planned_cost(self._oracle)


class FleetState:
    """The collection of all worker states plus convenience accessors."""

    def __init__(self, workers: list[Worker], oracle: DistanceOracle) -> None:
        if not workers:
            raise DispatchError("a fleet needs at least one worker")
        self.oracle = oracle
        self.states: dict[int, WorkerState] = {
            worker.id: WorkerState(worker, oracle) for worker in workers
        }

    def __iter__(self):
        return iter(self.states.values())

    def __len__(self) -> int:
        return len(self.states)

    def state_of(self, worker_id: int) -> WorkerState:
        """State of the worker with identifier ``worker_id``."""
        try:
            return self.states[worker_id]
        except KeyError as exc:
            raise DispatchError(f"unknown worker {worker_id}") from exc

    def advance_all(self, now: float) -> list[ServiceRecord]:
        """Advance every worker to time ``now``; returns completed deliveries."""
        completed: list[ServiceRecord] = []
        for state in self.states.values():
            completed.extend(state.advance_to(now))
        return completed

    def finish_all(self) -> list[ServiceRecord]:
        """Complete every pending route at the end of the simulation."""
        completed: list[ServiceRecord] = []
        for state in self.states.values():
            completed.extend(state.finish_route())
        return completed

    def total_travel_cost(self) -> float:
        """Sum of travelled + planned costs over the fleet (``sum_w D(S_w)``)."""
        return sum(state.total_cost() for state in self.states.values())

    def positions(self) -> dict[int, int]:
        """Current vertex of every worker, keyed by worker id."""
        return {worker_id: state.position for worker_id, state in self.states.items()}
