"""Fleet state: per-worker position, planned route and execution progress.

The simulator advances workers along their planned routes between dispatch
events ("when a worker is serving a request, he/she follows the planned route
and moves to the destination", Section 6.1). A worker's position is always
snapped to the last road-network vertex it passed on the concrete shortest
path towards its next stop, so insertion operators always work with graph
vertices and exact distances.

Two advancement regimes are supported:

* **eager** (the seed behaviour, used by the legacy request-loop): the caller
  advances the whole fleet explicitly via :meth:`FleetState.advance_all`;
* **lazy** (used by the event kernel): the fleet keeps a global ``clock`` and
  materialises a worker's progress only when that worker is *touched* — read
  through :meth:`FleetState.state_of` or iterated. Untouched workers keep an
  older materialisation; since a planned route fixes arrival times in absolute
  terms, late materialisation yields the exact same stop times and travel
  costs. Deliveries completed during lazy advances are buffered and drained by
  the engine (:meth:`FleetState.drain_completions`).

The fleet also tracks, for the event kernel:

* **plan versions** — :attr:`WorkerState.plan_version` increments on every
  re-planning, invalidating previously scheduled
  :class:`~repro.simulation.events.StopCompletion` events;
* **dirty plans** — which workers were re-planned since the engine last
  looked (:meth:`FleetState.drain_dirty_plans`);
* **moved positions** — which workers' materialised vertex changed since the
  dispatcher's grid was last synced (:meth:`FleetState.drain_moved`);
* **position staleness** — an upper bound on how far a moving worker may have
  travelled past its materialised position
  (:meth:`FleetState.position_slack_metres`), which the candidate filter adds
  to its search radius so lazy advancement never hides a feasible worker.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass

import numpy as np

from repro.core.route import Route, empty_route
from repro.core.types import Request, StopKind, Worker
from repro.exceptions import DispatchError
from repro.network.graph import Vertex
from repro.network.oracle import DistanceOracle

INFINITY = math.inf


@dataclass
class ServiceRecord:
    """Completion record of one served request."""

    request: Request
    worker_id: int
    pickup_time: float | None = None
    dropoff_time: float | None = None

    @property
    def completed(self) -> bool:
        """Whether the request has been delivered."""
        return self.dropoff_time is not None

    @property
    def on_time(self) -> bool:
        """Whether the delivery met the deadline (False while still in progress)."""
        return self.dropoff_time is not None and self.dropoff_time <= self.request.deadline + 1e-6

    @property
    def picked_up(self) -> bool:
        """Whether the pickup already happened (cancellation is then too late)."""
        return self.pickup_time is not None


class WorkerState:
    """Execution state of one worker."""

    def __init__(
        self, worker: Worker, oracle: DistanceOracle, fleet: "FleetState | None" = None
    ) -> None:
        self.worker = worker
        self._oracle = oracle
        self._fleet = fleet
        self.route: Route = empty_route(worker, start_time=0.0)
        self.route.refresh(oracle)
        self.travelled_cost: float = 0.0
        self.assigned_requests: dict[int, ServiceRecord] = {}
        self.online: bool = True
        #: bumped on every re-planning; snapshotted by StopCompletion events.
        self.plan_version: int = 0

    # ------------------------------------------------------------ properties

    @property
    def position(self) -> Vertex:
        """Vertex the worker currently occupies (last vertex passed)."""
        return self.route.origin

    @property
    def position_time(self) -> float:
        """Time at which the worker was at :attr:`position`."""
        return self.route.start_time

    @property
    def is_idle(self) -> bool:
        """Whether the worker has no pending stop."""
        return self.route.is_empty

    @property
    def pending_stops(self) -> int:
        """Number of pending stops in the planned route."""
        return self.route.num_stops

    @property
    def next_stop_arrival(self) -> float | None:
        """Planned arrival time at the next stop, or ``None`` when idle."""
        if self.route.is_empty:
            return None
        if len(self.route.arr) != self.route.num_stops + 1:
            self.route.refresh(self._oracle)
        return self.route.arr[1]

    # -------------------------------------------------------------- planning

    def adopt_route(self, route: Route, request: Request | None = None) -> None:
        """Replace the planned route (after a successful insertion).

        Args:
            route: the new route; must belong to the same worker.
            request: the newly inserted request, if any, so a service record is
                opened for it.
        """
        if route.worker.id != self.worker.id:
            raise DispatchError(
                f"route of worker {route.worker.id} assigned to worker {self.worker.id}"
            )
        if request is not None:
            if request.id in self.assigned_requests:
                raise DispatchError(f"request {request.id} assigned twice to worker {self.worker.id}")
            self.assigned_requests[request.id] = ServiceRecord(
                request=request, worker_id=self.worker.id
            )
            if self._fleet is not None:
                self._fleet._assignment_hint[request.id] = self.worker.id
        self.replace_route(route)

    def replace_route(self, route: Route) -> None:
        """Install ``route`` as the new plan, invalidating scheduled stop events."""
        self.route = route
        if len(route.arr) != route.num_stops + 1:
            route.refresh(self._oracle)
        self.plan_version += 1
        if self._fleet is not None:
            self._fleet._note_plan_change(self)

    def drop_request(self, request_id: int) -> bool:
        """Remove a not-yet-picked-up request from the plan (rider cancellation).

        Returns ``True`` when the request was pending on this worker and its
        stops were removed; ``False`` when it is unknown here or the pickup
        already happened (the trip then completes normally).
        """
        record = self.assigned_requests.get(request_id)
        if record is None or record.picked_up:
            return False
        remaining = [stop for stop in self.route.stops if stop.request.id != request_id]
        del self.assigned_requests[request_id]
        if self._fleet is not None:
            self._fleet._assignment_hint.pop(request_id, None)
        self.replace_route(
            Route(
                worker=self.worker,
                origin=self.route.origin,
                start_time=self.route.start_time,
                stops=remaining,
                _direct_distances=dict(self.route._direct_distances),
            )
        )
        return True

    # ------------------------------------------------------------- execution

    def advance_to(self, now: float) -> list[ServiceRecord]:
        """Move the worker along its planned route until time ``now``.

        Completed stops update pickup/drop-off times of the corresponding
        service records; the travelled cost is accumulated exactly. Returns the
        service records completed (delivered) during this advance.
        """
        completed: list[ServiceRecord] = []
        oracle = self._oracle
        while True:
            route = self.route
            if route.is_empty:
                # idle workers wait in place; their clock still moves forward
                if now > route.start_time:
                    route.start_time = now
                    route.refresh(oracle)
                break
            if len(route.arr) != route.num_stops + 1:
                route.refresh(oracle)
            next_arrival = route.arr[1]
            if next_arrival <= now + 1e-9:
                # the worker reaches the next stop. The new route's auxiliary
                # arrays are exactly the old ones shifted by one entry (the
                # cumulative sums share their association, the deadlines are
                # absolute and the completed stop's load delta is what
                # ``initial_load`` would report), so no refresh — and none of
                # its oracle leg queries — is needed.
                stop = route.stops[0]
                leg_cost = next_arrival - route.arr[0]
                self.travelled_cost += max(leg_cost, 0.0)
                record = self.assigned_requests.get(stop.request.id)
                if record is not None:
                    # Clamp the *recorded* service times to their physical
                    # bounds: a rider cannot be picked up before appearing,
                    # nor dropped off before the pickup. A re-plan from a
                    # vertex-snapped position (whose start_time lags the
                    # clock by up to one edge traversal) can schedule model
                    # arrivals slightly earlier than that; cost accounting
                    # keeps the exact model times, the service record does
                    # not time-travel.
                    if stop.kind is StopKind.PICKUP:
                        record.pickup_time = max(next_arrival, stop.request.release_time)
                    else:
                        record.dropoff_time = (
                            next_arrival
                            if record.pickup_time is None
                            else max(next_arrival, record.pickup_time)
                        )
                        completed.append(record)
                new_route = Route(
                    worker=self.worker,
                    origin=stop.vertex,
                    start_time=next_arrival,
                    stops=route.stops[1:],
                    _direct_distances=dict(route._direct_distances),
                )
                new_route.arr = route.arr[1:]
                new_route.ddl = route.ddl[1:]
                new_route.slack = route.slack[1:]
                new_route.picked = route.picked[1:]
                self.route = new_route
                continue
            # partially advance along the concrete shortest path to the next
            # stop, continuing the path chosen at the previous advance when
            # one is recorded (re-planning always builds fresh Route objects,
            # so a recorded path is never stale)
            budget = now - route.arr[0]
            if budget <= 1e-9:
                break
            next_stop = route.stops[0].vertex
            cached_path = route.concrete_path
            if (
                cached_path is not None
                and cached_path[0] == route.origin
                and cached_path[-1] == next_stop
            ):
                path = cached_path
            else:
                path = oracle.path(route.origin, next_stop)
            moved_cost = 0.0
            position = route.origin
            passed = 0
            for u, v in zip(path, path[1:]):
                edge_cost = oracle.network.edge_cost(u, v)
                if moved_cost + edge_cost > budget + 1e-9:
                    break
                moved_cost += edge_cost
                position = v
                passed += 1
            if position != route.origin:
                self.travelled_cost += moved_cost
                self.route = Route(
                    worker=self.worker,
                    origin=position,
                    start_time=route.arr[0] + moved_cost,
                    stops=list(route.stops),
                    _direct_distances=dict(route._direct_distances),
                    concrete_path=tuple(path[passed:]),
                )
                self.route.refresh(oracle)
            elif cached_path is None:
                # remember the freshly derived path even when the budget was
                # too small to pass a vertex
                route.concrete_path = tuple(path)
            break
        return completed

    def finish_route(self) -> list[ServiceRecord]:
        """Complete every pending stop (used at the end of the simulation)."""
        return self.advance_to(INFINITY)

    # -------------------------------------------------------------- metrics

    def total_cost(self) -> float:
        """Travelled cost so far plus the remaining planned cost ``D(S_w)``."""
        return self.travelled_cost + self.route.planned_cost(self._oracle)


class FleetState:
    """The collection of all worker states plus convenience accessors.

    Args:
        workers: the fleet.
        oracle: shared distance oracle.
        lazy: enable lazy advancement — workers materialise their progress up
            to :attr:`clock` when accessed through :meth:`state_of` or
            iteration; completions observed during those advances are buffered
            for :meth:`drain_completions`. With ``lazy=False`` (the default,
            matching the seed) accessors never mutate state and the caller
            drives advancement explicitly via :meth:`advance_all`.
    """

    def __init__(self, workers: list[Worker], oracle: DistanceOracle, lazy: bool = False) -> None:
        if not workers:
            raise DispatchError("a fleet needs at least one worker")
        self.oracle = oracle
        self.lazy = lazy
        #: skip no-op advances when a worker is already materialised at the
        #: clock (behaviour-identical; benchmarks flip this off to reconstruct
        #: the pre-optimisation touch cost as their scalar baseline).
        self.materialise_fast_path: bool = True
        #: current simulated time; advanced by the engine / ``advance_all``.
        self.clock: float = 0.0
        #: wall-clock seconds spent materialising lazy progress; the event
        #: engine subtracts this from its dispatch timer so the response-time
        #: metric measures the same work as the legacy loop (which advances
        #: the fleet outside its timer).
        self.materialisation_seconds: float = 0.0
        self._completions: list[ServiceRecord] = []
        self._dirty_plans: set[int] = set()
        self._moved: set[int] = set()
        #: worker id -> position_time, for workers with pending stops.
        self._moving: dict[int, float] = {}
        #: worker id -> (vertex, capacity) for workers whose route was empty
        #: at their last materialisation. An idle worker stays put and only
        #: gains stops through ``adopt_route`` (which evicts it here), so the
        #: snapshot lets the batched decision phase answer idle candidates
        #: without touching their state at all.
        self._idle: dict[int, tuple[Vertex, int]] = {}
        #: request id -> worker id of the (probable) current assignee; kept as
        #: a hint — re-optimisation passes may move requests between workers
        #: behind the fleet's back, so :meth:`find_assignment` verifies and
        #: self-heals via a scan on a miss.
        self._assignment_hint: dict[int, int] = {}
        self.states: dict[int, WorkerState] = {
            worker.id: WorkerState(worker, oracle, fleet=self) for worker in workers
        }
        for state in self.states.values():
            self._idle[state.worker.id] = (state.route.origin, state.worker.capacity)
        # dense array mirror of the idle snapshot for the batched decision
        # phase (worker ids are near-dense in every generator); None disables
        # the array path and callers fall back to the dict snapshot
        max_id = max(self.states)
        if max_id < 4 * len(self.states):
            self._idle_mask: "np.ndarray | None" = np.zeros(max_id + 1, dtype=bool)
            self._idle_origin_table = np.zeros(max_id + 1, dtype=np.int64)
            for worker_id, (origin, _) in self._idle.items():
                self._idle_mask[worker_id] = True
                self._idle_origin_table[worker_id] = origin
        else:
            self._idle_mask = None
            self._idle_origin_table = np.empty(0, dtype=np.int64)

    def __iter__(self):
        if self.lazy:
            for state in self.states.values():
                self._materialise(state)
        return iter(self.states.values())

    def __len__(self) -> int:
        return len(self.states)

    # ---------------------------------------------------------------- access

    def state_of(self, worker_id: int) -> WorkerState:
        """State of the worker with identifier ``worker_id``.

        In lazy mode the worker is first advanced to :attr:`clock`, so callers
        always observe positions and arrival arrays as of "now".
        """
        try:
            state = self.states[worker_id]
        except KeyError as exc:
            raise DispatchError(f"unknown worker {worker_id}") from exc
        if self.lazy:
            self._materialise(state)
        return state

    def states_of(self, worker_ids: list[int]) -> list[WorkerState]:
        """Materialised states of many workers (the decision phase's accessor).

        Equivalent to ``[state_of(w) for w in worker_ids]`` without the
        per-call lazy-mode branching — candidate sets touch hundreds of
        workers per event.
        """
        states = self.states
        if not self.lazy:
            try:
                return [states[worker_id] for worker_id in worker_ids]
            except KeyError as exc:
                raise DispatchError(f"unknown worker {exc.args[0]}") from exc
        result: list[WorkerState] = []
        append = result.append
        materialise = self._materialise
        for worker_id in worker_ids:
            try:
                state = states[worker_id]
            except KeyError as exc:
                raise DispatchError(f"unknown worker {worker_id}") from exc
            materialise(state)
            append(state)
        return result

    @property
    def idle_snapshot(self) -> dict[int, tuple[Vertex, int]]:
        """``worker id -> (vertex, capacity)`` of workers idle since their
        last materialisation.

        Valid at the current clock without touching any state: an idle worker
        waits in place and can only gain stops through a re-planning, which
        evicts it from the snapshot. Workers busy at their last touch are
        *not* listed even if their route has since completed — callers must
        materialise those through :meth:`state_of` / :meth:`states_of`.
        """
        return self._idle

    def idle_partition(
        self, worker_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split candidate ids into idle and busy workers.

        Returns ``(idle_mask, idle_origins, busy_ids)`` with ``idle_mask``
        aligned to ``worker_ids``. Uses the dense array mirror when worker
        ids are near-dense; the dict snapshot otherwise — same result either
        way.
        """
        if self._idle_mask is not None:
            mask = self._idle_mask[worker_ids]
            return mask, self._idle_origin_table[worker_ids[mask]], worker_ids[~mask]
        idle = self._idle
        mask = np.fromiter(
            (int(worker_id) in idle for worker_id in worker_ids),
            dtype=bool,
            count=len(worker_ids),
        )
        origins = np.asarray(
            [idle[int(worker_id)][0] for worker_id in worker_ids[mask]],
            dtype=np.int64,
        )
        return mask, origins, worker_ids[~mask]

    def peek_state(self, worker_id: int) -> WorkerState:
        """State accessor that never advances (event-engine bookkeeping)."""
        try:
            return self.states[worker_id]
        except KeyError as exc:
            raise DispatchError(f"unknown worker {worker_id}") from exc

    # --------------------------------------------------------- fleet growth

    def add_worker(self, worker: Worker, at_time: float | None = None) -> WorkerState:
        """Add a new worker to the live fleet (online fleet growth).

        The worker appears idle at its initial location at ``at_time``
        (default: the fleet clock) and is registered in the idle snapshot —
        and, when the dense mirror is active, in the idle arrays, growing them
        as needed. The caller (engine / service) is responsible for indexing
        the worker in the dispatcher's grid.
        """
        if worker.id in self.states:
            raise DispatchError(f"worker {worker.id} is already in the fleet")
        if at_time is None:
            at_time = self.clock
        state = WorkerState(worker, self.oracle, fleet=self)
        if at_time > 0.0:
            state.route.start_time = at_time
            state.route.arr[0] = at_time
        self.states[worker.id] = state
        self._idle[worker.id] = (state.route.origin, worker.capacity)
        if self._idle_mask is not None:
            if worker.id >= len(self._idle_mask):
                if worker.id < 4 * len(self.states):
                    grow = worker.id + 1 - len(self._idle_mask)
                    self._idle_mask = np.concatenate(
                        [self._idle_mask, np.zeros(grow, dtype=bool)]
                    )
                    self._idle_origin_table = np.concatenate(
                        [self._idle_origin_table, np.zeros(grow, dtype=np.int64)]
                    )
                else:
                    # ids became sparse: drop the dense mirror, callers fall
                    # back to the dict snapshot (same results)
                    self._idle_mask = None
                    self._idle_origin_table = np.empty(0, dtype=np.int64)
            if self._idle_mask is not None:
                self._idle_mask[worker.id] = True
                self._idle_origin_table[worker.id] = state.route.origin
        return state

    # ---------------------------------------------------------- availability

    def is_available(self, worker_id: int) -> bool:
        """Whether the worker is on shift and may receive new assignments."""
        return self.states[worker_id].online

    def set_online(self, worker_id: int, online: bool) -> None:
        """Toggle a worker's shift status (event-kernel worker dynamics)."""
        self.peek_state(worker_id).online = online

    # ------------------------------------------------------------- execution

    def set_clock(self, now: float) -> None:
        """Move the fleet's lazy clock forward (monotone; engine only)."""
        if now > self.clock:
            self.clock = now

    def advance_all(self, now: float) -> list[ServiceRecord]:
        """Advance every worker to time ``now``; returns completed deliveries."""
        self.set_clock(now)
        completed: list[ServiceRecord] = []
        for state in self.states.values():
            completed.extend(state.advance_to(now))
            self._note_motion(state)
        return completed

    def finish_all(self) -> list[ServiceRecord]:
        """Complete every pending route at the end of the simulation."""
        completed: list[ServiceRecord] = []
        for state in self.states.values():
            completed.extend(state.finish_route())
            self._note_motion(state)
        return completed

    def _materialise(self, state: WorkerState) -> None:
        """Advance ``state`` to the fleet clock, buffering completions."""
        route = state.route
        clock = self.clock
        if self.materialise_fast_path:
            if route.start_time >= clock:
                if not route.stops:
                    return
                # already materialised at this clock and no stop is due yet:
                # an advance_to(clock) would be a no-op walk — skip it. The
                # hot decision phase touches every candidate once per event;
                # only the first touch pays for real advancement.
                arr = route.arr
                if len(arr) == len(route.stops) + 1 and arr[1] > clock + 1e-9:
                    return
            elif not route.stops:
                # idle clock bump: the worker waits in place, so advancing is
                # just arr[0] = start_time = clock — no movement, no resync
                route.start_time = clock
                if len(route.arr) == 1:
                    route.arr[0] = clock
                else:
                    route.refresh(self.oracle)
                return
        elif route.start_time >= clock and route.is_empty:
            return
        started = _time.perf_counter()
        position_before = route.origin
        completed = state.advance_to(clock)
        self.materialisation_seconds += _time.perf_counter() - started
        if completed:
            self._completions.extend(completed)
        moved = not self.materialise_fast_path or state.route.origin != position_before
        self._note_motion(state, moved=moved)

    # ------------------------------------------------------- change tracking

    def _note_plan_change(self, state: WorkerState) -> None:
        worker_id = state.worker.id
        self._dirty_plans.add(worker_id)
        self._note_motion(state)

    def _note_motion(self, state: WorkerState, moved: bool = True) -> None:
        """Track motion bookkeeping after an advance or re-planning.

        ``moved=False`` records only the staleness bookkeeping (the worker's
        position vertex is unchanged, so the grid needs no resync for it).
        """
        worker_id = state.worker.id
        if state.route.is_empty:
            self._moving.pop(worker_id, None)
            self._idle[worker_id] = (state.route.origin, state.worker.capacity)
            if self._idle_mask is not None:
                self._idle_mask[worker_id] = True
                self._idle_origin_table[worker_id] = state.route.origin
        else:
            self._moving[worker_id] = state.position_time
            self._idle.pop(worker_id, None)
            if self._idle_mask is not None:
                self._idle_mask[worker_id] = False
        if moved:
            self._moved.add(worker_id)

    def drain_dirty_plans(self) -> list[int]:
        """Workers re-planned since the last drain (engine event scheduling)."""
        drained = sorted(self._dirty_plans)
        self._dirty_plans.clear()
        return drained

    def drain_completions(self) -> list[ServiceRecord]:
        """Deliveries completed during lazy advances since the last drain."""
        drained = self._completions
        self._completions = []
        return drained

    def drain_moved(self) -> list[int]:
        """Workers whose materialised position changed since the last drain."""
        drained = sorted(self._moved)
        self._moved.clear()
        return drained

    def position_slack_metres(self, max_speed: float) -> float:
        """Upper bound (metres) on any worker's drift past its materialised position.

        Idle workers do not move, and a moving worker materialised at
        ``position_time`` can have travelled at most
        ``(clock - position_time) * max_speed`` metres since. The candidate
        filter adds this slack to its reachability radius so that lazy
        advancement can only *widen* (never narrow) the candidate superset.
        Returns 0 in eager mode, where positions are materialised before every
        dispatch.
        """
        if not self.lazy or not self._moving:
            return 0.0
        oldest = min(self._moving.values())
        return max(self.clock - oldest, 0.0) * max_speed

    # -------------------------------------------------------------- metrics

    def total_travel_cost(self) -> float:
        """Sum of travelled + planned costs over the fleet (``sum_w D(S_w)``)."""
        return sum(state.total_cost() for state in self.states.values())

    def positions(self) -> dict[int, int]:
        """Current vertex of every worker, keyed by worker id."""
        if self.lazy:
            for state in self.states.values():
                self._materialise(state)
        return {worker_id: state.position for worker_id, state in self.states.items()}

    def find_assignment(self, request_id: int) -> WorkerState | None:
        """Worker currently holding ``request_id``, if any (cancellation path).

        O(1) via the assignment hint in the common case; falls back to a scan
        (and heals the hint) when a re-optimisation pass moved the request
        between workers since it was assigned.
        """
        hinted = self._assignment_hint.get(request_id)
        if hinted is not None:
            state = self.states.get(hinted)
            if state is not None and request_id in state.assigned_requests:
                return state
        for state in self.states.values():
            if request_id in state.assigned_requests:
                self._assignment_hint[request_id] = state.worker.id
                return state
        self._assignment_hint.pop(request_id, None)
        return None
