"""Exact shortest-path algorithms on :class:`~repro.network.graph.RoadNetwork`.

The paper assumes an O(1) shortest-distance oracle backed by hub labelling [9].
This module provides the exact reference algorithms the oracle builds upon:

* :func:`dijkstra` — single-source shortest distances (optionally bounded),
* :func:`bidirectional_dijkstra` — point-to-point distance and path,
* :func:`shortest_path` — point-to-point vertex sequence,
* :func:`single_source_distances` — convenience wrapper returning a dict,
* :func:`single_source_distances_array` — the array-native variant used by the
  APSP/landmark builders.

All algorithms run on the network's CSR adjacency
(:attr:`~repro.network.graph.RoadNetwork.csr`): flat ``indptr``/``indices``/
``costs`` arrays replace the dict-of-dict walk of the seed implementation,
which keeps the inner relaxation loop on dense integer positions.
:func:`dijkstra_reference` preserves the seed's dict-based search as the
oracle-free baseline the equivalence property tests compare against.

All costs are travel times in seconds.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DisconnectedError
from repro.network.graph import RoadNetwork, Vertex

INFINITY = math.inf


def dijkstra(
    network: RoadNetwork,
    source: Vertex,
    targets: Iterable[Vertex] | None = None,
    max_cost: float = INFINITY,
) -> dict[Vertex, float]:
    """Single-source Dijkstra on the CSR adjacency.

    Args:
        network: the road network.
        source: start vertex.
        targets: optional set of targets; the search stops once all of them
            are settled (or proven unreachable within ``max_cost``).
        max_cost: do not settle vertices farther than this cost.

    Returns:
        Mapping ``vertex -> shortest travel time`` for every settled vertex.
    """
    csr = network.csr
    src = csr.position_of(source)
    remaining: set[int] | None = None
    if targets is not None:
        # unknown targets can never be settled; a sentinel keeps the search
        # exhaustive, matching the dict reference behaviour
        remaining = {csr.position.get(target, -1) for target in targets}
    distances, settled = _csr_dijkstra(csr, src, remaining, max_cost)
    vertex_ids = csr.vertex_ids_list
    return {
        vertex_ids[index]: distances[index]
        for index in range(len(settled))
        if settled[index]
    }


def _csr_dijkstra(
    csr,
    src: int,
    remaining: set[int] | None,
    max_cost: float,
) -> tuple[list[float], bytearray]:
    """Core CSR Dijkstra over positions; returns (distances, settled flags)."""
    indptr = csr.indptr_list
    indices = csr.indices_list
    costs = csr.costs_list
    n = len(csr.vertex_ids_list)
    distances = [INFINITY] * n
    distances[src] = 0.0
    settled = bytearray(n)
    heap: list[tuple[float, int]] = [(0.0, src)]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        cost, vertex = pop(heap)
        if settled[vertex]:
            continue
        if cost > max_cost:
            break
        settled[vertex] = 1
        if remaining is not None:
            remaining.discard(vertex)
            if not remaining:
                break
        for slot in range(indptr[vertex], indptr[vertex + 1]):
            neighbour = indices[slot]
            candidate = cost + costs[slot]
            if candidate < distances[neighbour] and candidate <= max_cost:
                distances[neighbour] = candidate
                push(heap, (candidate, neighbour))
    return distances, settled


def dijkstra_reference(
    network: RoadNetwork,
    source: Vertex,
    targets: Iterable[Vertex] | None = None,
    max_cost: float = INFINITY,
) -> dict[Vertex, float]:
    """The seed's dict-of-dict Dijkstra, kept as the equivalence baseline.

    The property tests assert that :func:`dijkstra` (CSR) returns *exactly*
    the same mapping as this reference on random generator networks.
    """
    remaining: set[Vertex] | None = set(targets) if targets is not None else None
    distances: dict[Vertex, float] = {source: 0.0}
    settled: set[Vertex] = set()
    heap: list[tuple[float, Vertex]] = [(0.0, source)]
    while heap:
        cost, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        if cost > max_cost:
            break
        settled.add(vertex)
        if remaining is not None:
            remaining.discard(vertex)
            if not remaining:
                break
        for neighbour, edge_cost in network.neighbours(vertex).items():
            candidate = cost + edge_cost
            if candidate < distances.get(neighbour, INFINITY) and candidate <= max_cost:
                distances[neighbour] = candidate
                heapq.heappush(heap, (candidate, neighbour))
    return {vertex: cost for vertex, cost in distances.items() if vertex in settled}


def bidirectional_dijkstra_reference(
    network: RoadNetwork, source: Vertex, target: Vertex
) -> tuple[float, list[Vertex]]:
    """The seed's dict-of-dict bidirectional Dijkstra (equivalence baseline).

    Kept verbatim so property tests and the hot-path benchmark's "pre-PR"
    configuration can compare the CSR implementation against the original.
    """
    if source == target:
        return 0.0, [source]

    dist_forward: dict[Vertex, float] = {source: 0.0}
    dist_backward: dict[Vertex, float] = {target: 0.0}
    parent_forward: dict[Vertex, Vertex] = {}
    parent_backward: dict[Vertex, Vertex] = {}
    settled_forward: set[Vertex] = set()
    settled_backward: set[Vertex] = set()
    heap_forward: list[tuple[float, Vertex]] = [(0.0, source)]
    heap_backward: list[tuple[float, Vertex]] = [(0.0, target)]

    best_cost = INFINITY
    meeting_vertex: Vertex | None = None

    def relax(
        heap: list[tuple[float, Vertex]],
        distances: dict[Vertex, float],
        parents: dict[Vertex, Vertex],
        settled: set[Vertex],
        other_distances: dict[Vertex, float],
    ) -> None:
        nonlocal best_cost, meeting_vertex
        cost, vertex = heapq.heappop(heap)
        if vertex in settled:
            return
        settled.add(vertex)
        for neighbour, edge_cost in network.neighbours(vertex).items():
            candidate = cost + edge_cost
            if candidate < distances.get(neighbour, INFINITY):
                distances[neighbour] = candidate
                parents[neighbour] = vertex
                heapq.heappush(heap, (candidate, neighbour))
            other = other_distances.get(neighbour)
            if other is not None and candidate + other < best_cost:
                best_cost = candidate + other
                meeting_vertex = neighbour

    while heap_forward and heap_backward:
        top_forward = heap_forward[0][0]
        top_backward = heap_backward[0][0]
        if top_forward + top_backward >= best_cost:
            break
        if top_forward <= top_backward:
            relax(heap_forward, dist_forward, parent_forward, settled_forward, dist_backward)
        else:
            relax(heap_backward, dist_backward, parent_backward, settled_backward, dist_forward)

    if meeting_vertex is None:
        raise DisconnectedError(f"no path between {source} and {target}")

    forward_path = _unwind(parent_forward, source, meeting_vertex)
    backward_path = _unwind(parent_backward, target, meeting_vertex)
    backward_path.reverse()
    return best_cost, forward_path + backward_path[1:]


def _unwind(parents: dict[Vertex, Vertex], root: Vertex, leaf: Vertex) -> list[Vertex]:
    """Rebuild the path ``root -> ... -> leaf`` from a parent map."""
    path = [leaf]
    vertex = leaf
    while vertex != root:
        vertex = parents[vertex]
        path.append(vertex)
    path.reverse()
    return path


def single_source_distances(network: RoadNetwork, source: Vertex) -> dict[Vertex, float]:
    """Shortest travel time from ``source`` to every reachable vertex."""
    return dijkstra(network, source)


def single_source_distances_array(network: RoadNetwork, source: Vertex) -> np.ndarray:
    """Shortest travel times from ``source`` as a CSR-position-aligned array.

    Unreachable positions hold ``inf``. This is the building block of the
    oracle's dense APSP table — each row is one call, assigned without any
    dict round-trip.
    """
    csr = network.csr
    distances, settled = _csr_dijkstra(csr, csr.position_of(source), None, INFINITY)
    result = np.asarray(distances, dtype=np.float64)
    # tentative values of unsettled vertices are not shortest distances
    settled_mask = np.frombuffer(bytes(settled), dtype=np.uint8).astype(bool)
    result[~settled_mask] = np.inf
    return result


def truncated_multi_target_distances(
    network: RoadNetwork, source: Vertex, targets: Sequence[Vertex]
) -> tuple[np.ndarray, int]:
    """Distances from ``source`` to every target from **one** truncated search.

    A single source Dijkstra that stops as soon as every target is settled
    (or the whole component is exhausted) — the batched fallback of the
    Dijkstra distance backend, replacing one point-to-point search per pair.
    Unreachable targets hold ``inf``.

    Returns:
        ``(distances, settled)`` where ``distances`` is aligned with
        ``targets`` and ``settled`` counts the vertices the search settled
        (the work metric surfaced by the per-backend oracle counters).
    """
    csr = network.csr
    positions = csr.positions_of(targets)
    remaining = set(positions.tolist())
    distances, settled = _csr_dijkstra(csr, csr.position_of(source), remaining, INFINITY)
    out = np.fromiter(
        (distances[position] if settled[position] else INFINITY for position in positions),
        dtype=np.float64,
        count=positions.size,
    )
    return out, sum(settled)


def bidirectional_dijkstra(
    network: RoadNetwork, source: Vertex, target: Vertex
) -> tuple[float, list[Vertex]]:
    """Point-to-point shortest path via bidirectional Dijkstra on the CSR arrays.

    Returns:
        ``(cost, path)`` where ``path`` is the vertex sequence from ``source``
        to ``target`` inclusive.

    Raises:
        DisconnectedError: if no path exists.
    """
    if source == target:
        return 0.0, [source]
    csr = network.csr
    src = csr.position_of(source)
    dst = csr.position_of(target)
    indptr = csr.indptr_list
    indices = csr.indices_list
    costs = csr.costs_list

    # frontier state lives in dicts keyed by position: both searches settle
    # only a small region around their roots, so O(|V|) per-call allocation
    # would dominate short queries
    dist_forward: dict[int, float] = {src: 0.0}
    dist_backward: dict[int, float] = {dst: 0.0}
    parent_forward: dict[int, int] = {}
    parent_backward: dict[int, int] = {}
    settled_forward: set[int] = set()
    settled_backward: set[int] = set()
    heap_forward: list[tuple[float, int]] = [(0.0, src)]
    heap_backward: list[tuple[float, int]] = [(0.0, dst)]

    best_cost = INFINITY
    meeting = -1
    pop = heapq.heappop
    push = heapq.heappush

    while heap_forward and heap_backward:
        top_forward = heap_forward[0][0]
        top_backward = heap_backward[0][0]
        if top_forward + top_backward >= best_cost:
            break
        if top_forward <= top_backward:
            heap, distances, parents, settled, other = (
                heap_forward, dist_forward, parent_forward, settled_forward, dist_backward,
            )
        else:
            heap, distances, parents, settled, other = (
                heap_backward, dist_backward, parent_backward, settled_backward, dist_forward,
            )
        cost, vertex = pop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        for slot in range(indptr[vertex], indptr[vertex + 1]):
            neighbour = indices[slot]
            candidate = cost + costs[slot]
            if candidate < distances.get(neighbour, INFINITY):
                distances[neighbour] = candidate
                parents[neighbour] = vertex
                push(heap, (candidate, neighbour))
            other_cost = other.get(neighbour)
            if other_cost is not None and candidate + other_cost < best_cost:
                best_cost = candidate + other_cost
                meeting = neighbour

    if meeting < 0:
        raise DisconnectedError(f"no path between {source} and {target}")

    vertex_ids = csr.vertex_ids_list
    forward_path = _unwind_positions(parent_forward, src, meeting)
    backward_path = _unwind_positions(parent_backward, dst, meeting)
    backward_path.reverse()
    positions = forward_path + backward_path[1:]
    return best_cost, [vertex_ids[position] for position in positions]


def _unwind_positions(parents: dict[int, int], root: int, leaf: int) -> list[int]:
    """Rebuild the position path ``root -> ... -> leaf`` from a parent map."""
    path = [leaf]
    vertex = leaf
    while vertex != root:
        vertex = parents[vertex]
        path.append(vertex)
    path.reverse()
    return path


def shortest_path(network: RoadNetwork, source: Vertex, target: Vertex) -> list[Vertex]:
    """Vertex sequence of the shortest path from ``source`` to ``target``.

    Raises:
        DisconnectedError: if no path exists.
    """
    _, path = bidirectional_dijkstra(network, source, target)
    return path


def shortest_distance(network: RoadNetwork, source: Vertex, target: Vertex) -> float:
    """Shortest travel time between two vertices.

    Raises:
        DisconnectedError: if no path exists.
    """
    cost, _ = bidirectional_dijkstra(network, source, target)
    return cost


def path_cost(network: RoadNetwork, path: list[Vertex]) -> float:
    """Total travel time of a concrete vertex path."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += network.edge_cost(u, v)
    return total


def eccentricity(network: RoadNetwork, source: Vertex) -> float:
    """Largest finite shortest-path cost from ``source`` (graph eccentricity)."""
    distances = single_source_distances(network, source)
    return max(distances.values()) if distances else 0.0
