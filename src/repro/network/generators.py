"""Synthetic road-network generators.

The paper evaluates on the real road networks of New York City and Chengdu
extracted from OpenStreetMap. Those datasets are not available offline, so the
reproduction ships three generators whose outputs exercise the same code paths:

* :func:`grid_city` — a Manhattan-style lattice with avenues/streets of
  different speed classes and a few removed blocks ("parks"), standing in for
  the NYC network;
* :func:`ring_radial_city` — concentric ring roads connected by radial
  arterials, standing in for Chengdu's ring-road topology;
* :func:`random_geometric_city` — a random geometric graph, used by property
  tests to hit irregular topologies;
* :func:`cycle_network` — the undirected cycle graph used by the hardness
  constructions of Lemmas 1–3.

All generators guarantee that edge lengths are at least the Euclidean distance
between their endpoints (required for admissible lower bounds) and return the
largest connected component, so every shortest-path query succeeds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.network.graph import RoadNetwork, connected_components, induced_subnetwork
from repro.utils.geometry import Point
from repro.utils.rng import make_rng

# Speeds (metres/second) per road class; roughly 80% of common urban limits,
# mirroring the paper's "80% of the maximum legal speed limit" rule.
SPEED_MOTORWAY = 22.0
SPEED_ARTERIAL = 13.0
SPEED_RESIDENTIAL = 7.0


def grid_city(
    rows: int = 40,
    columns: int = 40,
    block_metres: float = 250.0,
    arterial_every: int = 5,
    removed_block_fraction: float = 0.03,
    seed: int = 7,
    name: str = "grid-city",
) -> RoadNetwork:
    """Generate a Manhattan-style grid road network.

    Args:
        rows: number of north-south streets.
        columns: number of east-west streets.
        block_metres: block edge length in metres.
        arterial_every: every ``arterial_every``-th row/column is an arterial
            with a higher speed.
        removed_block_fraction: fraction of edges removed at random to create
            irregularities (parks, rivers); the largest connected component is
            returned.
        seed: RNG seed controlling the removals.
        name: network name.
    """
    if rows < 2 or columns < 2:
        raise ValueError("grid_city needs at least a 2x2 lattice")
    rng = make_rng(seed)
    network = RoadNetwork(name=name)

    def vertex_id(row: int, column: int) -> int:
        return row * columns + column

    for row in range(rows):
        for column in range(columns):
            network.add_vertex(
                vertex_id(row, column), Point(column * block_metres, row * block_metres)
            )

    edges: list[tuple[int, int, str]] = []
    for row in range(rows):
        for column in range(columns):
            if column + 1 < columns:
                road_class = "arterial" if row % arterial_every == 0 else "residential"
                edges.append((vertex_id(row, column), vertex_id(row, column + 1), road_class))
            if row + 1 < rows:
                road_class = "arterial" if column % arterial_every == 0 else "residential"
                edges.append((vertex_id(row, column), vertex_id(row + 1, column), road_class))

    keep_mask = rng.random(len(edges)) >= removed_block_fraction
    for keep, (u, v, road_class) in zip(keep_mask, edges):
        if not keep:
            continue
        speed = SPEED_ARTERIAL if road_class == "arterial" else SPEED_RESIDENTIAL
        network.add_edge(u, v, speed=speed, road_class=road_class)

    return _largest_component(network)


def ring_radial_city(
    rings: int = 6,
    radials: int = 16,
    ring_spacing_metres: float = 900.0,
    seed: int = 11,
    name: str = "ring-radial-city",
) -> RoadNetwork:
    """Generate a ring-and-radial road network (Chengdu-like topology).

    Concentric ring roads are connected by radial arterials; ring segments are
    arterials, radial segments alternate between arterial (inner) and
    residential (outer). A small amount of angular jitter avoids degenerate
    symmetric distances.
    """
    if rings < 1 or radials < 3:
        raise ValueError("ring_radial_city needs >= 1 ring and >= 3 radials")
    rng = make_rng(seed)
    network = RoadNetwork(name=name)

    centre = 0
    network.add_vertex(centre, Point(0.0, 0.0))

    def vertex_id(ring: int, radial: int) -> int:
        return 1 + ring * radials + radial

    for ring in range(rings):
        radius = (ring + 1) * ring_spacing_metres
        for radial in range(radials):
            angle = 2.0 * math.pi * radial / radials + float(rng.normal(0.0, 0.01))
            network.add_vertex(
                vertex_id(ring, radial),
                Point(radius * math.cos(angle), radius * math.sin(angle)),
            )

    # ring edges
    for ring in range(rings):
        speed = SPEED_MOTORWAY if ring >= rings - 2 else SPEED_ARTERIAL
        for radial in range(radials):
            u = vertex_id(ring, radial)
            v = vertex_id(ring, (radial + 1) % radials)
            network.add_edge(u, v, speed=speed, road_class="ring")
    # radial edges
    for radial in range(radials):
        network.add_edge(centre, vertex_id(0, radial), speed=SPEED_ARTERIAL, road_class="radial")
        for ring in range(rings - 1):
            speed = SPEED_ARTERIAL if ring < rings // 2 else SPEED_RESIDENTIAL
            network.add_edge(
                vertex_id(ring, radial),
                vertex_id(ring + 1, radial),
                speed=speed,
                road_class="radial",
            )
    return network


def random_geometric_city(
    num_vertices: int = 300,
    area_metres: float = 8000.0,
    connection_radius_metres: float = 900.0,
    seed: int = 13,
    name: str = "random-geometric-city",
) -> RoadNetwork:
    """Random geometric graph: vertices uniform in a square, edges within a radius."""
    if num_vertices < 2:
        raise ValueError("random_geometric_city needs at least 2 vertices")
    rng = make_rng(seed)
    network = RoadNetwork(name=name)
    xs = rng.uniform(0.0, area_metres, size=num_vertices)
    ys = rng.uniform(0.0, area_metres, size=num_vertices)
    for index in range(num_vertices):
        network.add_vertex(index, Point(float(xs[index]), float(ys[index])))
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            distance = network.euclidean(u, v)
            if distance <= connection_radius_metres:
                # mildly inflate length to model street detours
                detour = 1.0 + float(rng.uniform(0.0, 0.3))
                network.add_edge(
                    u, v, length=distance * detour, speed=SPEED_RESIDENTIAL, road_class="street"
                )
    return _largest_component(network)


def cycle_network(num_vertices: int, edge_metres: float = 1000.0, speed: float = 10.0) -> RoadNetwork:
    """The undirected cycle graph used by the hardness constructions (Lemmas 1-3).

    Vertices are placed on a circle whose chord lengths are below
    ``edge_metres`` so the Euclidean lower bound stays admissible.
    """
    if num_vertices < 3:
        raise ValueError("cycle_network needs at least 3 vertices")
    network = RoadNetwork(name=f"cycle-{num_vertices}")
    # circumference = num_vertices * edge_metres -> radius accordingly
    radius = num_vertices * edge_metres / (2.0 * math.pi)
    for index in range(num_vertices):
        angle = 2.0 * math.pi * index / num_vertices
        network.add_vertex(index, Point(radius * math.cos(angle), radius * math.sin(angle)))
    for index in range(num_vertices):
        network.add_edge(
            index, (index + 1) % num_vertices, length=edge_metres, speed=speed, road_class="cycle"
        )
    return network


def _largest_component(network: RoadNetwork) -> RoadNetwork:
    """Restrict ``network`` to its largest connected component."""
    components = connected_components(network)
    if components.count <= 1:
        return network
    return induced_subnetwork(network, components.largest_component())
