"""LRU caches for shortest-distance and shortest-path queries.

The paper maintains an LRU cache for shortest-distance and shortest-path
queries shared by all compared algorithms (Section 6.1). The cache here is a
plain ordered-dict LRU with hit/miss counters so experiments can report query
statistics (e.g. the tens of billions of queries saved by the pruning strategy
of Lemma 8 translate into cache/oracle counter differences in our harness).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: internal sentinel distinguishing "key absent" from "key maps to None/0/...".
_MISSING = object()


@dataclass
class CacheStatistics:
    """Hit/miss/eviction counters of an :class:`LRUCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class LRUCache(Generic[K, V]):
    """A fixed-capacity least-recently-used cache with statistics.

    Example:
        >>> cache: LRUCache[str, int] = LRUCache(capacity=2)
        >>> cache.put("a", 1)
        >>> cache.get("a")
        1
        >>> cache.get("missing") is None
        True
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.statistics = CacheStatistics()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value for ``key`` or ``default``; updates recency.

        Presence is decided by a sentinel, not truthiness: a legitimately
        cached ``None``/``0``-like value is returned (and counted) as a hit,
        while an absent key is a miss even when ``default`` is falsy. Callers
        that may cache falsy values should pass their own sentinel as
        ``default`` to tell the two apart.
        """
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.statistics.misses += 1
            return default
        self.statistics.hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Insert or refresh ``key``; evicts the least recently used entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.statistics.evictions += 1
        self._entries[key] = value

    def clear(self) -> None:
        """Drop all entries (statistics are preserved)."""
        self._entries.clear()

    def reset_statistics(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.statistics = CacheStatistics()
