"""Contraction hierarchy over the CSR road network.

A contraction hierarchy (Geisberger et al., WEA 2008) preprocesses the graph
by repeatedly *contracting* the least important remaining vertex: the vertex
is removed and, for every pair of its remaining neighbours whose shortest
path runs through it, a **shortcut** edge preserving that distance is added.
Importance is the classic edge-difference heuristic (shortcuts added minus
edges removed, plus a deleted-neighbour term that spreads contractions
evenly), maintained lazily in a heap.

Queries then run on the **upward graph** only — the edges (original +
shortcuts) leading from each vertex to higher-ranked vertices, frozen into
flat CSR arrays at build time:

* **point-to-point** — a bidirectional *upward* search from both endpoints;
  the answer is the minimum over meeting vertices of the two upward
  distances (exact: some vertex of a shortest path is reachable upward from
  both sides by the CH construction invariant);
* **many-to-many** — the bucket technique: every target's full upward search
  space is scattered into per-vertex buckets, then **one** upward sweep from
  the source joins against the buckets, answering a whole
  ``distances_many``/``endpoint_distances`` batch with a single search per
  endpoint. Target search spaces are memoised (bounded), since dispatch
  batches re-query the same request origins/destinations continuously.

Upward search spaces on road-like networks are tiny (tens to a few hundred
vertices), so a query settles orders of magnitude fewer vertices than the
fallback point-to-point Dijkstra; the per-backend ``settled`` counters of
:class:`~repro.network.oracle.OracleCounters` make that visible.

Distances are value-exact with respect to the Dijkstra fallback (the
equivalence property tests assert it pair by pair): shortcut costs are the
same float sums a Dijkstra relaxation would compute along the contracted
path, and both query shapes take the same minimum over the same meeting
candidates.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Sequence

import numpy as np

from repro.network.graph import RoadNetwork, Vertex

INFINITY = math.inf

#: witness searches stop after settling this many vertices (conservative:
#: an exhausted budget adds the shortcut, never drops one).
WITNESS_SETTLE_BUDGET = 60


class ContractionHierarchy:
    """A built contraction hierarchy answering exact distance queries.

    Build with :func:`build_contraction_hierarchy`. All query entry points
    work on CSR *positions*; the :class:`~repro.network.backends.CHBackend`
    translates vertex ids at the oracle boundary.

    Attributes:
        rank: ``(N,)`` contraction rank per position (higher = more important).
        num_shortcuts: shortcut edges added during construction.
        build_seconds: wall-clock construction time.
        searches: upward searches run so far (queries + bucket scans).
        settled: vertices settled across all upward searches.
    """

    def __init__(
        self,
        num_vertices: int,
        rank: list[int],
        up_indptr: list[int],
        up_indices: list[int],
        up_costs: list[float],
        num_shortcuts: int,
        build_seconds: float,
    ) -> None:
        self.num_vertices = num_vertices
        self.rank = rank
        self.up_indptr = up_indptr
        self.up_indices = up_indices
        self.up_costs = up_costs
        self.num_shortcuts = num_shortcuts
        self.build_seconds = build_seconds
        self.searches = 0
        self.settled = 0
        # bounded memo of upward search spaces as (nodes, dists) arrays —
        # the bucket side of every many-to-many join; worker positions and
        # request origins/destinations recur across dispatch batches
        self._search_space_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._search_space_cache_capacity = 50_000

    # ------------------------------------------------------------------ search

    def _upward_search(self, source: int) -> tuple[list[int], list[float]]:
        """Full upward Dijkstra from ``source``; returns settled (nodes, dists)."""
        indptr = self.up_indptr
        indices = self.up_indices
        costs = self.up_costs
        dist: dict[int, float] = {source: 0.0}
        done: set[int] = set()
        heap: list[tuple[float, int]] = [(0.0, source)]
        nodes: list[int] = []
        dists: list[float] = []
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            cost, node = pop(heap)
            if node in done:
                continue
            done.add(node)
            nodes.append(node)
            dists.append(cost)
            for slot in range(indptr[node], indptr[node + 1]):
                neighbour = indices[slot]
                candidate = cost + costs[slot]
                if candidate < dist.get(neighbour, INFINITY):
                    dist[neighbour] = candidate
                    push(heap, (candidate, neighbour))
        self.searches += 1
        self.settled += len(nodes)
        return nodes, dists

    def search_space(self, position: int) -> tuple[np.ndarray, np.ndarray]:
        """Memoised full upward search space of ``position`` as flat arrays."""
        cached = self._search_space_cache.get(position)
        if cached is not None:
            return cached
        nodes, dists = self._upward_search(position)
        space = (
            np.asarray(nodes, dtype=np.int64),
            np.asarray(dists, dtype=np.float64),
        )
        cache = self._search_space_cache
        if len(cache) >= self._search_space_cache_capacity:
            # drop the oldest entry (insertion order); plain FIFO is enough
            cache.pop(next(iter(cache)))
        cache[position] = space
        return space

    def _dense_search_space(self, position: int) -> np.ndarray:
        """The upward search space of ``position`` scattered into a dense row.

        This is the array form of the classic CH *bucket* technique: entry
        ``x`` of the row is the bucket "``x`` is reachable upward from
        ``position`` at this distance" (``inf`` = no bucket), so a whole
        batch is answered by per-target gathers against one row.
        """
        nodes, dists = self.search_space(position)
        dense = np.full(self.num_vertices, INFINITY, dtype=np.float64)
        dense[nodes] = dists
        return dense

    def query_positions(self, source: int, target: int) -> float:
        """Exact distance between two CSR positions (``inf`` if disconnected).

        The answer is the minimum over all meeting vertices of the two full
        upward search spaces — by the CH invariant some vertex of a shortest
        path is reachable upward from both endpoints with exact distances.
        The same gather + minimum the batched queries run, so scalar and
        batched answers are bit-for-bit identical.
        """
        if source == target:
            return 0.0
        dense = self._dense_search_space(source)
        nodes, dists = self.search_space(target)
        return float(np.min(dense[nodes] + dists))

    def distances_many_positions(
        self, source: int, targets: np.ndarray | Sequence[int]
    ) -> np.ndarray:
        """Distances from ``source`` to many positions via the bucket join.

        One upward sweep from ``source`` (scattered dense), then one small
        gather + minimum per *unique* target search space (served from the
        bounded memo) — the whole batch costs ``#unique_targets + 1`` tiny
        upward searches instead of ``len(targets)`` point-to-point Dijkstras.
        """
        targets = np.asarray(targets, dtype=np.int64)
        count = targets.size
        result = np.full(count, INFINITY, dtype=np.float64)
        if count == 0:
            return result
        dense = self._dense_search_space(source)
        memo: dict[int, float] = {}
        for slot in range(count):
            t = int(targets[slot])
            if t == source:
                result[slot] = 0.0
                continue
            value = memo.get(t)
            if value is None:
                nodes, dists = self.search_space(t)
                value = float(np.min(dense[nodes] + dists))
                memo[t] = value
            result[slot] = value
        return result

    def stats(self) -> dict[str, float]:
        """Build/search statistics for benchmarks and reports."""
        return {
            "vertices": float(self.num_vertices),
            "shortcuts": float(self.num_shortcuts),
            "upward_edges": float(len(self.up_indices)),
            "build_seconds": self.build_seconds,
            "searches": float(self.searches),
            "settled_vertices": float(self.settled),
        }


def build_contraction_hierarchy(
    network: RoadNetwork, witness_settle_budget: int = WITNESS_SETTLE_BUDGET
) -> ContractionHierarchy:
    """Contract ``network`` into a :class:`ContractionHierarchy`.

    Deterministic: the lazy priority queue breaks ties by position, witness
    searches are plain Dijkstras with a settle budget (exhausting the budget
    conservatively adds the shortcut), and each contracted vertex freezes its
    remaining adjacency — by construction all higher-ranked — as its upward
    edges.
    """
    started = time.perf_counter()
    csr = network.csr
    n = csr.num_vertices
    indptr = csr.indptr_list
    indices = csr.indices_list
    costs = csr.costs_list
    # mutable overlay graph: position -> {neighbour position: cost}
    adjacency: list[dict[int, float]] = [{} for _ in range(n)]
    for u in range(n):
        row = adjacency[u]
        for slot in range(indptr[u], indptr[u + 1]):
            v = indices[slot]
            cost = costs[slot]
            current = row.get(v)
            if current is None or cost < current:
                row[v] = cost
    rank = [-1] * n
    deleted_neighbours = [0] * n
    num_shortcuts = 0
    up_edges: list[list[tuple[int, float]]] = [[] for _ in range(n)]

    def simulate(v: int) -> tuple[list[tuple[int, int, float]], int]:
        """Shortcuts required to contract ``v`` and its resulting priority."""
        neighbours = sorted(adjacency[v].items())
        shortcuts: list[tuple[int, int, float]] = []
        for i, (a, cost_a) in enumerate(neighbours):
            rest = neighbours[i + 1:]
            if not rest:
                continue
            bounds = {b: cost_a + cost_b for b, cost_b in rest}
            witness = _witness_search(
                adjacency, a, v, set(bounds), max(bounds.values()), witness_settle_budget
            )
            for b, bound in bounds.items():
                if witness.get(b, INFINITY) > bound:
                    shortcuts.append((a, b, bound))
        priority = len(shortcuts) - len(neighbours) + deleted_neighbours[v]
        return shortcuts, priority

    heap: list[tuple[int, int]] = []
    for v in range(n):
        _, priority = simulate(v)
        heap.append((priority, v))
    heapq.heapify(heap)

    next_rank = 0
    while heap:
        _, v = heapq.heappop(heap)
        if rank[v] >= 0:
            continue
        shortcuts, priority = simulate(v)
        if heap and priority > heap[0][0]:
            heapq.heappush(heap, (priority, v))
            continue
        # contract v: freeze upward edges, splice in shortcuts, detach
        rank[v] = next_rank
        next_rank += 1
        up_edges[v] = sorted(adjacency[v].items())
        for neighbour in adjacency[v]:
            del adjacency[neighbour][v]
            deleted_neighbours[neighbour] += 1
        adjacency[v] = {}
        for a, b, cost in shortcuts:
            current = adjacency[a].get(b)
            if current is None or cost < current:
                adjacency[a][b] = cost
                adjacency[b][a] = cost
                num_shortcuts += 1

    up_indptr = [0] * (n + 1)
    up_indices: list[int] = []
    up_costs: list[float] = []
    for v in range(n):
        for neighbour, cost in up_edges[v]:
            up_indices.append(neighbour)
            up_costs.append(cost)
        up_indptr[v + 1] = len(up_indices)
    return ContractionHierarchy(
        num_vertices=n,
        rank=rank,
        up_indptr=up_indptr,
        up_indices=up_indices,
        up_costs=up_costs,
        num_shortcuts=num_shortcuts,
        build_seconds=time.perf_counter() - started,
    )


def _witness_search(
    adjacency: list[dict[int, float]],
    source: int,
    skip: int,
    targets: set[int],
    max_cost: float,
    settle_budget: int,
) -> dict[int, float]:
    """Bounded Dijkstra over the overlay graph avoiding ``skip``.

    Returns the distances of the settled targets; a target missing from the
    result was not certified within the budget (so the caller adds the
    shortcut — conservative, never wrong).
    """
    dist: dict[int, float] = {source: 0.0}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    found: dict[int, float] = {}
    remaining = len(targets)
    budget = settle_budget
    pop = heapq.heappop
    push = heapq.heappush
    while heap and budget > 0 and remaining > 0:
        cost, node = pop(heap)
        if node in done:
            continue
        if cost > max_cost:
            break
        done.add(node)
        budget -= 1
        if node in targets:
            found[node] = cost
            remaining -= 1
        for neighbour, edge_cost in adjacency[node].items():
            if neighbour == skip or neighbour in done:
                continue
            candidate = cost + edge_cost
            if candidate < dist.get(neighbour, INFINITY) and candidate <= max_cost:
                dist[neighbour] = candidate
                push(heap, (candidate, neighbour))
    return found
