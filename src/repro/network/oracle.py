"""The distance oracle shared by every algorithm in the reproduction.

The paper (Section 4.2) assumes that a shortest-distance query takes O(1) time,
backed by a hub-label index plus an LRU cache; all compared algorithms share
the same oracle so that effectiveness/efficiency comparisons are fair. The
:class:`DistanceOracle` mirrors that setup:

* **exact distances** come from (in order of preference) the LRU cache, the
  optional hub-label index, or an on-the-fly bidirectional Dijkstra whose
  result is cached;
* **exact paths** (vertex sequences) are needed by the simulator to move
  workers along their planned routes; they are cached separately;
* **admissible lower bounds** (Euclidean distance divided by the maximum
  network speed, optionally sharpened by landmark bounds) power the decision
  phase of ``pruneGreedyDP`` (Lemma 7) without spending exact queries.

The oracle also counts exact queries. The paper reports "tens of billions of
shortest distance queries saved" by the pruning strategy of Lemma 8; our
benchmarks report the same counter deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.cache import LRUCache
from repro.network.graph import RoadNetwork, Vertex
from repro.network.hub_labeling import HubLabels, build_hub_labels
from repro.network.landmarks import LandmarkIndex
from repro.network.shortest_path import bidirectional_dijkstra, single_source_distances


@dataclass
class OracleCounters:
    """Counters describing how the oracle has been used."""

    distance_queries: int = 0
    path_queries: int = 0
    lower_bound_queries: int = 0
    dijkstra_runs: int = 0

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "distance_queries": self.distance_queries,
            "path_queries": self.path_queries,
            "lower_bound_queries": self.lower_bound_queries,
            "dijkstra_runs": self.dijkstra_runs,
        }


class DistanceOracle:
    """Exact shortest distances, shortest paths and admissible lower bounds.

    Args:
        network: the road network to answer queries on.
        use_hub_labels: build a pruned 2-hop labelling up front (equivalent to
            ``precompute="hub_labels"``).
        precompute: acceleration structure built eagerly — ``None`` (cache +
            Dijkstra only), ``"hub_labels"`` (2-hop labels), or ``"apsp"``
            (dense all-pairs matrix; the fastest choice for networks up to a
            few thousand vertices, which is what the paper's O(1)-query
            assumption models).
        cache_size: capacity of the distance LRU cache.
        path_cache_size: capacity of the path LRU cache.
        landmark_index: optional :class:`LandmarkIndex` to sharpen lower bounds.
    """

    def __init__(
        self,
        network: RoadNetwork,
        use_hub_labels: bool = False,
        precompute: str | None = None,
        cache_size: int = 200_000,
        path_cache_size: int = 20_000,
        landmark_index: LandmarkIndex | None = None,
    ) -> None:
        self.network = network
        self.counters = OracleCounters()
        self._distance_cache: LRUCache[tuple[Vertex, Vertex], float] = LRUCache(cache_size)
        self._path_cache: LRUCache[tuple[Vertex, Vertex], tuple[Vertex, ...]] = LRUCache(
            path_cache_size
        )
        if precompute is None and use_hub_labels:
            precompute = "hub_labels"
        if precompute not in (None, "hub_labels", "apsp"):
            raise ValueError(f"unknown precompute mode {precompute!r}")
        self._hub_labels: HubLabels | None = None
        self._apsp: np.ndarray | None = None
        self._vertex_index: dict[Vertex, int] | None = None
        if precompute == "hub_labels":
            self._hub_labels = build_hub_labels(network)
        elif precompute == "apsp":
            self._build_apsp()
        self._landmarks = landmark_index
        # pre-computed constant for Euclidean time bounds
        self._max_speed = network.max_speed

    def _build_apsp(self) -> None:
        """Precompute the dense all-pairs shortest-distance matrix."""
        vertices = sorted(self.network.vertices())
        index = {vertex: position for position, vertex in enumerate(vertices)}
        matrix = np.full((len(vertices), len(vertices)), np.inf, dtype=np.float64)
        for vertex in vertices:
            row = index[vertex]
            for target, cost in single_source_distances(self.network, vertex).items():
                matrix[row, index[target]] = cost
        self._apsp = matrix
        self._vertex_index = index

    # ----------------------------------------------------------------- exact

    def distance(self, u: Vertex, v: Vertex) -> float:
        """Exact shortest travel time (seconds) between vertices ``u`` and ``v``.

        Counted as one shortest-distance query regardless of cache hits, which
        mirrors how the paper counts algorithm-issued queries.
        """
        self.counters.distance_queries += 1
        if u == v:
            return 0.0
        if self._apsp is not None and self._vertex_index is not None:
            return float(self._apsp[self._vertex_index[u], self._vertex_index[v]])
        key = (u, v) if u <= v else (v, u)
        cached = self._distance_cache.get(key)
        if cached is not None:
            return cached
        if self._hub_labels is not None:
            result = self._hub_labels.query(u, v)
        else:
            result = self._run_dijkstra(key[0], key[1])
        self._distance_cache.put(key, result)
        return result

    def path(self, u: Vertex, v: Vertex) -> list[Vertex]:
        """Exact shortest path (vertex sequence) from ``u`` to ``v``."""
        self.counters.path_queries += 1
        if u == v:
            return [u]
        key = (u, v)
        cached = self._path_cache.get(key)
        if cached is not None:
            return list(cached)
        cost, path = bidirectional_dijkstra(self.network, u, v)
        self.counters.dijkstra_runs += 1
        self._path_cache.put(key, tuple(path))
        # opportunistically seed the distance cache
        distance_key = (u, v) if u <= v else (v, u)
        self._distance_cache.put(distance_key, cost)
        return path

    def _run_dijkstra(self, u: Vertex, v: Vertex) -> float:
        cost, path = bidirectional_dijkstra(self.network, u, v)
        self.counters.dijkstra_runs += 1
        self._path_cache.put((u, v), tuple(path))
        return cost

    # ---------------------------------------------------------- lower bounds

    def lower_bound(self, u: Vertex, v: Vertex) -> float:
        """Admissible lower bound on the travel time between ``u`` and ``v``.

        Uses the Euclidean distance divided by the maximum network speed —
        never larger than the true shortest travel time because no edge is
        shorter than the straight line between its endpoints nor faster than
        the maximum speed. If a landmark index is attached, the tighter of the
        two admissible bounds is returned.

        Lower-bound queries are counted separately and deliberately **not** as
        exact distance queries (Section 5.1 stresses that the decision phase
        needs only a single exact query per request).
        """
        self.counters.lower_bound_queries += 1
        if u == v:
            return 0.0
        euclidean_metres = self.network.euclidean(u, v)
        bound = euclidean_metres / self._max_speed
        if self._landmarks is not None:
            bound = max(bound, self._landmarks.lower_bound(u, v))
        return bound

    def euclidean_metres(self, u: Vertex, v: Vertex) -> float:
        """Straight-line distance in metres (not counted as an exact query)."""
        return self.network.euclidean(u, v)

    # ------------------------------------------------------------- management

    @property
    def has_hub_labels(self) -> bool:
        """Whether a hub-label index is attached."""
        return self._hub_labels is not None

    @property
    def hub_labels(self) -> HubLabels | None:
        """The attached hub-label index, if any."""
        return self._hub_labels

    def cache_statistics(self) -> dict[str, float]:
        """Hit rates and sizes of the distance/path caches."""
        return {
            "distance_cache_size": float(len(self._distance_cache)),
            "distance_cache_hit_rate": self._distance_cache.statistics.hit_rate,
            "path_cache_size": float(len(self._path_cache)),
            "path_cache_hit_rate": self._path_cache.statistics.hit_rate,
        }

    def reset_counters(self) -> None:
        """Zero the oracle counters (caches keep their contents)."""
        self.counters = OracleCounters()
