"""The distance oracle shared by every algorithm in the reproduction.

The paper (Section 4.2) assumes that a shortest-distance query takes O(1) time,
backed by a hub-label index plus an LRU cache; all compared algorithms share
the same oracle so that effectiveness/efficiency comparisons are fair. The
:class:`DistanceOracle` mirrors that setup:

* **exact distances** come from a pluggable
  :class:`~repro.network.backends.DistanceBackend` — the dense APSP matrix,
  a contraction hierarchy, array-native hub labels, or cached on-the-fly
  Dijkstra (``backend="auto"`` picks by network size and query volume);
* **exact paths** (vertex sequences) are needed by the simulator to move
  workers along their planned routes; they are cached separately;
* **admissible lower bounds** (Euclidean distance divided by the maximum
  network speed, optionally sharpened by landmark bounds) power the decision
  phase of ``pruneGreedyDP`` (Lemma 7) without spending exact queries.

Besides the scalar queries, the oracle exposes **batched APIs** —
:meth:`DistanceOracle.distances_many`, :meth:`DistanceOracle.distance_pairs`
and :meth:`DistanceOracle.euclidean_lower_bounds` — that answer a whole
candidate set in one pass: a fancy-indexing gather on the APSP matrix, a
bucket sweep on the contraction hierarchy, a vectorized label join on the
hub labels, or one truncated multi-target Dijkstra on the fallback. The
batched calls return exactly the values (and bump exactly the
``distance_queries`` counters) of the equivalent scalar loops.

Because the network is undirected, both LRU caches use symmetric
``(min, max)`` keys — a cached ``u -> v`` path answers the ``v -> u`` query
reversed, doubling the effective cache capacity. Only the Dijkstra backend
consults the distance LRU; the precomputed backends answer directly, which
the cache statistics report as ``"bypassed (<backend>)"`` rather than a
misleading 0.0 hit rate.

The oracle also counts exact queries. The paper reports "tens of billions of
shortest distance queries saved" by the pruning strategy of Lemma 8; our
benchmarks report the same counter deltas, alongside per-backend query/settle
counters and the cache hit/miss/eviction statistics surfaced through
:meth:`OracleCounters.snapshot`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.artifacts import ArtifactStore, network_content_hash
from repro.artifacts.store import PERSISTABLE_BACKENDS
from repro.exceptions import DisconnectedError
from repro.network.backends import (
    APSPBackend,
    CHBackend,
    DistanceBackend,
    HubLabelBackend,
    make_backend,
    select_backend_name,
)
from repro.network.cache import LRUCache
from repro.network.graph import RoadNetwork, Vertex
from repro.network.hub_labeling import HubLabels
from repro.network.landmarks import LandmarkIndex
from repro.network.shortest_path import (
    bidirectional_dijkstra,
    bidirectional_dijkstra_reference,
)


@dataclass
class OracleCounters:
    """Counters describing how the oracle has been used.

    When the counters belong to a live oracle, the two LRU caches are
    attached so :meth:`snapshot` can surface their hit/miss/eviction
    statistics next to the query counts, and ``backend``/``cache_bypassed``
    describe the attached distance backend so bypassed caches are reported
    honestly instead of as a 0.0 hit rate.
    """

    distance_queries: int = 0
    path_queries: int = 0
    lower_bound_queries: int = 0
    dijkstra_runs: int = 0
    #: per-backend distance queries answered (backend name -> count).
    backend_queries: dict[str, int] = field(default_factory=dict)
    #: per-backend vertices settled by internal searches (search effort).
    backend_settled: dict[str, int] = field(default_factory=dict)
    backend: str = "dijkstra"
    cache_bypassed: bool = False
    distance_cache: "LRUCache | None" = field(default=None, repr=False, compare=False)
    path_cache: "LRUCache | None" = field(default=None, repr=False, compare=False)

    def record_backend(self, name: str, queries: int = 0, settled: int = 0) -> None:
        """Attribute ``queries`` answered / ``settled`` vertices to a backend."""
        if queries:
            self.backend_queries[name] = self.backend_queries.get(name, 0) + queries
        if settled:
            self.backend_settled[name] = self.backend_settled.get(name, 0) + settled

    @classmethod
    def merge(cls, counters: "Iterable[OracleCounters]") -> "OracleCounters":
        """Sum many counter snapshots into one fleet-wide total.

        Used to aggregate the per-shard counters of the sharded dispatcher:
        every shard's query counts are *added* instead of the last shard
        overwriting shared report keys. Cache references are not carried
        over — per-shard counters usually share one oracle, so attaching the
        caches here would double-count their statistics.
        """
        total = cls()
        for item in counters:
            total.distance_queries += item.distance_queries
            total.path_queries += item.path_queries
            total.lower_bound_queries += item.lower_bound_queries
            total.dijkstra_runs += item.dijkstra_runs
            for name, value in item.backend_queries.items():
                total.backend_queries[name] = total.backend_queries.get(name, 0) + value
            for name, value in item.backend_settled.items():
                total.backend_settled[name] = total.backend_settled.get(name, 0) + value
        return total

    def snapshot(self) -> dict[str, int | float | str]:
        """Return the counters (and any attached cache statistics) as a dict.

        The distance-cache hit rate of a backend that never consults the LRU
        is reported as ``"bypassed (<backend>)"`` — a 0.0 would misread as
        "the cache never helps" when the cache simply never ran.
        """
        snapshot: dict[str, int | float | str] = {
            "distance_queries": self.distance_queries,
            "path_queries": self.path_queries,
            "lower_bound_queries": self.lower_bound_queries,
            "dijkstra_runs": self.dijkstra_runs,
        }
        for name, value in sorted(self.backend_queries.items()):
            snapshot[f"backend_{name}_queries"] = value
        for name, value in sorted(self.backend_settled.items()):
            snapshot[f"backend_{name}_settled"] = value
        for prefix, cache in (
            ("distance_cache", self.distance_cache),
            ("path_cache", self.path_cache),
        ):
            if cache is None:
                continue
            statistics = cache.statistics
            snapshot[f"{prefix}_hits"] = statistics.hits
            snapshot[f"{prefix}_misses"] = statistics.misses
            snapshot[f"{prefix}_evictions"] = statistics.evictions
            if prefix == "distance_cache" and self.cache_bypassed:
                snapshot[f"{prefix}_hit_rate"] = f"bypassed ({self.backend})"
            else:
                snapshot[f"{prefix}_hit_rate"] = statistics.hit_rate
        return snapshot


class DistanceOracle:
    """Exact shortest distances, shortest paths and admissible lower bounds.

    Args:
        network: the road network to answer queries on.
        use_hub_labels: build a pruned 2-hop labelling up front (equivalent to
            ``backend="hub_labels"``).
        precompute: legacy accelerator spelling — ``None`` (cache + Dijkstra
            only), ``"hub_labels"`` or ``"apsp"``; superseded by ``backend``.
        backend: distance backend name — ``"apsp"``, ``"ch"``,
            ``"hub_labels"``, ``"dijkstra"`` or ``"auto"`` (pick by network
            size / ``query_volume_hint``). All backends are value-exact; they
            differ only in build cost and query speed.
        cache_size: capacity of the distance LRU cache.
        path_cache_size: capacity of the path LRU cache.
        landmark_index: optional :class:`LandmarkIndex` to sharpen lower bounds.
        query_volume_hint: expected number of exact queries, consulted by the
            ``"auto"`` policy (tiny workloads skip preprocessing entirely).
        artifact_dir: optional root of a content-addressed
            :class:`~repro.artifacts.ArtifactStore`. Precomputable backends
            are then served from disk when a cached build for this exact
            network exists (bit-identical to a fresh build) and persisted
            after a fresh build otherwise. With the store attached, the
            ``"auto"`` policy also prefers ``hub_labels`` over ``ch`` when a
            cached labelling already exists — its higher build cost is sunk,
            leaving only its faster queries.
    """

    def __init__(
        self,
        network: RoadNetwork,
        use_hub_labels: bool = False,
        precompute: str | None = None,
        cache_size: int = 200_000,
        path_cache_size: int = 20_000,
        landmark_index: LandmarkIndex | None = None,
        backend: str | None = None,
        query_volume_hint: int | None = None,
        artifact_dir: str | Path | None = None,
    ) -> None:
        self.network = network
        self._distance_cache: LRUCache[tuple[Vertex, Vertex], float] = LRUCache(cache_size)
        self._path_cache: LRUCache[tuple[Vertex, Vertex], tuple[Vertex, ...]] = LRUCache(
            path_cache_size
        )
        if precompute is None and use_hub_labels:
            precompute = "hub_labels"
        if precompute not in (None, "hub_labels", "apsp"):
            raise ValueError(f"unknown precompute mode {precompute!r}")
        if backend is None:
            backend = precompute if precompute is not None else "dijkstra"
        elif precompute is not None and precompute != backend:
            raise ValueError(
                f"conflicting accelerators: precompute={precompute!r} vs backend={backend!r}"
            )
        self.artifact_store: ArtifactStore | None = (
            ArtifactStore(artifact_dir) if artifact_dir is not None else None
        )
        #: canonical CSR content hash — the artifact-store key (None without a store)
        self.content_hash: str | None = (
            network_content_hash(network) if self.artifact_store is not None else None
        )
        if backend == "auto":
            backend = select_backend_name(network.csr.num_vertices, query_volume_hint)
            if (
                backend == "ch"
                and self.artifact_store is not None
                and self.artifact_store.has(self.content_hash, "hub_labels")
            ):
                # the expensive labelling is already on disk: loading it costs
                # about as much as loading the CH but queries are faster
                backend = "hub_labels"
        # snapshot used to index the precomputed backends (their row/position
        # order is frozen at build time); geometric queries read the live
        # network.csr and max_speed instead, so Euclidean lower bounds track
        # vertex/edge additions (note the precomputed accelerators themselves
        # are still construction-time snapshots)
        self._csr = network.csr
        #: ablation switch for benchmarks: route every path/distance miss
        #: through the seed's dict-of-dict bidirectional Dijkstra to
        #: reconstruct the pre-CSR hot path.
        self.legacy_reference_mode = False
        self.counters = OracleCounters(
            distance_cache=self._distance_cache, path_cache=self._path_cache
        )
        if self.artifact_store is not None and backend in PERSISTABLE_BACKENDS:
            self._backend, self.artifact_loaded = self.artifact_store.load_or_build(
                backend, network, self, content_hash=self.content_hash
            )
        else:
            self._backend = make_backend(backend, network, self)
            #: whether the backend state came from the artifact store
            self.artifact_loaded = False
        self.counters.backend = self._backend.name
        self.counters.cache_bypassed = not self._backend.uses_distance_cache
        self._landmarks = landmark_index
        if landmark_index is not None:
            landmark_index.ensure_arrays(self._csr.position, self._csr.num_vertices)
        #: opt-in: answer path misses by walking the APSP matrix greedily
        #: (fastest, but may pick a different equal-cost path than Dijkstra,
        #: so downstream query counters can drift by a few ties; off by
        #: default to keep runs counter-identical with the reference path).
        self.apsp_path_walk = False

    # ----------------------------------------------------------------- exact

    def distance(self, u: Vertex, v: Vertex) -> float:
        """Exact shortest travel time (seconds) between vertices ``u`` and ``v``.

        Counted as one shortest-distance query regardless of cache hits, which
        mirrors how the paper counts algorithm-issued queries.
        """
        self.counters.distance_queries += 1
        self.counters.record_backend(self._backend.name, queries=1)
        return self._distance_uncounted(u, v)

    def _distance_uncounted(self, u: Vertex, v: Vertex) -> float:
        """The :meth:`distance` core without counter bookkeeping."""
        if u == v:
            return 0.0
        return self._backend.distance(u, v)

    def distances_many(self, source: Vertex, targets: Sequence[Vertex]) -> np.ndarray:
        """Exact distances from ``source`` to every vertex in ``targets``.

        Semantically identical to ``[distance(source, t) for t in targets]``
        — same values, same counter increments — but answered in one batched
        backend pass (matrix gather, bucket sweep, label join, or a single
        truncated multi-target Dijkstra that consults and populates the
        distance cache and dedupes repeated targets).
        """
        count = len(targets)
        self.counters.distance_queries += count
        if count == 0:
            return np.empty(0, dtype=np.float64)
        self.counters.record_backend(self._backend.name, queries=count)
        return self._backend.distances_many(source, targets)

    def distance_pairs(self, us: Sequence[Vertex], vs: Sequence[Vertex]) -> np.ndarray:
        """Exact distances between elementwise pairs ``(us[k], vs[k])``.

        Semantically identical to ``[distance(u, v) for u, v in zip(us, vs)]``
        (values and counters); one batched backend pass.
        """
        count = len(us)
        if count != len(vs):
            raise ValueError(f"pair arrays differ in length: {count} != {len(vs)}")
        self.counters.distance_queries += count
        if count == 0:
            return np.empty(0, dtype=np.float64)
        self.counters.record_backend(self._backend.name, queries=count)
        return self._backend.distance_pairs(us, vs)

    def endpoint_distances(
        self, vertices: Sequence[Vertex], origin: Vertex, destination: Vertex
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact distances from every vertex to two shared endpoints.

        Semantically identical (values and counters) to the scalar pair
        ``[distance(v, origin) for v], [distance(v, destination) for v]`` —
        one translation pass serves both endpoints; this is the grouped call
        behind the linear DP's batch prefetch (Lemma 9).
        """
        count = len(vertices)
        self.counters.distance_queries += 2 * count
        if count == 0:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty
        self.counters.record_backend(self._backend.name, queries=2 * count)
        return self._backend.endpoint_distances(vertices, origin, destination)

    def path(self, u: Vertex, v: Vertex) -> list[Vertex]:
        """Exact shortest path (vertex sequence) from ``u`` to ``v``.

        Paths are cached under symmetric ``(min, max)`` keys; a reversed
        cached path answers the opposite direction (the network is
        undirected), doubling the effective cache capacity. With the dense
        APSP table attached, a miss is answered by a greedy matrix walk
        (each step moves to the neighbour minimising ``edge + D[n, target]``)
        instead of a full bidirectional Dijkstra.
        """
        self.counters.path_queries += 1
        if u == v:
            return [u]
        forward = u <= v
        key = (u, v) if forward else (v, u)
        cached = self._path_cache.get(key)
        if cached is not None:
            return list(cached) if forward else list(reversed(cached))
        path = None
        if self.has_apsp and self.apsp_path_walk and not self.legacy_reference_mode:
            path = self._apsp_path(u, v)
        if path is None:
            search = (
                bidirectional_dijkstra_reference
                if self.legacy_reference_mode
                else bidirectional_dijkstra
            )
            cost, path = search(self.network, u, v)
            self.counters.dijkstra_runs += 1
            # opportunistically seed the distance cache
            self._distance_cache.put(key, cost)
        self._path_cache.put(key, tuple(path) if forward else tuple(reversed(path)))
        return path

    def _apsp_path(self, u: Vertex, v: Vertex) -> list[Vertex] | None:
        """Reconstruct a shortest path by walking the APSP matrix greedily.

        Returns ``None`` when the walk cannot make progress (zero-cost cycles
        at equal coordinates) so the caller falls back to Dijkstra.

        Raises:
            DisconnectedError: if no path exists.
        """
        csr = self._csr
        matrix = self._apsp
        assert matrix is not None
        position = csr.position
        current = position[u]
        target = position[v]
        to_target = matrix[:, target]
        if not np.isfinite(to_target[current]):
            raise DisconnectedError(f"no path between {u} and {v}")
        indptr = csr.indptr
        indices = csr.indices
        costs = csr.costs
        vertex_ids = csr.vertex_ids_list
        path = [u]
        for _ in range(csr.num_vertices):
            begin, end = indptr[current], indptr[current + 1]
            neighbours = indices[begin:end]
            totals = costs[begin:end] + to_target[neighbours]
            current = int(neighbours[int(np.argmin(totals))])
            path.append(vertex_ids[current])
            if current == target:
                return path
        return None  # no progress within |V| hops: degenerate zero-cost ties

    # ---------------------------------------------------------- lower bounds

    def lower_bound(self, u: Vertex, v: Vertex) -> float:
        """Admissible lower bound on the travel time between ``u`` and ``v``.

        Uses the Euclidean distance divided by the maximum network speed —
        never larger than the true shortest travel time because no edge is
        shorter than the straight line between its endpoints nor faster than
        the maximum speed. If a landmark index is attached, the tighter of the
        two admissible bounds is returned.

        Lower-bound queries are counted separately and deliberately **not** as
        exact distance queries (Section 5.1 stresses that the decision phase
        needs only a single exact query per request). The counter records the
        probes actually issued, so the scalar decision walk (which re-probes
        ``j+1`` neighbours and early-exits) and the batched one (which probes
        each stop/endpoint pair exactly once) report different — equally
        honest — ``lower_bound_queries`` totals for identical outcomes;
        ``distance_queries``/``dijkstra_runs`` are implementation-invariant.
        """
        self.counters.lower_bound_queries += 1
        if u == v:
            return 0.0
        bound = self._euclidean_seconds(u, v)
        if self._landmarks is not None:
            bound = max(bound, self._landmarks.lower_bound(u, v))
        return bound

    def _euclidean_seconds(self, u: Vertex, v: Vertex) -> float:
        """Euclidean travel-time bound, elementwise-identical to the batch API.

        Deliberately ``sqrt(dx*dx + dy*dy)`` — the same IEEE operations the
        vectorized :meth:`euclidean_lower_bounds` performs — so scalar and
        batched bounds are bit-for-bit equal (the equivalence property tests
        assert exact equality, not approximation).
        """
        a = self.network.coordinates(u)
        b = self.network.coordinates(v)
        dx = a.x - b.x
        dy = a.y - b.y
        return math.sqrt(dx * dx + dy * dy) / self.network.max_speed

    def euclidean_lower_bounds(
        self, vertices: Sequence[Vertex], origin: Vertex, destination: Vertex
    ) -> tuple[np.ndarray, np.ndarray]:
        """Admissible lower bounds from many vertices to two endpoints.

        Returns ``(to_origin, to_destination)`` float64 arrays holding, for
        every vertex in ``vertices``, exactly the value
        ``lower_bound(vertex, origin)`` / ``lower_bound(vertex, destination)``
        — one vectorized pass over the CSR coordinate arrays (plus one over
        the landmark matrix when attached) instead of ``2 n`` scalar calls.
        The counter advances by ``2 n``, matching the scalar loop.
        """
        csr = self.network.csr
        positions = csr.positions_of(vertices)
        n = positions.size
        self.counters.lower_bound_queries += 2 * n
        if n == 0:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty
        xs, ys = csr.xs, csr.ys
        px, py = xs[positions], ys[positions]
        return (
            self._bounds_to_endpoint(csr, positions, px, py, origin),
            self._bounds_to_endpoint(csr, positions, px, py, destination),
        )

    def euclidean_lower_bounds_to(
        self, vertices: Sequence[Vertex], target: Vertex
    ) -> np.ndarray:
        """Single-endpoint variant of :meth:`euclidean_lower_bounds`."""
        csr = self.network.csr
        positions = csr.positions_of(vertices)
        self.counters.lower_bound_queries += positions.size
        if positions.size == 0:
            return np.empty(0, dtype=np.float64)
        px, py = csr.xs[positions], csr.ys[positions]
        return self._bounds_to_endpoint(csr, positions, px, py, target)

    def _bounds_to_endpoint(
        self, csr, positions: np.ndarray, px: np.ndarray, py: np.ndarray, endpoint: Vertex
    ) -> np.ndarray:
        endpoint_position = csr.position_of(endpoint)
        dx = px - csr.xs[endpoint_position]
        dy = py - csr.ys[endpoint_position]
        bounds = np.sqrt(dx * dx + dy * dy) / self.network.max_speed
        if self._landmarks is not None:
            self._landmarks.ensure_arrays(csr.position, csr.num_vertices)
            bounds = np.maximum(
                bounds, self._landmarks.lower_bounds_many(positions, endpoint_position)
            )
        return bounds

    def euclidean_metres(self, u: Vertex, v: Vertex) -> float:
        """Straight-line distance in metres (not counted as an exact query)."""
        return self.network.euclidean(u, v)

    # ------------------------------------------------------------- management

    @property
    def backend(self) -> DistanceBackend:
        """The attached distance backend."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Name of the attached distance backend."""
        return self._backend.name

    @property
    def has_hub_labels(self) -> bool:
        """Whether a hub-label index is attached."""
        return isinstance(self._backend, HubLabelBackend)

    @property
    def hub_labels(self) -> HubLabels | None:
        """The attached hub-label index, if any."""
        if isinstance(self._backend, HubLabelBackend):
            return self._backend.labels
        return None

    @property
    def has_apsp(self) -> bool:
        """Whether the dense all-pairs table is attached."""
        return isinstance(self._backend, APSPBackend)

    @property
    def _apsp(self) -> np.ndarray | None:
        """The dense all-pairs matrix, if the APSP backend is attached."""
        if isinstance(self._backend, APSPBackend):
            return self._backend.matrix
        return None

    @property
    def has_contraction_hierarchy(self) -> bool:
        """Whether a contraction hierarchy is attached."""
        return isinstance(self._backend, CHBackend)

    def cache_statistics(self) -> dict[str, float | str]:
        """Hit rates and sizes of the distance/path caches.

        A backend that never consults the distance LRU reports
        ``"bypassed (<backend>)"`` instead of a misleading 0.0 hit rate.
        """
        distance_hit_rate: float | str = self._distance_cache.statistics.hit_rate
        if self.counters.cache_bypassed:
            distance_hit_rate = f"bypassed ({self._backend.name})"
        return {
            "distance_cache_size": float(len(self._distance_cache)),
            "distance_cache_hit_rate": distance_hit_rate,
            "path_cache_size": float(len(self._path_cache)),
            "path_cache_hit_rate": self._path_cache.statistics.hit_rate,
        }

    def reset_counters(self) -> None:
        """Zero the oracle counters and cache statistics (caches keep their
        contents), so every simulation run reports per-run numbers."""
        self.counters = OracleCounters(
            distance_cache=self._distance_cache,
            path_cache=self._path_cache,
            backend=self._backend.name,
            cache_bypassed=not self._backend.uses_distance_cache,
        )
        self._distance_cache.reset_statistics()
        self._path_cache.reset_statistics()

    def clear_caches(self) -> None:
        """Drop both LRU caches' contents (and zero their statistics).

        Sweep tasks sharing one memoized oracle call this before each run so
        reported cache hit rates do not depend on which tasks happened to
        warm the caches earlier in the same process.
        """
        self._distance_cache.clear()
        self._path_cache.clear()
        self.reset_counters()

    def refresh_topology(self) -> None:
        """Rebuild the distance backend after a road-network mutation.

        Street closures/reopenings (``RoadNetwork.remove_edge`` /
        ``add_edge``) invalidate every precomputed distance: the backend is
        rebuilt against the mutated network (same backend kind), the CSR
        snapshot is re-taken, and both LRU caches are dropped. With an
        artifact store attached, the content hash is recomputed first so the
        rebuilt backend is stored/loaded under the *new* topology's key.

        Query counters keep accumulating across the refresh — a mid-run
        closure should not zero the run's reported query counts. A landmark
        index, whose precomputed distances are no longer admissible bounds on
        the new topology, is detached.
        """
        network = self.network
        self._csr = network.csr  # lazy property: rebuilds for the new topology
        backend_name = self._backend.name
        if self.artifact_store is not None:
            self.content_hash = network_content_hash(network)
            if backend_name in PERSISTABLE_BACKENDS:
                self._backend, self.artifact_loaded = self.artifact_store.load_or_build(
                    backend_name, network, self, content_hash=self.content_hash
                )
            else:
                self._backend = make_backend(backend_name, network, self)
                self.artifact_loaded = False
        else:
            self._backend = make_backend(backend_name, network, self)
            self.artifact_loaded = False
        self._landmarks = None
        self._distance_cache.clear()
        self._path_cache.clear()
        self.counters.backend = self._backend.name
        self.counters.cache_bypassed = not self._backend.uses_distance_cache
