"""Landmark (ALT) lower bounds for shortest-path distances.

Besides the Euclidean lower bound used by the paper's decision phase
(Section 5.1), the library offers landmark-based lower bounds via the
triangle inequality:

    dist(u, v) >= |dist(landmark, u) - dist(landmark, v)|

Landmark bounds are often much tighter than Euclidean bounds on road networks
with strong detours (rivers, ring roads). They are exposed as an optional,
strictly admissible alternative in the decision phase and as an ablation in the
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.graph import RoadNetwork, Vertex
from repro.network.shortest_path import single_source_distances


@dataclass
class LandmarkIndex:
    """Distances from a small set of landmark vertices to every vertex."""

    landmarks: list[Vertex] = field(default_factory=list)
    # distance tables: landmark -> {vertex: distance}
    tables: dict[Vertex, dict[Vertex, float]] = field(default_factory=dict)
    # dense (num_landmarks, N) matrix aligned to a CSR position map; built on
    # demand by ensure_arrays() so batched bound sharpening is one vectorized
    # pass instead of per-pair dict probing. inf marks unreachable vertices.
    _matrix: np.ndarray | None = field(default=None, repr=False, compare=False)
    _position: dict[Vertex, int] | None = field(default=None, repr=False, compare=False)

    def lower_bound(self, u: Vertex, v: Vertex) -> float:
        """Admissible lower bound on ``dist(u, v)`` (0.0 when no landmark covers both)."""
        best = 0.0
        for landmark in self.landmarks:
            table = self.tables[landmark]
            du = table.get(u)
            dv = table.get(v)
            if du is None or dv is None:
                continue
            bound = abs(du - dv)
            if bound > best:
                best = bound
        return best

    # ------------------------------------------------------------ vectorized

    def ensure_arrays(self, position: dict[Vertex, int], size: int) -> None:
        """Materialise the dense per-landmark distance matrix for ``position``.

        ``position`` is a CSR position map (vertex id -> dense index); the
        matrix is cached until a different map is supplied.
        """
        if self._matrix is not None and self._position is position:
            return
        matrix = np.full((len(self.landmarks), size), np.inf, dtype=np.float64)
        for row, landmark in enumerate(self.landmarks):
            for vertex, distance in self.tables[landmark].items():
                index = position.get(vertex)
                if index is not None:
                    matrix[row, index] = distance
        self._matrix = matrix
        self._position = position

    def lower_bounds_many(self, positions: np.ndarray, target_position: int) -> np.ndarray:
        """Vectorized :meth:`lower_bound` from many positions to one target.

        Requires a prior :meth:`ensure_arrays` call with the position map the
        indices refer to. Returns exactly the scalar values: the maximum of
        ``|dist(L, u) - dist(L, target)|`` over landmarks covering both
        endpoints, and 0.0 where no landmark does.
        """
        matrix = self._matrix
        if matrix is None or matrix.shape[0] == 0:
            return np.zeros(len(positions), dtype=np.float64)
        to_points = matrix[:, positions]  # (L, n)
        to_target = matrix[:, target_position][:, None]  # (L, 1)
        covered = np.isfinite(to_points) & np.isfinite(to_target)
        with np.errstate(invalid="ignore"):
            spread = np.abs(to_points - to_target)
        return np.where(covered, spread, 0.0).max(axis=0)

    @property
    def size_entries(self) -> int:
        """Total number of stored distances."""
        return sum(len(table) for table in self.tables.values())


def select_landmarks_farthest(
    network: RoadNetwork, count: int, rng: np.random.Generator | None = None
) -> list[Vertex]:
    """Greedy farthest-point landmark selection.

    Starts from a random vertex, then repeatedly picks the vertex farthest from
    the already chosen landmarks — the classical heuristic for ALT.
    """
    vertices = list(network.vertices())
    if not vertices or count <= 0:
        return []
    rng = rng or np.random.default_rng(0)
    first = vertices[int(rng.integers(len(vertices)))]
    landmarks = [first]
    best_distance = single_source_distances(network, first)
    while len(landmarks) < min(count, len(vertices)):
        farthest = max(
            (vertex for vertex in vertices if vertex not in landmarks),
            key=lambda vertex: best_distance.get(vertex, 0.0),
            default=None,
        )
        if farthest is None:
            break
        landmarks.append(farthest)
        distances = single_source_distances(network, farthest)
        for vertex, distance in distances.items():
            if distance < best_distance.get(vertex, float("inf")):
                best_distance[vertex] = distance
    return landmarks


def build_landmark_index(
    network: RoadNetwork, count: int = 8, rng: np.random.Generator | None = None
) -> LandmarkIndex:
    """Build a :class:`LandmarkIndex` with ``count`` farthest-point landmarks."""
    landmarks = select_landmarks_farthest(network, count, rng)
    tables = {landmark: single_source_distances(network, landmark) for landmark in landmarks}
    return LandmarkIndex(landmarks=landmarks, tables=tables)
