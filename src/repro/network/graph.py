"""Road-network graph model (Definition 1 of the paper).

A road network is an undirected graph ``G = (V, E)`` where every edge carries a
travel cost. The paper uses travel time and travel distance interchangeably; in
this library the canonical edge cost is the **travel time in seconds** obtained
from the edge length in metres and the speed of the edge's road class. The raw
length is kept alongside so distance-based statistics stay available.

Vertices carry planar coordinates (metres) which the decision phase of
``pruneGreedyDP`` uses for admissible Euclidean lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import RoadNetworkError
from repro.utils.geometry import Point

Vertex = int
"""Type alias for vertex identifiers (dense non-negative integers)."""


class CSRAdjacency:
    """Compressed-sparse-row view of a :class:`RoadNetwork`.

    The array-native hot path (CSR Dijkstra, batched oracle queries, the
    vectorized decision phase) works on *positions* — dense indices
    ``0..N-1`` assigned to the vertices in sorted-identifier order — instead
    of raw vertex identifiers. The adjacency of position ``i`` is
    ``indices[indptr[i]:indptr[i+1]]`` with travel costs in the matching
    slice of ``costs``; neighbours are sorted by vertex identifier so the
    layout is deterministic.

    Attributes:
        vertex_ids: ``(N,)`` int64 — vertex identifier of each position.
        indptr: ``(N+1,)`` int64 — row pointers.
        indices: ``(M,)`` int64 — neighbour positions (both directions of
            every undirected edge, so ``M = 2 |E|``).
        costs: ``(M,)`` float64 — travel times in seconds.
        xs, ys: ``(N,)`` float64 — vertex coordinates in metres.
        position: mapping ``vertex id -> position``.
    """

    def __init__(self, network: "RoadNetwork") -> None:
        ordered = sorted(network._coordinates)
        position = {vertex: index for index, vertex in enumerate(ordered)}
        n = len(ordered)
        self.vertex_ids = np.fromiter(ordered, dtype=np.int64, count=n)
        self.position = position
        self.xs = np.fromiter(
            (network._coordinates[v].x for v in ordered), dtype=np.float64, count=n
        )
        self.ys = np.fromiter(
            (network._coordinates[v].y for v in ordered), dtype=np.float64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices: list[int] = []
        costs: list[float] = []
        for row, vertex in enumerate(ordered):
            adjacency = network._adjacency.get(vertex, {})
            for neighbour in sorted(adjacency):
                indices.append(position[neighbour])
                costs.append(adjacency[neighbour])
            indptr[row + 1] = len(indices)
        self.indptr = indptr
        self.indices = np.asarray(indices, dtype=np.int64)
        self.costs = np.asarray(costs, dtype=np.float64)
        # dense id -> position lookup for vectorized translation (vertex ids
        # are near-dense in every generator; fall back to the dict otherwise)
        max_id = int(self.vertex_ids[-1]) if n else -1
        if n and max_id < 4 * n:
            lookup = np.full(max_id + 1, -1, dtype=np.int64)
            lookup[self.vertex_ids] = np.arange(n, dtype=np.int64)
            self._lookup: np.ndarray | None = lookup
        else:
            self._lookup = None
        # plain-list mirrors: Python-level Dijkstra loops index these ~3x
        # faster than numpy scalars (no boxing per element access)
        self.indptr_list: list[int] = indptr.tolist()
        self.indices_list: list[int] = self.indices.tolist()
        self.costs_list: list[float] = self.costs.tolist()
        self.vertex_ids_list: list[int] = self.vertex_ids.tolist()

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the CSR layout."""
        return len(self.vertex_ids)

    def position_of(self, vertex: Vertex) -> int:
        """Position of ``vertex`` in the CSR layout.

        Raises:
            RoadNetworkError: if the vertex does not exist.
        """
        try:
            return self.position[vertex]
        except KeyError as exc:
            raise RoadNetworkError(f"unknown vertex {vertex}") from exc

    def positions_of(self, vertices: Sequence[Vertex] | np.ndarray) -> np.ndarray:
        """Vectorized ``vertex id -> position`` translation."""
        ids = np.asarray(vertices, dtype=np.int64)
        if self._lookup is not None:
            if ids.size and (ids.min() < 0 or ids.max() >= self._lookup.size):
                out_of_range = ids[(ids < 0) | (ids >= self._lookup.size)]
                raise RoadNetworkError(f"unknown vertex {int(out_of_range[0])}")
            positions = self._lookup[ids]
            if positions.size and positions.min() < 0:
                missing = ids[positions < 0]
                raise RoadNetworkError(f"unknown vertex {int(missing[0])}")
            return positions
        try:
            return np.fromiter(
                (self.position[int(v)] for v in ids), dtype=np.int64, count=ids.size
            )
        except KeyError as exc:
            raise RoadNetworkError(f"unknown vertex {exc.args[0]}") from exc


@dataclass(frozen=True, slots=True)
class Edge:
    """An undirected road segment.

    Attributes:
        u: one endpoint.
        v: the other endpoint.
        length: segment length in metres.
        speed: free-flow travel speed in metres/second.
        road_class: descriptive label such as ``"motorway"`` or ``"residential"``.
    """

    u: Vertex
    v: Vertex
    length: float
    speed: float
    road_class: str = "residential"

    @property
    def cost(self) -> float:
        """Travel time of this segment in seconds."""
        return self.length / self.speed


@dataclass(frozen=True, slots=True)
class EdgeMutation:
    """One recorded topology mutation, replayable on an identical network.

    Instances are produced by :meth:`RoadNetwork.end_mutation_capture` and
    carry the full edge metadata so a ``close`` (``remove_edge``) or
    ``reopen`` (``add_edge``) can be re-applied verbatim on a *replica* of
    the network that recorded it — the basis of the cluster replica-sync
    ``NetworkUpdateCommand``. The dataclass is picklable and frozen so it
    can travel over worker pipes and live in the front door's journal.
    """

    kind: str
    """Either ``"close"`` (edge removed) or ``"reopen"`` (edge added)."""

    u: Vertex
    v: Vertex
    length: float
    speed: float
    road_class: str

    def apply(self, network: "RoadNetwork") -> None:
        """Re-apply this mutation to ``network``."""
        if self.kind == "close":
            network.remove_edge(self.u, self.v)
        elif self.kind == "reopen":
            network.add_edge(
                self.u, self.v, length=self.length, speed=self.speed,
                road_class=self.road_class,
            )
        else:  # pragma: no cover - constructor is internal
            raise RoadNetworkError(f"unknown edge mutation kind {self.kind!r}")


class RoadNetwork:
    """An undirected road network with per-vertex coordinates.

    The class offers O(1) access to vertex coordinates, adjacency with travel
    costs, and a few aggregate statistics (Table 4 of the paper). It is
    intentionally a plain adjacency-list structure; all shortest-path machinery
    lives in :mod:`repro.network.shortest_path` and
    :mod:`repro.network.hub_labeling`.
    """

    def __init__(self, name: str = "road-network") -> None:
        self.name = name
        self._coordinates: dict[Vertex, Point] = {}
        # adjacency: vertex -> {neighbour: cost_seconds}
        self._adjacency: dict[Vertex, dict[Vertex, float]] = {}
        # keep edge metadata for statistics and IO round-trips
        self._edges: dict[tuple[Vertex, Vertex], Edge] = {}
        self._max_speed: float = 0.0
        # CSR view, rebuilt lazily after topology mutations
        self._csr: CSRAdjacency | None = None
        self._topology_version: int = 0
        self._csr_version: int = -1
        # when not None, add_edge/remove_edge append EdgeMutation records
        self._mutation_capture: list[EdgeMutation] | None = None

    # ------------------------------------------------------------- mutation log

    def begin_mutation_capture(self) -> None:
        """Start recording edge mutations for later replay.

        Every subsequent :meth:`add_edge` / :meth:`remove_edge` appends an
        :class:`EdgeMutation` until :meth:`end_mutation_capture` is called.
        Used by the event engine to ship live network updates to cluster
        replicas as replayable commands.
        """
        self._mutation_capture = []

    def end_mutation_capture(self) -> tuple[EdgeMutation, ...]:
        """Stop recording and return the mutations captured since ``begin``."""
        captured = self._mutation_capture or ()
        self._mutation_capture = None
        return tuple(captured)

    # ------------------------------------------------------------------ build

    def add_vertex(self, vertex: Vertex, point: Point) -> None:
        """Register ``vertex`` at coordinates ``point``.

        Re-adding an existing vertex with different coordinates is an error.
        """
        existing = self._coordinates.get(vertex)
        if existing is not None and existing != point:
            raise RoadNetworkError(
                f"vertex {vertex} already exists at {existing}, cannot move it to {point}"
            )
        self._coordinates[vertex] = point
        self._adjacency.setdefault(vertex, {})
        self._topology_version += 1

    def add_edge(
        self,
        u: Vertex,
        v: Vertex,
        length: float | None = None,
        speed: float = 10.0,
        road_class: str = "residential",
    ) -> Edge:
        """Add an undirected edge between existing vertices ``u`` and ``v``.

        Args:
            u: first endpoint (must have been added).
            v: second endpoint (must have been added).
            length: edge length in metres; defaults to the Euclidean distance
                between the endpoints.
            speed: travel speed in metres/second (> 0).
            road_class: label used for statistics only.

        Returns:
            The created :class:`Edge`.

        Raises:
            RoadNetworkError: for unknown endpoints, self-loops, non-positive
                speed, or a length shorter than the straight-line distance
                (which would break Euclidean lower bounds).
        """
        if u == v:
            raise RoadNetworkError(f"self-loop on vertex {u} is not allowed")
        if u not in self._coordinates or v not in self._coordinates:
            raise RoadNetworkError(f"both endpoints must exist before adding edge ({u}, {v})")
        if speed <= 0:
            raise RoadNetworkError(f"edge ({u}, {v}) speed must be positive, got {speed}")
        straight = self._coordinates[u].distance_to(self._coordinates[v])
        if length is None:
            length = straight
        if length < straight - 1e-6:
            raise RoadNetworkError(
                f"edge ({u}, {v}) length {length:.3f} m is shorter than the straight-line "
                f"distance {straight:.3f} m; Euclidean lower bounds would be violated"
            )
        if length < 0:
            raise RoadNetworkError(f"edge ({u}, {v}) length must be non-negative")
        edge = Edge(u=u, v=v, length=float(length), speed=float(speed), road_class=road_class)
        cost = edge.cost
        previous = self._adjacency[u].get(v)
        if previous is None or cost < previous:
            # keep the cheaper edge if a parallel edge is added
            self._adjacency[u][v] = cost
            self._adjacency[v][u] = cost
            self._edges[self._edge_key(u, v)] = edge
            self._topology_version += 1
            if self._mutation_capture is not None:
                self._mutation_capture.append(EdgeMutation(
                    "reopen", edge.u, edge.v, edge.length, edge.speed,
                    edge.road_class,
                ))
        self._max_speed = max(self._max_speed, edge.speed)
        return edge

    def remove_edge(self, u: Vertex, v: Vertex) -> Edge:
        """Remove the undirected edge between ``u`` and ``v`` (street closure).

        The removed :class:`Edge` is returned so callers can reopen the street
        later with :meth:`add_edge` using the original length/speed metadata.
        ``_max_speed`` is deliberately *not* recomputed: after removing the
        fastest edge it may overestimate, which keeps Euclidean travel-time
        lower bounds admissible (they only get looser, never wrong).

        Raises:
            RoadNetworkError: if no such edge exists.
        """
        key = self._edge_key(u, v)
        edge = self._edges.pop(key, None)
        if edge is None:
            raise RoadNetworkError(f"no edge between {u} and {v}")
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._topology_version += 1
        if self._mutation_capture is not None:
            self._mutation_capture.append(EdgeMutation(
                "close", edge.u, edge.v, edge.length, edge.speed,
                edge.road_class,
            ))
        return edge

    @staticmethod
    def _edge_key(u: Vertex, v: Vertex) -> tuple[Vertex, Vertex]:
        return (u, v) if u <= v else (v, u)

    # ------------------------------------------------------------------ query

    def has_vertex(self, vertex: Vertex) -> bool:
        """Whether ``vertex`` exists."""
        return vertex in self._coordinates

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether an edge between ``u`` and ``v`` exists."""
        return self._edge_key(u, v) in self._edges

    def coordinates(self, vertex: Vertex) -> Point:
        """Coordinates of ``vertex``.

        Raises:
            RoadNetworkError: if the vertex does not exist.
        """
        try:
            return self._coordinates[vertex]
        except KeyError as exc:
            raise RoadNetworkError(f"unknown vertex {vertex}") from exc

    def neighbours(self, vertex: Vertex) -> dict[Vertex, float]:
        """Mapping ``neighbour -> travel cost (seconds)`` for ``vertex``."""
        try:
            return self._adjacency[vertex]
        except KeyError as exc:
            raise RoadNetworkError(f"unknown vertex {vertex}") from exc

    def edge(self, u: Vertex, v: Vertex) -> Edge:
        """The :class:`Edge` between ``u`` and ``v``.

        Raises:
            RoadNetworkError: if no such edge exists.
        """
        try:
            return self._edges[self._edge_key(u, v)]
        except KeyError as exc:
            raise RoadNetworkError(f"no edge between {u} and {v}") from exc

    def edge_cost(self, u: Vertex, v: Vertex) -> float:
        """Travel time (seconds) of the edge ``(u, v)``."""
        cost = self._adjacency.get(u, {}).get(v)
        if cost is None:
            raise RoadNetworkError(f"no edge between {u} and {v}")
        return cost

    def euclidean(self, u: Vertex, v: Vertex) -> float:
        """Straight-line distance between two vertices in metres."""
        return self.coordinates(u).distance_to(self.coordinates(v))

    @property
    def csr(self) -> CSRAdjacency:
        """The CSR view of the network, rebuilt lazily after mutations.

        Building costs one pass over the adjacency; every shortest-path run
        and batched oracle query shares the cached arrays afterwards.
        """
        if self._csr is None or self._csr_version != self._topology_version:
            self._csr = CSRAdjacency(self)
            self._csr_version = self._topology_version
        return self._csr

    # ------------------------------------------------------------- iteration

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertex identifiers."""
        return iter(self._coordinates)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges (each undirected edge exactly once)."""
        return iter(self._edges.values())

    # ------------------------------------------------------------ statistics

    @property
    def num_vertices(self) -> int:
        """Number of vertices (|V|)."""
        return len(self._coordinates)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (|E|)."""
        return len(self._edges)

    @property
    def max_speed(self) -> float:
        """Maximum edge speed in metres/second (used for admissible time bounds)."""
        return self._max_speed if self._max_speed > 0 else 1.0

    def total_length(self) -> float:
        """Total road length in metres."""
        return sum(edge.length for edge in self._edges.values())

    def degree(self, vertex: Vertex) -> int:
        """Number of incident edges of ``vertex``."""
        return len(self.neighbours(vertex))

    def statistics(self) -> dict[str, float]:
        """Aggregate statistics in the spirit of Table 4 of the paper."""
        degrees = [len(adj) for adj in self._adjacency.values()]
        return {
            "vertices": float(self.num_vertices),
            "edges": float(self.num_edges),
            "total_length_km": self.total_length() / 1000.0,
            "mean_degree": (sum(degrees) / len(degrees)) if degrees else 0.0,
            "max_speed_mps": self.max_speed,
        }

    def validate(self) -> None:
        """Check structural invariants; raise :class:`RoadNetworkError` on failure."""
        for (u, v), edge in self._edges.items():
            if u not in self._coordinates or v not in self._coordinates:
                raise RoadNetworkError(f"edge ({u}, {v}) references a missing vertex")
            if edge.length < 0 or edge.speed <= 0:
                raise RoadNetworkError(f"edge ({u}, {v}) has invalid length/speed")
        for vertex, adjacency in self._adjacency.items():
            for neighbour, cost in adjacency.items():
                if cost < 0:
                    raise RoadNetworkError(
                        f"negative travel cost {cost} on ({vertex}, {neighbour})"
                    )
                reciprocal = self._adjacency.get(neighbour, {}).get(vertex)
                if reciprocal != cost:
                    raise RoadNetworkError(
                        f"asymmetric adjacency between {vertex} and {neighbour}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RoadNetwork(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )


@dataclass
class ConnectedComponents:
    """Result of a connected-component analysis of a :class:`RoadNetwork`."""

    labels: dict[Vertex, int] = field(default_factory=dict)
    sizes: list[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Number of connected components."""
        return len(self.sizes)

    def largest_component(self) -> set[Vertex]:
        """Vertices of the largest component (ties broken by label order)."""
        if not self.sizes:
            return set()
        target = max(range(len(self.sizes)), key=lambda idx: self.sizes[idx])
        return {vertex for vertex, label in self.labels.items() if label == target}


def connected_components(network: RoadNetwork) -> ConnectedComponents:
    """Label connected components of ``network`` with an iterative BFS."""
    result = ConnectedComponents()
    visited: set[Vertex] = set()
    label = 0
    for start in network.vertices():
        if start in visited:
            continue
        size = 0
        frontier = [start]
        visited.add(start)
        while frontier:
            vertex = frontier.pop()
            result.labels[vertex] = label
            size += 1
            for neighbour in network.neighbours(vertex):
                if neighbour not in visited:
                    visited.add(neighbour)
                    frontier.append(neighbour)
        result.sizes.append(size)
        label += 1
    return result


def induced_subnetwork(network: RoadNetwork, keep: Iterable[Vertex]) -> RoadNetwork:
    """Return the subnetwork induced by the vertex set ``keep``.

    Vertex identifiers are preserved. Used to restrict generated networks to
    their largest connected component.
    """
    keep_set = set(keep)
    result = RoadNetwork(name=network.name)
    for vertex in keep_set:
        result.add_vertex(vertex, network.coordinates(vertex))
    for edge in network.edges():
        if edge.u in keep_set and edge.v in keep_set:
            result.add_edge(
                edge.u, edge.v, length=edge.length, speed=edge.speed, road_class=edge.road_class
            )
    return result
