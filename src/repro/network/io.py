"""Serialisation of road networks to and from JSON.

The paper loads OpenStreetMap extracts via Geofabrik/Osmconvert; the
reproduction persists its synthetic networks in a small JSON schema so that
experiments can cache generated cities and tests can ship tiny fixtures.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.exceptions import RoadNetworkError
from repro.network.graph import RoadNetwork
from repro.utils.geometry import Point

SCHEMA_VERSION = 1


def network_to_dict(network: RoadNetwork) -> dict[str, Any]:
    """Serialise ``network`` into a JSON-compatible dictionary."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": network.name,
        "vertices": [
            {"id": vertex, "x": network.coordinates(vertex).x, "y": network.coordinates(vertex).y}
            for vertex in sorted(network.vertices())
        ],
        "edges": [
            {
                "u": edge.u,
                "v": edge.v,
                "length": edge.length,
                "speed": edge.speed,
                "road_class": edge.road_class,
            }
            for edge in sorted(network.edges(), key=lambda e: (e.u, e.v))
        ],
    }


def network_from_dict(payload: dict[str, Any]) -> RoadNetwork:
    """Deserialise a dictionary produced by :func:`network_to_dict`."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise RoadNetworkError(f"unsupported road-network schema version: {version!r}")
    network = RoadNetwork(name=payload.get("name", "road-network"))
    for vertex in payload.get("vertices", []):
        network.add_vertex(int(vertex["id"]), Point(float(vertex["x"]), float(vertex["y"])))
    for edge in payload.get("edges", []):
        network.add_edge(
            int(edge["u"]),
            int(edge["v"]),
            length=float(edge["length"]),
            speed=float(edge["speed"]),
            road_class=str(edge.get("road_class", "residential")),
        )
    return network


def save_network(network: RoadNetwork, path: str | Path) -> None:
    """Write ``network`` to ``path`` as JSON."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", encoding="utf-8") as handle:
        json.dump(network_to_dict(network), handle, indent=2, sort_keys=True)


def load_network(path: str | Path) -> RoadNetwork:
    """Read a network previously written by :func:`save_network`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return network_from_dict(payload)
