"""Serialisation of road networks to and from JSON.

The paper loads OpenStreetMap extracts via Geofabrik/Osmconvert; the
reproduction persists its synthetic and ingested networks in a small JSON
schema so that experiments can cache cities and tests can ship tiny fixtures.
Paths ending in ``.gz`` are transparently gzip-compressed (real-map extracts
compress ~10x), and the float round trip is **exact**: coordinates and edge
lengths survive serialisation bitwise (``json`` emits ``repr(float)``, which
round-trips every finite IEEE double), so the content hash of the
:mod:`repro.artifacts` store is stable across save/load cycles.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any

from repro.exceptions import RoadNetworkError
from repro.network.graph import RoadNetwork
from repro.utils.geometry import Point

SCHEMA_VERSION = 1


def network_to_dict(network: RoadNetwork) -> dict[str, Any]:
    """Serialise ``network`` into a JSON-compatible dictionary."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": network.name,
        "vertices": [
            {"id": vertex, "x": network.coordinates(vertex).x, "y": network.coordinates(vertex).y}
            for vertex in sorted(network.vertices())
        ],
        "edges": [
            {
                "u": edge.u,
                "v": edge.v,
                "length": edge.length,
                "speed": edge.speed,
                "road_class": edge.road_class,
            }
            for edge in sorted(network.edges(), key=lambda e: (e.u, e.v))
        ],
    }


def network_from_dict(payload: dict[str, Any]) -> RoadNetwork:
    """Deserialise a dictionary produced by :func:`network_to_dict`."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise RoadNetworkError(f"unsupported road-network schema version: {version!r}")
    network = RoadNetwork(name=payload.get("name", "road-network"))
    for vertex in payload.get("vertices", []):
        network.add_vertex(int(vertex["id"]), Point(float(vertex["x"]), float(vertex["y"])))
    for edge in payload.get("edges", []):
        network.add_edge(
            int(edge["u"]),
            int(edge["v"]),
            length=float(edge["length"]),
            speed=float(edge["speed"]),
            road_class=str(edge.get("road_class", "residential")),
        )
    return network


def _is_gzip(path: Path) -> bool:
    return path.suffix.lower() == ".gz"


def save_network(network: RoadNetwork, path: str | Path) -> None:
    """Write ``network`` to ``path`` as JSON (gzip-compressed for ``*.gz``)."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    opener = gzip.open if _is_gzip(destination) else open
    with opener(destination, "wt", encoding="utf-8") as handle:
        json.dump(network_to_dict(network), handle, indent=2, sort_keys=True)


def load_network(path: str | Path) -> RoadNetwork:
    """Read a network previously written by :func:`save_network`.

    ``*.gz`` paths are decompressed transparently. The round trip is exact:
    every coordinate and edge length equals the saved float bit for bit.
    """
    source = Path(path)
    opener = gzip.open if _is_gzip(source) else open
    with opener(source, "rt", encoding="utf-8") as handle:
        payload = json.load(handle)
    return network_from_dict(payload)
