"""Road-network substrate: graph model, shortest paths, hub labels, oracle, generators."""

from repro.network.backends import (
    BACKEND_NAMES,
    APSPBackend,
    CHBackend,
    DijkstraBackend,
    DistanceBackend,
    HubLabelBackend,
    make_backend,
    select_backend_name,
)
from repro.network.cache import CacheStatistics, LRUCache
from repro.network.ch import ContractionHierarchy, build_contraction_hierarchy
from repro.network.generators import (
    cycle_network,
    grid_city,
    random_geometric_city,
    ring_radial_city,
)
from repro.network.graph import (
    CSRAdjacency,
    Edge,
    EdgeMutation,
    RoadNetwork,
    Vertex,
    connected_components,
)
from repro.network.hub_labeling import (
    HubLabels,
    HubLabelsReference,
    build_hub_labels,
    build_hub_labels_reference,
)
from repro.network.io import load_network, network_from_dict, network_to_dict, save_network
from repro.network.landmarks import LandmarkIndex, build_landmark_index
from repro.network.oracle import DistanceOracle, OracleCounters
from repro.network.shortest_path import (
    bidirectional_dijkstra,
    bidirectional_dijkstra_reference,
    dijkstra,
    dijkstra_reference,
    shortest_distance,
    shortest_path,
    single_source_distances,
    single_source_distances_array,
    truncated_multi_target_distances,
)

__all__ = [
    "BACKEND_NAMES",
    "APSPBackend",
    "CHBackend",
    "ContractionHierarchy",
    "DijkstraBackend",
    "DistanceBackend",
    "HubLabelBackend",
    "build_contraction_hierarchy",
    "make_backend",
    "select_backend_name",
    "CacheStatistics",
    "LRUCache",
    "cycle_network",
    "grid_city",
    "random_geometric_city",
    "ring_radial_city",
    "CSRAdjacency",
    "Edge",
    "EdgeMutation",
    "RoadNetwork",
    "Vertex",
    "connected_components",
    "HubLabels",
    "HubLabelsReference",
    "build_hub_labels",
    "build_hub_labels_reference",
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "save_network",
    "LandmarkIndex",
    "build_landmark_index",
    "DistanceOracle",
    "OracleCounters",
    "bidirectional_dijkstra",
    "bidirectional_dijkstra_reference",
    "dijkstra",
    "dijkstra_reference",
    "shortest_distance",
    "shortest_path",
    "single_source_distances",
    "single_source_distances_array",
    "truncated_multi_target_distances",
]
