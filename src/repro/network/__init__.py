"""Road-network substrate: graph model, shortest paths, hub labels, oracle, generators."""

from repro.network.cache import CacheStatistics, LRUCache
from repro.network.generators import (
    cycle_network,
    grid_city,
    random_geometric_city,
    ring_radial_city,
)
from repro.network.graph import CSRAdjacency, Edge, RoadNetwork, Vertex, connected_components
from repro.network.hub_labeling import HubLabels, build_hub_labels
from repro.network.io import load_network, network_from_dict, network_to_dict, save_network
from repro.network.landmarks import LandmarkIndex, build_landmark_index
from repro.network.oracle import DistanceOracle, OracleCounters
from repro.network.shortest_path import (
    bidirectional_dijkstra,
    bidirectional_dijkstra_reference,
    dijkstra,
    dijkstra_reference,
    shortest_distance,
    shortest_path,
    single_source_distances,
    single_source_distances_array,
)

__all__ = [
    "CacheStatistics",
    "LRUCache",
    "cycle_network",
    "grid_city",
    "random_geometric_city",
    "ring_radial_city",
    "CSRAdjacency",
    "Edge",
    "RoadNetwork",
    "Vertex",
    "connected_components",
    "HubLabels",
    "build_hub_labels",
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "save_network",
    "LandmarkIndex",
    "build_landmark_index",
    "DistanceOracle",
    "OracleCounters",
    "bidirectional_dijkstra",
    "bidirectional_dijkstra_reference",
    "dijkstra",
    "dijkstra_reference",
    "shortest_distance",
    "shortest_path",
    "single_source_distances",
    "single_source_distances_array",
]
