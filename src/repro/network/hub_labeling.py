"""Pruned 2-hop hub labelling for exact shortest-distance queries.

The paper's implementation answers shortest-distance queries through the
hub-based labelling of Abraham et al. [9] so that a query is effectively O(1)
(more precisely, linear in the label size). This module implements **pruned
landmark labelling** (Akiba et al., SIGMOD 2013), which computes an equivalent
2-hop cover on weighted undirected graphs:

* every vertex ``v`` stores a label ``L(v) = {(hub, dist(v, hub))}``;
* the distance between ``u`` and ``v`` is ``min over shared hubs h of
  L(u)[h] + L(v)[h]``;
* pruning during construction keeps labels small on road-like networks.

For very large networks the construction cost can dominate; the
:class:`~repro.network.oracle.DistanceOracle` therefore treats hub labels as an
optional accelerator and falls back to cached Dijkstra otherwise.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.network.graph import RoadNetwork, Vertex

INFINITY = math.inf


@dataclass
class HubLabels:
    """A 2-hop labelling of a road network.

    Attributes:
        labels: per-vertex mapping ``hub -> distance``.
        order: the vertex order (most "important" first) used during
            construction; kept for introspection and tests.
    """

    labels: dict[Vertex, dict[Vertex, float]] = field(default_factory=dict)
    order: list[Vertex] = field(default_factory=list)

    def query(self, u: Vertex, v: Vertex) -> float:
        """Exact shortest distance between ``u`` and ``v`` (``inf`` if disconnected)."""
        if u == v:
            return 0.0
        label_u = self.labels.get(u)
        label_v = self.labels.get(v)
        if not label_u or not label_v:
            return INFINITY
        # iterate over the smaller label for speed
        if len(label_u) > len(label_v):
            label_u, label_v = label_v, label_u
        best = INFINITY
        for hub, dist_u in label_u.items():
            dist_v = label_v.get(hub)
            if dist_v is not None:
                total = dist_u + dist_v
                if total < best:
                    best = total
        return best

    @property
    def total_label_entries(self) -> int:
        """Total number of (hub, distance) entries across all labels."""
        return sum(len(label) for label in self.labels.values())

    @property
    def average_label_size(self) -> float:
        """Average label size per vertex."""
        if not self.labels:
            return 0.0
        return self.total_label_entries / len(self.labels)


def degree_order(network: RoadNetwork) -> list[Vertex]:
    """Vertex order by decreasing degree (ties by identifier).

    Degree ordering is a cheap, effective importance heuristic for road
    networks; high-degree intersections become hubs first.
    """
    return sorted(network.vertices(), key=lambda v: (-network.degree(v), v))


def build_hub_labels(
    network: RoadNetwork, order: list[Vertex] | None = None
) -> HubLabels:
    """Construct a pruned 2-hop labelling of ``network``.

    Args:
        network: the road network (undirected, non-negative costs).
        order: optional vertex processing order; defaults to
            :func:`degree_order`.

    Returns:
        A :class:`HubLabels` instance answering exact distance queries.
    """
    if order is None:
        order = degree_order(network)
    labels: dict[Vertex, dict[Vertex, float]] = {vertex: {} for vertex in network.vertices()}
    result = HubLabels(labels=labels, order=list(order))

    for hub in order:
        _pruned_dijkstra_from_hub(network, hub, result)
    return result


def _pruned_dijkstra_from_hub(network: RoadNetwork, hub: Vertex, labelling: HubLabels) -> None:
    """Run a pruned Dijkstra from ``hub`` and extend the labels it covers.

    The search runs on the network's CSR adjacency — the relaxation loop walks
    the flat ``indptr``/``indices``/``costs`` arrays over dense positions —
    while the labels themselves stay keyed by vertex identifier.
    """
    labels = labelling.labels
    csr = network.csr
    indptr = csr.indptr_list
    indices = csr.indices_list
    costs = csr.costs_list
    vertex_ids = csr.vertex_ids_list
    n = len(vertex_ids)
    distances = [INFINITY] * n
    hub_position = csr.position_of(hub)
    distances[hub_position] = 0.0
    settled = bytearray(n)
    heap: list[tuple[float, int]] = [(0.0, hub_position)]
    hub_label = labels[hub]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        cost, position = pop(heap)
        if settled[position]:
            continue
        settled[position] = 1
        vertex = vertex_ids[position]
        # Pruning: if the current labelling already certifies a distance
        # <= cost between hub and vertex, the label entry is redundant and the
        # search does not need to expand past this vertex.
        if _query_partial(hub_label, labels[vertex]) <= cost:
            continue
        labels[vertex][hub] = cost
        for slot in range(indptr[position], indptr[position + 1]):
            neighbour = indices[slot]
            candidate = cost + costs[slot]
            if candidate < distances[neighbour]:
                distances[neighbour] = candidate
                push(heap, (candidate, neighbour))


def _query_partial(label_a: dict[Vertex, float], label_b: dict[Vertex, float]) -> float:
    """Distance certified by two partial labels (``inf`` if none)."""
    if len(label_a) > len(label_b):
        label_a, label_b = label_b, label_a
    best = INFINITY
    for hub, dist_a in label_a.items():
        dist_b = label_b.get(hub)
        if dist_b is not None and dist_a + dist_b < best:
            best = dist_a + dist_b
    return best
