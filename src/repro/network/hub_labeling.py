"""Pruned 2-hop hub labelling for exact shortest-distance queries.

The paper's implementation answers shortest-distance queries through the
hub-based labelling of Abraham et al. [9] so that a query is effectively O(1)
(more precisely, linear in the label size). This module implements **pruned
landmark labelling** (Akiba et al., SIGMOD 2013), which computes an equivalent
2-hop cover on weighted undirected graphs:

* every vertex ``v`` stores a label ``L(v) = {(hub, dist(v, hub))}``;
* the distance between ``u`` and ``v`` is ``min over shared hubs h of
  L(u)[h] + L(v)[h]``;
* pruning during construction keeps labels small on road-like networks.

The query-serving representation is **array-native**: the per-vertex labels
are frozen into three flat numpy arrays (``indptr`` row pointers, ``hubs``
sorted hub indices, ``dists`` distances), the scalar query is a sorted
merge-join (:func:`numpy.intersect1d` on two label slices) and
:meth:`HubLabels.query_many` answers a whole batch with one scatter +
segment-minimum pass. The seed's dict-of-dict labelling survives as
:class:`HubLabelsReference` / :func:`build_hub_labels_reference` — the
baseline the equivalence property tests compare the arrays against.

For very large networks the construction cost can dominate; the
:class:`~repro.network.oracle.DistanceOracle` therefore treats hub labels as an
optional accelerator and falls back to cached Dijkstra otherwise.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.network.graph import RoadNetwork, Vertex

INFINITY = math.inf


@dataclass
class HubLabels:
    """An array-native 2-hop labelling of a road network.

    Labels live in three flat arrays: the label of the vertex at CSR position
    ``p`` is ``hubs[indptr[p]:indptr[p+1]]`` (hub *order indices*, ascending)
    with distances in the matching slice of ``dists``. Hubs are numbered by
    their construction order, so every label is sorted by hub index for free
    (pruned labelling appends hubs in processing order) and queries are
    sorted merge-joins.

    Attributes:
        indptr: ``(N+1,)`` int64 — per-vertex label row pointers.
        hubs: ``(total,)`` int64 — hub order indices, ascending per vertex.
        dists: ``(total,)`` float64 — distance from the vertex to each hub.
        position: mapping ``vertex id -> CSR position`` (shared with the CSR).
        order: the vertex order (most "important" first) used during
            construction; ``order[hubs[k]]`` recovers the hub's vertex id.
    """

    indptr: np.ndarray
    hubs: np.ndarray
    dists: np.ndarray
    position: dict[Vertex, int]
    order: list[Vertex] = field(default_factory=list)

    def query(self, u: Vertex, v: Vertex) -> float:
        """Exact shortest distance between ``u`` and ``v`` (``inf`` if disconnected)."""
        if u == v:
            return 0.0
        pu, pv = self.position[u], self.position[v]
        indptr = self.indptr
        hubs_u = self.hubs[indptr[pu]:indptr[pu + 1]]
        hubs_v = self.hubs[indptr[pv]:indptr[pv + 1]]
        if hubs_u.size == 0 or hubs_v.size == 0:
            return INFINITY
        _, iu, iv = np.intersect1d(hubs_u, hubs_v, assume_unique=True, return_indices=True)
        if iu.size == 0:
            return INFINITY
        dists_u = self.dists[indptr[pu]:indptr[pu + 1]]
        dists_v = self.dists[indptr[pv]:indptr[pv + 1]]
        return float(np.min(dists_u[iu] + dists_v[iv]))

    def query_many(self, source: Vertex, targets_positions: np.ndarray) -> np.ndarray:
        """Distances from ``source`` to many CSR positions, vectorized.

        One dense scatter of the source label plus a single gather/segment-min
        over the concatenated target label slices — no per-target Python loop.
        Returns exactly the floats the scalar :meth:`query` would (the same
        ``label_u + label_v`` sums feed the same minimum).
        """
        indptr = self.indptr
        ps = self.position[source]
        n = indptr.size - 1
        count = targets_positions.size
        result = np.full(count, INFINITY, dtype=np.float64)
        source_hubs = self.hubs[indptr[ps]:indptr[ps + 1]]
        if source_hubs.size:
            # dense source label: hub order index -> distance from source
            dense = np.full(n, INFINITY, dtype=np.float64)
            dense[source_hubs] = self.dists[indptr[ps]:indptr[ps + 1]]
            starts = indptr[targets_positions]
            counts = indptr[targets_positions + 1] - starts
            total = int(counts.sum())
            if total:
                # ragged arange: flat indices of every target's label entries
                cumulative = np.cumsum(counts)
                flat = np.arange(total, dtype=np.int64) + np.repeat(
                    starts - (cumulative - counts), counts
                )
                sums = dense[self.hubs[flat]] + self.dists[flat]
                nonempty = counts > 0
                segment_starts = (cumulative - counts)[nonempty]
                result[nonempty] = np.minimum.reduceat(sums, segment_starts)
        result[targets_positions == ps] = 0.0
        return result

    @property
    def total_label_entries(self) -> int:
        """Total number of (hub, distance) entries across all labels."""
        return int(self.hubs.size)

    @property
    def average_label_size(self) -> float:
        """Average label size per vertex."""
        n = self.indptr.size - 1
        if n == 0:
            return 0.0
        return self.total_label_entries / n


@dataclass
class HubLabelsReference:
    """The seed's dict-of-dict 2-hop labelling (equivalence baseline).

    Kept verbatim so the property tests can assert that the array-native
    :class:`HubLabels` answers exactly the same queries; the oracle itself
    only ever serves queries from the flat arrays.

    Attributes:
        labels: per-vertex mapping ``hub -> distance``.
        order: the vertex order (most "important" first) used during
            construction; kept for introspection and tests.
    """

    labels: dict[Vertex, dict[Vertex, float]] = field(default_factory=dict)
    order: list[Vertex] = field(default_factory=list)

    def query(self, u: Vertex, v: Vertex) -> float:
        """Exact shortest distance between ``u`` and ``v`` (``inf`` if disconnected)."""
        if u == v:
            return 0.0
        label_u = self.labels.get(u)
        label_v = self.labels.get(v)
        if not label_u or not label_v:
            return INFINITY
        # iterate over the smaller label for speed
        if len(label_u) > len(label_v):
            label_u, label_v = label_v, label_u
        best = INFINITY
        for hub, dist_u in label_u.items():
            dist_v = label_v.get(hub)
            if dist_v is not None:
                total = dist_u + dist_v
                if total < best:
                    best = total
        return best

    @property
    def total_label_entries(self) -> int:
        """Total number of (hub, distance) entries across all labels."""
        return sum(len(label) for label in self.labels.values())

    @property
    def average_label_size(self) -> float:
        """Average label size per vertex."""
        if not self.labels:
            return 0.0
        return self.total_label_entries / len(self.labels)


def degree_order(network: RoadNetwork) -> list[Vertex]:
    """Vertex order by decreasing degree (ties by identifier).

    Degree ordering is a cheap importance heuristic, but it degenerates on
    grid-like road networks where almost every intersection has the same
    degree — labels blow up to O(sqrt(N)) entries. Prefer
    :func:`ch_rank_order` (the default of :func:`build_hub_labels`) for
    anything beyond toy graphs.
    """
    return sorted(network.vertices(), key=lambda v: (-network.degree(v), v))


def ch_rank_order(network: RoadNetwork) -> list[Vertex]:
    """Vertex order by decreasing contraction-hierarchy rank.

    The CH contraction order is exactly the importance order hub labelling
    wants (a label entry is a CH upward-search meeting vertex): processing
    hubs most-important-first lets the pruned construction cut almost every
    redundant entry. On the 3.6k-vertex ``metro-grid`` this shrinks the
    average label from ~1000 entries (degree order — useless on grids where
    every vertex has degree 4) to ~30, and the build from minutes to
    sub-second. Deterministic: the CH build is deterministic and ties cannot
    occur (ranks are a permutation).
    """
    from repro.network.ch import build_contraction_hierarchy

    hierarchy = build_contraction_hierarchy(network)
    csr = network.csr
    vertex_ids = csr.vertex_ids_list
    positions = sorted(range(csr.num_vertices), key=lambda p: -hierarchy.rank[p])
    return [vertex_ids[p] for p in positions]


def build_hub_labels_reference(
    network: RoadNetwork, order: list[Vertex] | None = None
) -> HubLabelsReference:
    """Construct the dict-of-dict pruned 2-hop labelling of ``network``.

    Args:
        network: the road network (undirected, non-negative costs).
        order: optional vertex processing order; defaults to
            :func:`ch_rank_order` — the same default as
            :func:`build_hub_labels`, so the dict reference and the frozen
            arrays are built from one labelling and agree bit for bit.

    Returns:
        A :class:`HubLabelsReference` instance answering exact distance
        queries.
    """
    if order is None:
        order = ch_rank_order(network)
    labels: dict[Vertex, dict[Vertex, float]] = {vertex: {} for vertex in network.vertices()}
    result = HubLabelsReference(labels=labels, order=list(order))

    for hub in order:
        _pruned_dijkstra_from_hub(network, hub, result)
    return result


def build_hub_labels(
    network: RoadNetwork, order: list[Vertex] | None = None
) -> HubLabels:
    """Construct the array-native pruned 2-hop labelling of ``network``.

    Runs the same pruned construction as :func:`build_hub_labels_reference`
    (so both labellings certify identical distances), then freezes the labels
    into the flat arrays :class:`HubLabels` queries operate on. Hub indices
    are the hubs' positions in the construction ``order``; pruned labelling
    visits hubs in that order, so every per-vertex label is already sorted.

    ``order=None`` uses :func:`ch_rank_order` — contraction-hierarchy
    importance, which keeps labels small on grid-like networks where the
    degree heuristic degenerates (metro-grid: ~30 entries/label instead of
    ~1000, sub-second build instead of minutes). Any order yields exact
    distances; the choice only changes label sizes and build time.
    """
    if order is None:
        order = ch_rank_order(network)
    reference = build_hub_labels_reference(network, order=order)
    csr = network.csr
    position = csr.position
    order_index = {vertex: index for index, vertex in enumerate(reference.order)}
    n = csr.num_vertices
    indptr = np.zeros(n + 1, dtype=np.int64)
    hub_chunks: list[list[int]] = [[] for _ in range(n)]
    dist_chunks: list[list[float]] = [[] for _ in range(n)]
    for vertex, label in reference.labels.items():
        p = position[vertex]
        # insertion order == hub processing order == ascending order index
        hub_chunks[p] = [order_index[hub] for hub in label]
        dist_chunks[p] = list(label.values())
    for p in range(n):
        indptr[p + 1] = indptr[p] + len(hub_chunks[p])
    total = int(indptr[-1])
    hubs = np.empty(total, dtype=np.int64)
    dists = np.empty(total, dtype=np.float64)
    for p in range(n):
        begin, end = indptr[p], indptr[p + 1]
        hubs[begin:end] = hub_chunks[p]
        dists[begin:end] = dist_chunks[p]
    return HubLabels(
        indptr=indptr, hubs=hubs, dists=dists, position=position, order=list(reference.order)
    )


def _pruned_dijkstra_from_hub(
    network: RoadNetwork, hub: Vertex, labelling: HubLabelsReference
) -> None:
    """Run a pruned Dijkstra from ``hub`` and extend the labels it covers.

    The search runs on the network's CSR adjacency — the relaxation loop walks
    the flat ``indptr``/``indices``/``costs`` arrays over dense positions —
    while the labels themselves stay keyed by vertex identifier.
    """
    labels = labelling.labels
    csr = network.csr
    indptr = csr.indptr_list
    indices = csr.indices_list
    costs = csr.costs_list
    vertex_ids = csr.vertex_ids_list
    n = len(vertex_ids)
    distances = [INFINITY] * n
    hub_position = csr.position_of(hub)
    distances[hub_position] = 0.0
    settled = bytearray(n)
    heap: list[tuple[float, int]] = [(0.0, hub_position)]
    hub_label = labels[hub]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        cost, position = pop(heap)
        if settled[position]:
            continue
        settled[position] = 1
        vertex = vertex_ids[position]
        # Pruning: if the current labelling already certifies a distance
        # <= cost between hub and vertex, the label entry is redundant and the
        # search does not need to expand past this vertex.
        if _query_partial(hub_label, labels[vertex]) <= cost:
            continue
        labels[vertex][hub] = cost
        for slot in range(indptr[position], indptr[position + 1]):
            neighbour = indices[slot]
            candidate = cost + costs[slot]
            if candidate < distances[neighbour]:
                distances[neighbour] = candidate
                push(heap, (candidate, neighbour))


def _query_partial(label_a: dict[Vertex, float], label_b: dict[Vertex, float]) -> float:
    """Distance certified by two partial labels (``inf`` if none)."""
    if len(label_a) > len(label_b):
        label_a, label_b = label_b, label_a
    best = INFINITY
    for hub, dist_a in label_a.items():
        dist_b = label_b.get(hub)
        if dist_b is not None and dist_a + dist_b < best:
            best = dist_a + dist_b
    return best
