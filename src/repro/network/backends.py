"""Pluggable distance backends behind the :class:`~repro.network.oracle.DistanceOracle`.

The oracle used to hard-wire three acceleration shapes (dense APSP, dict hub
labels, cached per-pair Dijkstra). This module makes the choice a value: a
:class:`DistanceBackend` answers exact point-to-point and batched
many-to-many distance queries, the oracle owns counting/caching policy, and
:func:`select_backend_name` picks a backend from the network size and the
expected query volume.

Backends (all **value-exact**: the same floats, hence the same simulation
outcomes — the property tests and ``benchmarks/bench_oracle.py`` assert it):

* ``"apsp"``       — dense all-pairs matrix; O(1) lookups, O(N^2) memory and
  N Dijkstras to build. The fastest choice up to a few thousand vertices.
* ``"ch"``         — contraction hierarchy (:mod:`repro.network.ch`);
  near-linear build, tiny upward searches per query, bucket-based
  many-to-many batches. The sweet spot for city-scale networks where the
  dense matrix stops fitting.
* ``"hub_labels"`` — array-native pruned 2-hop labels
  (:mod:`repro.network.hub_labeling`); higher build cost than CH but flat
  merge-join queries, the O(1)-query regime the paper assumes.
* ``"dijkstra"``   — no preprocessing: cached bidirectional point-to-point
  searches, and batches answered by **one truncated single-source Dijkstra**
  that stops when every (deduplicated, cache-missing) target is settled.

Only the Dijkstra backend uses the oracle's distance LRU; the precomputed
backends bypass it, which the cache statistics report honestly as
``"bypassed (<backend>)"`` instead of a misleading 0.0 hit rate.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.exceptions import DisconnectedError
from repro.network.ch import ContractionHierarchy, build_contraction_hierarchy
from repro.network.graph import RoadNetwork, Vertex
from repro.network.hub_labeling import HubLabels, build_hub_labels
from repro.network.shortest_path import (
    bidirectional_dijkstra,
    bidirectional_dijkstra_reference,
    single_source_distances_array,
    truncated_multi_target_distances,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.oracle import DistanceOracle

#: canonical backend names, in auto-selection preference order.
BACKEND_NAMES = ("apsp", "ch", "hub_labels", "dijkstra")

#: largest vertex count for which the dense all-pairs matrix is the default.
APSP_VERTEX_LIMIT = 2_000

#: largest vertex count for which the contraction hierarchy is the default
#: (beyond it the flat 2-hop labels win on query time).
CH_VERTEX_LIMIT = 50_000

#: below ``num_vertices / QUERY_VOLUME_DIVISOR`` expected queries, building
#: any index costs more than answering every query from scratch.
QUERY_VOLUME_DIVISOR = 50


def select_backend_name(
    num_vertices: int, query_volume_hint: int | None = None
) -> str:
    """The backend the ``"auto"`` policy picks for a network.

    Args:
        num_vertices: vertex count of the (shard-local or global) network.
        query_volume_hint: expected number of exact distance queries; when
            the workload is too small to amortise any preprocessing, the
            plain Dijkstra backend wins.
    """
    if (
        query_volume_hint is not None
        and query_volume_hint < max(1, num_vertices // QUERY_VOLUME_DIVISOR)
    ):
        return "dijkstra"
    if num_vertices <= APSP_VERTEX_LIMIT:
        return "apsp"
    if num_vertices <= CH_VERTEX_LIMIT:
        return "ch"
    return "hub_labels"


@runtime_checkable
class DistanceBackend(Protocol):
    """Exact shortest-distance queries over one road network.

    All methods answer in seconds of travel time; ``inf`` (or
    :class:`~repro.exceptions.DisconnectedError` for the Dijkstra backend,
    matching the seed behaviour) marks disconnected pairs. Implementations
    must be value-exact: every float equals what the reference Dijkstra
    machinery computes for the same pair.
    """

    name: str
    #: whether the oracle's distance LRU sits in front of this backend
    #: (only the on-the-fly Dijkstra benefits; precomputed indexes bypass it).
    uses_distance_cache: bool
    build_seconds: float

    def distance(self, u: Vertex, v: Vertex) -> float:
        """Exact distance between two vertices."""
        ...

    def distances_many(self, source: Vertex, targets: Sequence[Vertex]) -> np.ndarray:
        """Exact distances from ``source`` to every target, batched."""
        ...

    def distance_pairs(self, us: Sequence[Vertex], vs: Sequence[Vertex]) -> np.ndarray:
        """Exact distances between elementwise pairs, batched."""
        ...

    def endpoint_distances(
        self, vertices: Sequence[Vertex], origin: Vertex, destination: Vertex
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact distances from every vertex to two shared endpoints."""
        ...

    def stats(self) -> dict[str, float]:
        """Build/search statistics for benchmarks and reports."""
        ...


class APSPBackend:
    """Dense all-pairs matrix: one Dijkstra per row at build, O(1) lookups."""

    name = "apsp"
    uses_distance_cache = False

    def __init__(self, network: RoadNetwork, matrix: np.ndarray | None = None) -> None:
        started = time.perf_counter()
        csr = network.csr
        self._csr = csr
        if matrix is None:
            n = csr.num_vertices
            matrix = np.empty((n, n), dtype=np.float64)
            vertex_ids = csr.vertex_ids_list
            for row in range(n):
                matrix[row] = single_source_distances_array(network, vertex_ids[row])
        self.matrix = matrix
        self.vertex_index = csr.position
        self.build_seconds = time.perf_counter() - started

    def distance(self, u: Vertex, v: Vertex) -> float:
        return float(self.matrix[self.vertex_index[u], self.vertex_index[v]])

    def distances_many(self, source: Vertex, targets: Sequence[Vertex]) -> np.ndarray:
        row = self.matrix[self.vertex_index[source]]
        return row[self._csr.positions_of(targets)]

    def distance_pairs(self, us: Sequence[Vertex], vs: Sequence[Vertex]) -> np.ndarray:
        return self.matrix[self._csr.positions_of(us), self._csr.positions_of(vs)]

    def endpoint_distances(
        self, vertices: Sequence[Vertex], origin: Vertex, destination: Vertex
    ) -> tuple[np.ndarray, np.ndarray]:
        positions = self._csr.positions_of(vertices)
        index = self.vertex_index
        return (
            self.matrix[positions, index[origin]],
            self.matrix[positions, index[destination]],
        )

    def stats(self) -> dict[str, float]:
        return {
            "vertices": float(self.matrix.shape[0]),
            "matrix_bytes": float(self.matrix.nbytes),
            "build_seconds": self.build_seconds,
        }


class CHBackend:
    """Contraction hierarchy: upward searches + bucket-based many-to-many."""

    name = "ch"
    uses_distance_cache = False

    def __init__(
        self,
        network: RoadNetwork,
        host: "DistanceOracle | None" = None,
        hierarchy: ContractionHierarchy | None = None,
    ) -> None:
        self._csr = network.csr
        self._host = host
        self.hierarchy = hierarchy if hierarchy is not None else build_contraction_hierarchy(network)
        self.build_seconds = self.hierarchy.build_seconds

    def _record_settled(self, before: int) -> None:
        if self._host is not None:
            self._host.counters.record_backend(
                self.name, settled=self.hierarchy.settled - before
            )

    def distance(self, u: Vertex, v: Vertex) -> float:
        position = self._csr.position
        before = self.hierarchy.settled
        result = self.hierarchy.query_positions(position[u], position[v])
        self._record_settled(before)
        return result

    def distances_many(self, source: Vertex, targets: Sequence[Vertex]) -> np.ndarray:
        before = self.hierarchy.settled
        result = self.hierarchy.distances_many_positions(
            self._csr.position_of(source), self._csr.positions_of(targets)
        )
        self._record_settled(before)
        return result

    def distance_pairs(self, us: Sequence[Vertex], vs: Sequence[Vertex]) -> np.ndarray:
        count = len(us)
        position = self._csr.position
        query = self.hierarchy.query_positions
        before = self.hierarchy.settled
        result = np.fromiter(
            (query(position[u], position[v]) for u, v in zip(us, vs)),
            dtype=np.float64,
            count=count,
        )
        self._record_settled(before)
        return result

    def endpoint_distances(
        self, vertices: Sequence[Vertex], origin: Vertex, destination: Vertex
    ) -> tuple[np.ndarray, np.ndarray]:
        # one bucket sweep per endpoint; the vertices' search spaces are
        # shared between the two sweeps through the hierarchy's memo
        return (
            self.distances_many(origin, vertices),
            self.distances_many(destination, vertices),
        )

    def stats(self) -> dict[str, float]:
        return self.hierarchy.stats()


class HubLabelBackend:
    """Array-native pruned 2-hop labels: merge-join scalar, vectorized batch."""

    name = "hub_labels"
    uses_distance_cache = False

    def __init__(self, network: RoadNetwork, labels: HubLabels | None = None) -> None:
        started = time.perf_counter()
        self._csr = network.csr
        self.labels = labels if labels is not None else build_hub_labels(network)
        self.build_seconds = time.perf_counter() - started

    def distance(self, u: Vertex, v: Vertex) -> float:
        return self.labels.query(u, v)

    def distances_many(self, source: Vertex, targets: Sequence[Vertex]) -> np.ndarray:
        return self.labels.query_many(source, self._csr.positions_of(targets))

    def distance_pairs(self, us: Sequence[Vertex], vs: Sequence[Vertex]) -> np.ndarray:
        count = len(us)
        query = self.labels.query
        return np.fromiter(
            (query(u, v) for u, v in zip(us, vs)), dtype=np.float64, count=count
        )

    def endpoint_distances(
        self, vertices: Sequence[Vertex], origin: Vertex, destination: Vertex
    ) -> tuple[np.ndarray, np.ndarray]:
        positions = self._csr.positions_of(vertices)
        return (
            self.labels.query_many(origin, positions),
            self.labels.query_many(destination, positions),
        )

    def stats(self) -> dict[str, float]:
        return {
            "vertices": float(self.labels.indptr.size - 1),
            "label_entries": float(self.labels.total_label_entries),
            "average_label_size": self.labels.average_label_size,
            "build_seconds": self.build_seconds,
        }


class DijkstraBackend:
    """No preprocessing: cached point-to-point searches + truncated batches.

    The backend shares the host oracle's symmetric-key distance LRU and its
    counters, preserving the seed semantics exactly for scalar queries
    (consult cache, bidirectional Dijkstra on miss, seed the path cache).
    Batches consult the cache per unique pair, answer all remaining targets
    with **one** truncated single-source Dijkstra, and write every result
    back under its symmetric key — so the scalar loop over the same pairs
    returns the very same floats afterwards.
    """

    name = "dijkstra"
    uses_distance_cache = True

    def __init__(self, network: RoadNetwork, host: "DistanceOracle") -> None:
        self.network = network
        self._host = host
        self.build_seconds = 0.0
        self.sssp_runs = 0

    # ------------------------------------------------------------- internals

    def _p2p(self, u: Vertex, v: Vertex) -> float:
        """Cached point-to-point search under the symmetric ``(min, max)`` key."""
        host = self._host
        key = (u, v) if u <= v else (v, u)
        cached = host._distance_cache.get(key)
        if cached is not None:
            return cached
        return self._p2p_compute(key)

    def _p2p_compute(self, key: tuple[Vertex, Vertex]) -> float:
        """Uncached point-to-point search; seeds both caches (seed semantics)."""
        host = self._host
        search = (
            bidirectional_dijkstra_reference
            if host.legacy_reference_mode
            else bidirectional_dijkstra
        )
        cost, path = search(self.network, key[0], key[1])
        host.counters.dijkstra_runs += 1
        host._path_cache.put(key, tuple(path))
        host._distance_cache.put(key, cost)
        return cost

    def _batch_from_source(
        self, source: Vertex, targets: list[Vertex], results: np.ndarray, slots: list[list[int]]
    ) -> None:
        """One truncated SSSP answering (and caching) all missing targets."""
        host = self._host
        distances, settled = truncated_multi_target_distances(self.network, source, targets)
        host.counters.dijkstra_runs += 1
        host.counters.record_backend(self.name, settled=settled)
        self.sssp_runs += 1
        cache = host._distance_cache
        for index, target in enumerate(targets):
            value = float(distances[index])
            if value == np.inf:
                raise DisconnectedError(f"no path between {source} and {target}")
            key = (source, target) if source <= target else (target, source)
            cache.put(key, value)
            for slot in slots[index]:
                results[slot] = value

    # --------------------------------------------------------------- queries

    def distance(self, u: Vertex, v: Vertex) -> float:
        return self._p2p(u, v)

    def distances_many(self, source: Vertex, targets: Sequence[Vertex]) -> np.ndarray:
        count = len(targets)
        results = np.empty(count, dtype=np.float64)
        cache = self._host._distance_cache
        missing: dict[Vertex, list[int]] = {}
        for slot, target in enumerate(targets):
            if target == source:
                results[slot] = 0.0
                continue
            key = (source, target) if source <= target else (target, source)
            cached = cache.get(key)
            if cached is not None:
                results[slot] = cached
            else:
                missing.setdefault(target, []).append(slot)
        if missing:
            unique = list(missing)
            self._batch_from_source(source, unique, results, [missing[t] for t in unique])
        return results

    def distance_pairs(self, us: Sequence[Vertex], vs: Sequence[Vertex]) -> np.ndarray:
        count = len(us)
        results = np.empty(count, dtype=np.float64)
        cache = self._host._distance_cache
        # dedupe by symmetric key; batch the misses by their most shared
        # endpoint so k pairs around one vertex cost one truncated search
        missing: dict[tuple[Vertex, Vertex], list[int]] = {}
        for slot, (u, v) in enumerate(zip(us, vs)):
            if u == v:
                results[slot] = 0.0
                continue
            key = (u, v) if u <= v else (v, u)
            cached = cache.get(key)
            if cached is not None:
                results[slot] = cached
            else:
                missing.setdefault(key, []).append(slot)
        while missing:
            frequency: dict[Vertex, int] = {}
            for u, v in missing:
                frequency[u] = frequency.get(u, 0) + 1
                frequency[v] = frequency.get(v, 0) + 1
            # deterministic pick: highest share, ties by vertex id
            source = min(frequency, key=lambda vertex: (-frequency[vertex], vertex))
            keys = [key for key in missing if source in key]
            if frequency[source] >= 2:
                targets = [v if u == source else u for u, v in keys]
                slots = [missing.pop(key) for key in keys]
                self._batch_from_source(source, targets, results, slots)
            else:
                # every endpoint is unique: plain point-to-point searches
                # (the cache was already consulted — and missed — above)
                for key, slots in missing.items():
                    value = self._p2p_compute(key)
                    for slot in slots:
                        results[slot] = value
                missing = {}
        return results

    def endpoint_distances(
        self, vertices: Sequence[Vertex], origin: Vertex, destination: Vertex
    ) -> tuple[np.ndarray, np.ndarray]:
        # two truncated sweeps — one per shared endpoint (the network is
        # undirected, so searching *from* the endpoint answers "to" queries)
        return (
            self.distances_many(origin, vertices),
            self.distances_many(destination, vertices),
        )

    def stats(self) -> dict[str, float]:
        return {
            "build_seconds": 0.0,
            "sssp_runs": float(self.sssp_runs),
        }


def make_backend(
    name: str,
    network: RoadNetwork,
    host: "DistanceOracle",
    store: "object | None" = None,
) -> DistanceBackend:
    """Instantiate the named backend over ``network``.

    When an :class:`repro.artifacts.ArtifactStore` is passed and ``name`` has
    persistable state, the backend is served from the store (building and
    saving on a miss) — bit-identical to a fresh build.
    """
    if store is not None and name in ("apsp", "ch", "hub_labels"):
        backend, _loaded = store.load_or_build(name, network, host)
        return backend
    if name == "apsp":
        return APSPBackend(network)
    if name == "ch":
        return CHBackend(network, host)
    if name == "hub_labels":
        return HubLabelBackend(network)
    if name == "dijkstra":
        return DijkstraBackend(network, host)
    raise ValueError(f"unknown distance backend {name!r}; available: {BACKEND_NAMES}")


__all__ = [
    "APSP_VERTEX_LIMIT",
    "BACKEND_NAMES",
    "CH_VERTEX_LIMIT",
    "APSPBackend",
    "CHBackend",
    "DijkstraBackend",
    "DistanceBackend",
    "HubLabelBackend",
    "make_backend",
    "select_backend_name",
    "build_contraction_hierarchy",
]
