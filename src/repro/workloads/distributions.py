"""Spatial and temporal distributions used by the synthetic workload generators.

The real datasets of the paper (NYC TLC and Didi Chengdu) exhibit two key
properties the algorithms are sensitive to:

* **spatial concentration** — pickups and drop-offs cluster around a few
  hotspots (business districts, stations), so routes overlap and ride sharing
  is actually possible;
* **temporal peaks** — request rates surge during morning and evening rush
  hours, stressing the platform when the fleet is busiest.

Both are modelled here: a mixture-of-Gaussians hotspot sampler snapped to the
nearest road vertex, and a piecewise-constant rush-hour arrival process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.graph import RoadNetwork, Vertex
from repro.utils.geometry import bounding_box


@dataclass
class HotspotModel:
    """Mixture-of-Gaussians sampler over the vertices of a road network.

    Attributes:
        network: the road network whose vertices are sampled.
        num_hotspots: number of Gaussian components.
        spread_fraction: standard deviation of each component as a fraction of
            the network's bounding-box diagonal.
        uniform_share: probability of drawing a uniformly random vertex instead
            of a hotspot-centred one (models background traffic).
    """

    network: RoadNetwork
    num_hotspots: int = 5
    spread_fraction: float = 0.08
    uniform_share: float = 0.25
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        self._vertices = np.array(sorted(self.network.vertices()), dtype=np.int64)
        coordinates = [self.network.coordinates(int(v)) for v in self._vertices]
        self._xs = np.array([point.x for point in coordinates])
        self._ys = np.array([point.y for point in coordinates])
        min_x, min_y, max_x, max_y = bounding_box(coordinates)
        diagonal = float(np.hypot(max_x - min_x, max_y - min_y))
        self._sigma = max(self.spread_fraction * diagonal, 1.0)
        centre_indices = self.rng.choice(len(self._vertices), size=self.num_hotspots, replace=False)
        self._centres = [(self._xs[i], self._ys[i]) for i in centre_indices]
        # hotspot popularity follows a heavy-tailed (Zipf-like) profile
        weights = 1.0 / np.arange(1, self.num_hotspots + 1, dtype=float)
        self._weights = weights / weights.sum()

    def sample_vertex(self) -> Vertex:
        """Draw one vertex: either uniform background traffic or near a hotspot."""
        if self.rng.random() < self.uniform_share:
            return int(self._vertices[int(self.rng.integers(len(self._vertices)))])
        centre_index = int(self.rng.choice(self.num_hotspots, p=self._weights))
        cx, cy = self._centres[centre_index]
        x = cx + self.rng.normal(0.0, self._sigma)
        y = cy + self.rng.normal(0.0, self._sigma)
        return self._nearest_vertex(x, y)

    def sample_pair(self) -> tuple[Vertex, Vertex]:
        """Draw an (origin, destination) pair with distinct endpoints."""
        origin = self.sample_vertex()
        destination = self.sample_vertex()
        attempts = 0
        while destination == origin and attempts < 10:
            destination = self.sample_vertex()
            attempts += 1
        if destination == origin:
            # fall back to any other vertex to keep the pair non-degenerate
            offset = int(self.rng.integers(1, len(self._vertices)))
            destination = int(self._vertices[(int(np.searchsorted(self._vertices, origin)) + offset) % len(self._vertices)])
        return origin, destination

    def _nearest_vertex(self, x: float, y: float) -> Vertex:
        distances = (self._xs - x) ** 2 + (self._ys - y) ** 2
        return int(self._vertices[int(np.argmin(distances))])


@dataclass
class RushHourProfile:
    """Piecewise-constant arrival-rate profile over the simulation horizon.

    The default profile has a morning peak around 1/3 of the horizon and a
    stronger evening peak around 3/4 of the horizon, mimicking citywide taxi
    demand curves.
    """

    horizon_seconds: float
    base_rate: float = 1.0
    morning_peak: float = 2.5
    evening_peak: float = 3.0

    def rate_at(self, fraction: float) -> float:
        """Relative arrival rate at ``fraction`` of the horizon (0..1)."""
        morning = self.morning_peak * np.exp(-((fraction - 0.33) ** 2) / (2 * 0.06**2))
        evening = self.evening_peak * np.exp(-((fraction - 0.75) ** 2) / (2 * 0.08**2))
        return float(self.base_rate + morning + evening)

    def sample_release_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` sorted release times following the profile.

        Uses inverse-transform sampling on a discretised version of the rate
        curve, which is accurate enough for workload generation.
        """
        if count <= 0:
            return np.array([], dtype=float)
        grid = np.linspace(0.0, 1.0, 512)
        rates = np.array([self.rate_at(fraction) for fraction in grid])
        cumulative = np.cumsum(rates)
        cumulative = cumulative / cumulative[-1]
        draws = rng.random(count)
        fractions = np.interp(draws, cumulative, grid)
        times = np.sort(fractions) * self.horizon_seconds
        return times


# Empirical passenger-count distribution of NYC yellow-taxi trips (rounded);
# used to draw request capacities K_r for both cities, as the paper generates
# Chengdu's K_r from NYC's distribution.
NYC_PASSENGER_COUNT_DISTRIBUTION: dict[int, float] = {
    1: 0.72,
    2: 0.14,
    3: 0.04,
    4: 0.02,
    5: 0.05,
    6: 0.03,
}


def sample_request_capacity(rng: np.random.Generator) -> int:
    """Draw a request capacity ``K_r`` from the NYC passenger-count distribution."""
    values = list(NYC_PASSENGER_COUNT_DISTRIBUTION)
    probabilities = np.array(list(NYC_PASSENGER_COUNT_DISTRIBUTION.values()))
    probabilities = probabilities / probabilities.sum()
    return int(rng.choice(values, p=probabilities))


def sample_worker_capacity(rng: np.random.Generator, nominal: int) -> int:
    """Draw a worker capacity ``K_w`` ~ Gaussian around the nominal value (>= 1).

    Table 5 notes that worker capacities are generated with a Gaussian
    distribution centred on the configured value because neither dataset
    records vehicle capacities.
    """
    value = int(round(rng.normal(loc=nominal, scale=1.0)))
    return max(value, 1)
