"""Scenario construction: city + fleet + request stream -> URPSM instance.

A :class:`ScenarioConfig` captures every knob of Table 5 (grid size, deadline,
worker capacity, penalty factor, alpha, fleet size) plus the scale of the
synthetic city. :func:`build_instance` turns a config into a ready-to-simulate
:class:`~repro.core.instance.URPSMInstance`; :func:`dataset_statistics`
reproduces the Table 4 dataset summary for the synthetic stand-ins.

Two named cities are provided:

* ``nyc-like`` — larger Manhattan-style grid (stand-in for the NYC dataset);
* ``chengdu-like`` — smaller ring-radial city (stand-in for Chengdu).

Real maps join the registry two ways: the bundled ``riverton`` extract
(ingested from ``tests/fixtures/riverton.geojson``), and ad-hoc ``file:``
city names — ``city="file:extracts/manhattan.geojson"`` ingests the named
GeoJSON/CSV file through :mod:`repro.ingest` at build time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.instance import InstanceDynamics, URPSMInstance
from repro.core.objective import ObjectiveConfig, PenaltyPolicy
from repro.exceptions import ConfigurationError
from repro.network.generators import grid_city, random_geometric_city, ring_radial_city
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle
from repro.utils.rng import derive_seed
from repro.workloads.requests import (
    RequestGeneratorConfig,
    generate_requests,
    sample_cancellations,
)
from repro.workloads.workers import (
    WorkerGeneratorConfig,
    generate_workers,
    staggered_shifts,
)

CITY_BUILDERS = {
    "nyc-like": lambda seed: grid_city(rows=36, columns=36, block_metres=280.0, seed=seed,
                                       name="nyc-like"),
    "metro-grid": lambda seed: grid_city(rows=60, columns=60, block_metres=260.0, seed=seed,
                                         name="metro-grid"),
    "chengdu-like": lambda seed: ring_radial_city(rings=8, radials=24, ring_spacing_metres=700.0,
                                                  seed=seed, name="chengdu-like"),
    "small-grid": lambda seed: grid_city(rows=12, columns=12, block_metres=250.0, seed=seed,
                                         name="small-grid"),
    "random": lambda seed: random_geometric_city(num_vertices=250, seed=seed, name="random"),
    "riverton": lambda seed: _riverton_city(),
}
"""Named cities available to scenarios.

``metro-grid`` (~3.6k vertices) sits past the dense-APSP comfort zone on
purpose: it is the workload where the hierarchical oracle backends earn
their keep (the ``"auto"`` policy picks the contraction hierarchy there).
``riverton`` is the bundled real-map extract — ingested, not generated, so
its seed argument is ignored (the network is a fixed artifact of the file).
"""

FILE_CITY_PREFIX = "file:"


def _riverton_city() -> RoadNetwork:
    """Ingest the bundled riverton GeoJSON fixture (deterministic)."""
    from repro.ingest import RIVERTON_FIXTURE, fixture_path, ingest_file

    network, _report = ingest_file(fixture_path(RIVERTON_FIXTURE), name="riverton")
    return network


@dataclass(frozen=True)
class ScenarioConfig:
    """Full description of one experimental scenario (Table 5 parameters).

    Attributes:
        city: one of :data:`CITY_BUILDERS`.
        num_workers: fleet size ``|W|``.
        num_requests: number of requests ``|R|``.
        worker_capacity: nominal worker capacity ``K_w``.
        deadline_minutes: service window ``e_r - t_r`` in minutes.
        penalty_factor: ``p_r = penalty_factor * dis(o_r, d_r)``.
        alpha: weight of the travel cost in the unified objective.
        grid_km: grid-index cell size ``g`` in kilometres.
        horizon_hours: length of the simulated day.
        seed: master seed; all generator seeds derive from it.
        city_seed: optional separate seed for the city builder; ``None``
            derives the city from ``seed``. Sweeps that replicate a scenario
            under many workload seeds pin ``city_seed`` so every replicate
            shares one road network (and the runner's network/oracle cache).
        use_hub_labels: force hub labels as the oracle accelerator.
        oracle_precompute: legacy oracle acceleration spelling — ``"auto"``,
            ``"apsp"``, ``"hub_labels"`` or ``"none"``; superseded by
            ``oracle_backend`` when that is set.
        oracle_backend: distance backend — ``"auto"`` (dense all-pairs table
            for networks up to a couple thousand vertices, a contraction
            hierarchy beyond, flat hub labels for very large graphs),
            ``"apsp"``, ``"ch"``, ``"hub_labels"`` or ``"dijkstra"``. Every
            backend is value-exact; the choice only trades build cost
            against query speed.
        cancellation_rate: probability that a rider cancels their request
            between release and deadline (0 disables; requires the event
            kernel).
        shift_hours: staggered duty-window length per worker in hours (0 =
            everyone on duty for the whole horizon; requires the event
            kernel).
        oracle_artifact_dir: optional root directory of the content-addressed
            preprocessing store (:mod:`repro.artifacts`). Precomputed oracle
            backends are then loaded from / saved to disk, keyed by the
            network's content hash.
    """

    city: str = "chengdu-like"
    num_workers: int = 100
    num_requests: int = 1500
    worker_capacity: int = 4
    deadline_minutes: float = 10.0
    penalty_factor: float = 10.0
    alpha: float = 1.0
    grid_km: float = 2.0
    horizon_hours: float = 4.0
    seed: int = 2018
    city_seed: int | None = None
    use_hub_labels: bool = False
    oracle_precompute: str = "auto"
    oracle_backend: str | None = None
    cancellation_rate: float = 0.0
    shift_hours: float = 0.0
    oracle_artifact_dir: str | None = None

    def __post_init__(self) -> None:
        """Reject out-of-range dynamics knobs at construction.

        A rate of 1.3 or a negative shift used to surface as an opaque
        failure deep inside the run (or worse, silently clamp); fail fast
        with the field name instead.
        """
        if not 0.0 <= self.cancellation_rate <= 1.0:
            raise ConfigurationError(
                f"cancellation_rate must be within [0, 1], got {self.cancellation_rate}"
            )
        if self.shift_hours < 0.0:
            raise ConfigurationError(
                f"shift_hours must be >= 0 (0 disables shifts), got {self.shift_hours}"
            )
        if self.horizon_hours <= 0.0:
            raise ConfigurationError(
                f"horizon_hours must be positive, got {self.horizon_hours}"
            )

    def with_overrides(self, **kwargs) -> "ScenarioConfig":
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    @property
    def effective_city_seed(self) -> int:
        """Seed the city builder actually uses (``city_seed`` or ``seed``)."""
        return self.seed if self.city_seed is None else self.city_seed

    def objective(self) -> ObjectiveConfig:
        """The objective configuration implied by ``alpha`` / ``penalty_factor``."""
        return ObjectiveConfig(
            alpha=self.alpha,
            penalty_policy=PenaltyPolicy.PROPORTIONAL,
            penalty_value=self.penalty_factor,
        )


def paper_default_scenario(city: str = "chengdu-like", **overrides) -> ScenarioConfig:
    """The Table 5 defaults scaled to a laptop-sized synthetic city."""
    config = ScenarioConfig(city=city)
    return config.with_overrides(**overrides) if overrides else config


def build_network(config: ScenarioConfig) -> RoadNetwork:
    """Build (deterministically) the city of ``config``.

    Registry names come from :data:`CITY_BUILDERS`; ``file:<path>`` names
    ingest the referenced GeoJSON/CSV road extract via :mod:`repro.ingest`
    (deterministic for a fixed file, like the registry cities are for a
    fixed seed).
    """
    if config.city.startswith(FILE_CITY_PREFIX):
        from repro.ingest import IngestError, ingest_file

        path = config.city[len(FILE_CITY_PREFIX):]
        try:
            network, _report = ingest_file(path)
        except IngestError as exc:
            raise ConfigurationError(f"cannot ingest city {config.city!r}: {exc}") from exc
        return network
    try:
        builder = CITY_BUILDERS[config.city]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown city {config.city!r}; available: {sorted(CITY_BUILDERS)} "
            f"or '{FILE_CITY_PREFIX}<path>' for a GeoJSON/CSV extract"
        ) from exc
    return builder(derive_seed(config.effective_city_seed, "city", config.city))


def make_oracle(network: RoadNetwork, config: ScenarioConfig) -> DistanceOracle:
    """Build the distance oracle for ``config``, choosing the backend.

    ``oracle_backend`` wins when set; otherwise the legacy
    ``use_hub_labels``/``oracle_precompute`` spelling is honoured.
    ``"auto"`` defers to :func:`repro.network.backends.select_backend_name`
    — a dense all-pairs table for networks up to a couple thousand vertices
    (the regime of the synthetic cities), a contraction hierarchy for
    city-scale graphs, flat hub labels beyond; the paper similarly assumes
    an effectively O(1) shortest-distance oracle (hub labelling + LRU
    cache). Every backend is value-exact, so the choice never changes
    simulation outcomes.
    """
    if config.oracle_backend is not None:
        mode = config.oracle_backend
    else:
        mode = "hub_labels" if config.use_hub_labels else config.oracle_precompute
    if mode == "none":
        mode = "dijkstra"
    return DistanceOracle(network, backend=mode, artifact_dir=config.oracle_artifact_dir)


def build_instance(
    config: ScenarioConfig, network: RoadNetwork | None = None, oracle: DistanceOracle | None = None
) -> URPSMInstance:
    """Materialise the scenario into a :class:`URPSMInstance`.

    Passing a pre-built ``network``/``oracle`` lets parameter sweeps reuse the
    expensive city construction across configurations.
    """
    if network is None:
        network = build_network(config)
    if oracle is None:
        oracle = make_oracle(network, config)
    objective = config.objective()

    workers = generate_workers(
        network,
        WorkerGeneratorConfig(
            count=config.num_workers,
            nominal_capacity=config.worker_capacity,
            seed=derive_seed(config.seed, "workers"),
        ),
    )
    requests = generate_requests(
        network,
        oracle,
        objective,
        RequestGeneratorConfig(
            count=config.num_requests,
            horizon_seconds=config.horizon_hours * 3600.0,
            deadline_seconds=config.deadline_minutes * 60.0,
            seed=derive_seed(config.seed, "requests"),
        ),
    )
    instance = URPSMInstance(
        network=network,
        oracle=oracle,
        workers=workers,
        requests=requests,
        objective=objective,
        name=f"{config.city}-W{config.num_workers}-R{config.num_requests}",
        dynamics=_build_dynamics(config, workers, requests),
    )
    instance.validate()
    return instance


def _build_dynamics(config: ScenarioConfig, workers, requests) -> InstanceDynamics | None:
    """Materialise the dynamic-fleet knobs, or ``None`` when all are off."""
    if config.cancellation_rate <= 0.0 and config.shift_hours <= 0.0:
        return None
    dynamics = InstanceDynamics()
    if config.cancellation_rate > 0.0:
        dynamics.cancellations = sample_cancellations(
            requests,
            rate=config.cancellation_rate,
            seed=derive_seed(config.seed, "cancellations"),
        )
    if config.shift_hours > 0.0:
        dynamics.shifts = staggered_shifts(
            workers,
            horizon_seconds=config.horizon_hours * 3600.0,
            shift_seconds=config.shift_hours * 3600.0,
            seed=derive_seed(config.seed, "shifts"),
        )
    # degenerate knobs (rate 0 draws, horizon-covering shifts) yield no actual
    # dynamics; keep such instances runnable on either engine
    return None if dynamics.is_empty else dynamics


def dataset_statistics(config: ScenarioConfig) -> dict[str, float]:
    """Table 4 style statistics (#requests, #vertices, #edges) for a scenario."""
    network = build_network(config)
    return {
        "dataset": config.city,
        "requests": float(config.num_requests),
        "vertices": float(network.num_vertices),
        "edges": float(network.num_edges),
    }
