"""Synthetic request-stream generation.

Each request mirrors the tuples of the paper's datasets: a pickup location, a
drop-off location, a release time, a delivery deadline (release time plus the
configured window, Table 5), a capacity drawn from the NYC passenger-count
distribution, and a penalty derived from the objective configuration
(``p_r = factor * dis(o_r, d_r)`` by default).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import Cancellation
from repro.core.objective import ObjectiveConfig
from repro.core.types import Request
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle
from repro.utils.rng import make_rng
from repro.workloads.distributions import (
    HotspotModel,
    RushHourProfile,
    sample_request_capacity,
)


@dataclass
class RequestGeneratorConfig:
    """Parameters of the synthetic request stream.

    Attributes:
        count: number of requests.
        horizon_seconds: length of the simulated day.
        deadline_seconds: service window added to the release time (``e_r - t_r``).
        num_hotspots: spatial hotspots of the demand model.
        uniform_share: fraction of background (uniform) traffic.
        min_direct_seconds: resampled if the direct travel time is below this,
            so degenerate zero-length trips are avoided.
        seed: RNG seed.
    """

    count: int = 1000
    horizon_seconds: float = 6 * 3600.0
    deadline_seconds: float = 600.0
    num_hotspots: int = 5
    uniform_share: float = 0.25
    min_direct_seconds: float = 30.0
    seed: int = 42


def generate_requests(
    network: RoadNetwork,
    oracle: DistanceOracle,
    objective: ObjectiveConfig,
    config: RequestGeneratorConfig,
) -> list[Request]:
    """Generate a time-ordered synthetic request stream.

    Penalties are assigned with ``objective.penalty_for(direct_travel_time)``
    so that the default matches the paper's ``p_r = factor * dis(o_r, d_r)``.
    """
    rng = make_rng(config.seed)
    hotspots = HotspotModel(
        network=network,
        num_hotspots=config.num_hotspots,
        uniform_share=config.uniform_share,
        rng=make_rng(config.seed + 1),
    )
    profile = RushHourProfile(horizon_seconds=config.horizon_seconds)
    release_times = profile.sample_release_times(config.count, rng)

    requests: list[Request] = []
    for index in range(config.count):
        origin, destination, direct = _sample_trip(hotspots, oracle, rng, config)
        release = float(release_times[index])
        deadline = release + config.deadline_seconds
        penalty = objective.penalty_for(direct)
        requests.append(
            Request(
                id=index,
                origin=origin,
                destination=destination,
                release_time=release,
                deadline=deadline,
                penalty=penalty if penalty != float("inf") else float("inf"),
                capacity=sample_request_capacity(rng),
            )
        )
    return requests


def _sample_trip(
    hotspots: HotspotModel,
    oracle: DistanceOracle,
    rng: np.random.Generator,
    config: RequestGeneratorConfig,
) -> tuple[int, int, float]:
    """Draw an (origin, destination) pair with a non-trivial direct travel time."""
    for _ in range(20):
        origin, destination = hotspots.sample_pair()
        direct = oracle.distance(origin, destination)
        if direct >= config.min_direct_seconds and direct < float("inf"):
            return origin, destination, direct
    # give up gracefully: accept the last sample even if short
    return origin, destination, direct


def sample_cancellations(
    requests: list[Request],
    rate: float,
    seed: int,
    earliest_fraction: float = 0.1,
    latest_fraction: float = 0.9,
) -> list[Cancellation]:
    """Draw rider cancellations for a request stream (event-kernel dynamics).

    Each request is cancelled independently with probability ``rate``; the
    cancellation time is uniform inside
    ``[release + earliest_fraction * window, release + latest_fraction * window]``,
    so cancellations always land between the release and the deadline — some
    before the batch flush or pickup (and therefore effective), some too late.

    Args:
        requests: the stream to draw from.
        rate: per-request cancellation probability in ``[0, 1]``.
        seed: RNG seed.
        earliest_fraction: earliest cancellation as a fraction of the window.
        latest_fraction: latest cancellation as a fraction of the window.

    Returns:
        Cancellations sorted by time.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"cancellation rate must be in [0, 1], got {rate}")
    if rate == 0.0 or not requests:
        return []
    rng = make_rng(seed)
    cancellations: list[Cancellation] = []
    for request in requests:
        if rng.random() >= rate:
            continue
        fraction = earliest_fraction + (latest_fraction - earliest_fraction) * rng.random()
        cancellations.append(
            Cancellation(
                request_id=request.id,
                time=request.release_time + fraction * request.time_window,
            )
        )
    cancellations.sort(key=lambda cancellation: cancellation.time)
    return cancellations


def poisson_request_stream(
    network: RoadNetwork,
    oracle: DistanceOracle,
    objective: ObjectiveConfig,
    rate_per_second: float,
    horizon_seconds: float,
    deadline_seconds: float,
    seed: int = 42,
) -> list[Request]:
    """A simpler homogeneous Poisson stream (used by tests and examples)."""
    rng = make_rng(seed)
    hotspots = HotspotModel(network=network, rng=make_rng(seed + 1))
    requests: list[Request] = []
    clock = 0.0
    index = 0
    while True:
        clock += float(rng.exponential(1.0 / rate_per_second))
        if clock > horizon_seconds:
            break
        origin, destination = hotspots.sample_pair()
        direct = oracle.distance(origin, destination)
        requests.append(
            Request(
                id=index,
                origin=origin,
                destination=destination,
                release_time=clock,
                deadline=clock + deadline_seconds,
                penalty=objective.penalty_for(direct),
                capacity=sample_request_capacity(rng),
            )
        )
        index += 1
    return requests
