"""Synthetic fleet generation.

The paper places workers at random road-network vertices and draws their
capacities from a Gaussian centred on the configured nominal capacity
(Table 5). Fleets here follow the same recipe, with an optional bias towards
demand hotspots so that larger synthetic cities keep realistic pickup times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Worker
from repro.network.graph import RoadNetwork
from repro.utils.rng import make_rng
from repro.workloads.distributions import HotspotModel, sample_worker_capacity


@dataclass
class WorkerGeneratorConfig:
    """Parameters of the synthetic fleet.

    Attributes:
        count: number of workers ``|W|``.
        nominal_capacity: centre of the Gaussian capacity distribution ``K_w``.
        hotspot_share: fraction of workers initially placed near demand
            hotspots (0 places everyone uniformly at random).
        seed: RNG seed.
    """

    count: int = 100
    nominal_capacity: int = 4
    hotspot_share: float = 0.5
    seed: int = 7


def generate_workers(network: RoadNetwork, config: WorkerGeneratorConfig) -> list[Worker]:
    """Generate a fleet of workers positioned on ``network``."""
    rng = make_rng(config.seed)
    vertices = sorted(network.vertices())
    hotspots = HotspotModel(network=network, rng=make_rng(config.seed + 1))
    workers: list[Worker] = []
    for index in range(config.count):
        if rng.random() < config.hotspot_share:
            location = hotspots.sample_vertex()
        else:
            location = int(vertices[int(rng.integers(len(vertices)))])
        workers.append(
            Worker(
                id=index,
                initial_location=location,
                capacity=sample_worker_capacity(rng, config.nominal_capacity),
            )
        )
    return workers
