"""Synthetic fleet generation.

The paper places workers at random road-network vertices and draws their
capacities from a Gaussian centred on the configured nominal capacity
(Table 5). Fleets here follow the same recipe, with an optional bias towards
demand hotspots so that larger synthetic cities keep realistic pickup times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instance import WorkerShift
from repro.core.types import Worker
from repro.network.graph import RoadNetwork
from repro.utils.rng import make_rng
from repro.workloads.distributions import HotspotModel, sample_worker_capacity


@dataclass
class WorkerGeneratorConfig:
    """Parameters of the synthetic fleet.

    Attributes:
        count: number of workers ``|W|``.
        nominal_capacity: centre of the Gaussian capacity distribution ``K_w``.
        hotspot_share: fraction of workers initially placed near demand
            hotspots (0 places everyone uniformly at random).
        seed: RNG seed.
    """

    count: int = 100
    nominal_capacity: int = 4
    hotspot_share: float = 0.5
    seed: int = 7


def generate_workers(network: RoadNetwork, config: WorkerGeneratorConfig) -> list[Worker]:
    """Generate a fleet of workers positioned on ``network``."""
    rng = make_rng(config.seed)
    vertices = sorted(network.vertices())
    hotspots = HotspotModel(network=network, rng=make_rng(config.seed + 1))
    workers: list[Worker] = []
    for index in range(config.count):
        if rng.random() < config.hotspot_share:
            location = hotspots.sample_vertex()
        else:
            location = int(vertices[int(rng.integers(len(vertices)))])
        workers.append(
            Worker(
                id=index,
                initial_location=location,
                capacity=sample_worker_capacity(rng, config.nominal_capacity),
            )
        )
    return workers


def staggered_shifts(
    workers: list[Worker],
    horizon_seconds: float,
    shift_seconds: float,
    seed: int,
    jitter_share: float = 0.25,
) -> list[WorkerShift]:
    """Staggered duty windows covering the horizon (event-kernel dynamics).

    Shift starts are spread evenly over ``[0, horizon - shift]`` in worker
    order, with a uniform jitter of up to ``jitter_share`` of the spacing so
    fleets do not change in lockstep. The first worker always starts at 0, so
    some capacity is on duty from the beginning.

    Args:
        workers: the fleet.
        horizon_seconds: length of the simulated day.
        shift_seconds: duty-window length; values at or above the horizon
            mean every worker is always on duty, which is the same as having
            no shifts at all — an empty list is returned so such instances
            stay dynamics-free (and keep working on the legacy engine).
        seed: RNG seed for the jitter.

    Returns:
        One :class:`~repro.core.instance.WorkerShift` per worker, or ``[]``
        when the shift covers the whole horizon.
    """
    if shift_seconds <= 0:
        raise ValueError(f"shift_seconds must be positive, got {shift_seconds}")
    latest_start = max(horizon_seconds - shift_seconds, 0.0)
    if latest_start == 0.0:
        return []
    rng = make_rng(seed)
    spacing = latest_start / max(len(workers) - 1, 1)
    shifts: list[WorkerShift] = []
    for index, worker in enumerate(workers):
        start = min(index * spacing + jitter_share * spacing * float(rng.random()), latest_start)
        if index == 0:
            start = 0.0
        shifts.append(WorkerShift(worker_id=worker.id, start=start, end=start + shift_seconds))
    return shifts
