"""Synthetic workloads: demand distributions, request streams, fleets, scenarios."""

from repro.workloads.distributions import (
    HotspotModel,
    NYC_PASSENGER_COUNT_DISTRIBUTION,
    RushHourProfile,
    sample_request_capacity,
    sample_worker_capacity,
)
from repro.workloads.requests import (
    RequestGeneratorConfig,
    generate_requests,
    poisson_request_stream,
    sample_cancellations,
)
from repro.workloads.scenarios import (
    CITY_BUILDERS,
    ScenarioConfig,
    build_instance,
    build_network,
    dataset_statistics,
    make_oracle,
    paper_default_scenario,
)
from repro.workloads.workers import WorkerGeneratorConfig, generate_workers, staggered_shifts

__all__ = [
    "HotspotModel",
    "NYC_PASSENGER_COUNT_DISTRIBUTION",
    "RushHourProfile",
    "sample_request_capacity",
    "sample_worker_capacity",
    "RequestGeneratorConfig",
    "generate_requests",
    "poisson_request_stream",
    "sample_cancellations",
    "CITY_BUILDERS",
    "ScenarioConfig",
    "build_instance",
    "build_network",
    "dataset_statistics",
    "make_oracle",
    "paper_default_scenario",
    "WorkerGeneratorConfig",
    "generate_workers",
    "staggered_shifts",
]
