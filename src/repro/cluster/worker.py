"""Shard worker process: a deterministic full-fleet replica + inner dispatcher.

Each worker process owns one spatial shard. It holds its *own*
:class:`~repro.simulation.fleet.FleetState` replica of the whole fleet, the
shard's inner dispatcher over a
:class:`~repro.sharding.fleet_view.ShardFleetView`, and (optionally) a
shard-local distance oracle — the ``shard_oracle_backend`` machinery of the
sharded dispatcher, built per process.

Determinism contract
--------------------

The cluster dispatcher always materialises exact positions
(``requires_exact_positions``), so the authoritative fleet is advanced to the
event clock before every dispatcher interaction. The replica reproduces the
slice of that state its decisions depend on from three ingredients, all
deterministic:

1. **plan snapshots** piggybacked on each command — absolute (origin, start
   time, stops, records) state of every worker whose plan changed since this
   shard was last commanded;
2. **membership moves** — the front door re-buckets moved workers against the
   partition (the exact mirror of ``ShardedDispatcher._resync``, computed on
   the authoritative fleet) and piggybacks the ``(worker, shard)`` deltas, so
   membership never depends on replica-side advancement; and
3. **member advancement**: before a decision, the replica advances *its own
   members* through the authoritative ``advance_all`` clock sequence the
   command carries, then to the command clock, and refreshes its grid with
   their exact positions. Advancement must replay the exact clock *sequence*,
   not just the final clock: partial advancement between stops computes
   ``start_time = arr[0] + moved_cost``, associating edge costs by
   advancement step, so advancing straight to ``t2`` can differ in the last
   ULP from advancing via an intermediate ``t1`` — and the authoritative
   engine advances the whole fleet at *every* arrival (deferred ones
   included) and flush. Replaying that sequence keeps replica anchors
   bit-identical to the authoritative fleet's, which is what makes cluster
   replays bit-identical to in-process sharded runs at K>1 (at K=1 the
   in-process wrapper stays lazy, a different — equally valid — float
   association, and metrics agree to ~1e-9 relative instead). Per-command replica
   work stays proportional to the shard (not the fleet): only members walk,
   and cancellations touch no positions at all, exactly like their
   in-process counterparts.
"""

from __future__ import annotations

import random
import traceback

from repro.cluster.messages import (
    AckReply,
    AddWorkerCommand,
    CancelCommand,
    CancelReply,
    DispatchCommand,
    DispatchReply,
    FlushCommand,
    FlushReply,
    NetworkUpdateCommand,
    OutcomePayload,
    RecordSnapshot,
    ShardInit,
    ShutdownCommand,
    StatsCommand,
    StatsReply,
    UpdateReply,
    WorkerPlan,
)
from repro.core.route import Route
from repro.simulation.fleet import FleetState, ServiceRecord, WorkerState
from repro.utils.rng import make_rng


def plan_snapshot(state: WorkerState, walked_cost: float = 0.0) -> WorkerPlan:
    """Absolute snapshot of one worker's plan (both sides use this)."""
    route = state.route
    return WorkerPlan(
        worker_id=state.worker.id,
        origin=route.origin,
        start_time=route.start_time,
        stops=tuple(route.stops),
        records=tuple(
            RecordSnapshot(
                request=record.request,
                pickup_time=record.pickup_time,
                dropoff_time=record.dropoff_time,
            )
            for record in state.assigned_requests.values()
        ),
        online=state.online,
        plan_version=state.plan_version,
        concrete_path=route.concrete_path,
        walked_cost=walked_cost,
    )


def make_shard_oracle(instance, config, num_shards: int):
    """Shard-local oracle per ``shard_oracle_backend`` (``None`` = shared).

    Mirrors ``ShardedDispatcher._make_shard_oracle`` for a single shard: the
    oracle answers over the full network, so every backend stays value-exact
    with the shared one.

    When the instance oracle carries a content-addressed artifact store, the
    shard-local oracle shares its root: cold starts warm-load preprocessed
    backends, and — crucially for live network updates — a worker-side
    ``refresh_topology`` after the instance oracle already rebuilt (and
    saved) the mutated topology warm-starts from the store instead of
    rebuilding per shard.
    """
    mode = config.shard_oracle_backend
    if mode == "shared":
        return None
    from repro.network.backends import select_backend_name
    from repro.network.oracle import DistanceOracle

    if mode == "auto":
        hint = max(1, len(instance.requests) // max(1, num_shards))
        mode = select_backend_name(instance.network.csr.num_vertices, query_volume_hint=hint)
    store = getattr(instance.oracle, "artifact_store", None)
    artifact_dir = store.root if store is not None else None
    return DistanceOracle(instance.network, backend=mode, artifact_dir=artifact_dir)


class ShardWorkerRuntime:
    """The state machine a shard worker process runs."""

    def __init__(self, init: ShardInit) -> None:
        self.shard_id = init.shard_id
        self.partition = init.partition
        self.instance = init.instance
        # per-process deterministic seeding (spawn-key derived at the front
        # door); any library-level randomness inside a worker process draws
        # from streams fully determined by the platform seed and shard id.
        random.seed(init.seed)
        self.rng = make_rng(init.seed)
        self.fleet = FleetState(self.instance.workers, self.instance.oracle, lazy=True)
        # a respawned replica replays workers added after the original fork;
        # their exact member state arrives with the first command (the front
        # door cleared this shard's sync cursor at adoption)
        for worker, clock in init.extra_workers:
            self.fleet.add_worker(worker, at_time=clock)
        self.fleet.drain_moved()
        # network-update cursor: ``init.applied_updates`` are already baked
        # into the pickled instance (the respawn snapshot is taken from the
        # live, mutated network), so the replica only records how many it has
        # and rejects out-of-order NetworkUpdateCommands as protocol errors.
        self.updates_applied = len(init.applied_updates)
        self.membership: dict[int, int] = dict(init.membership)
        members = {
            worker_id
            for worker_id, shard in self.membership.items()
            if shard == init.shard_id
        }
        self.shard_oracle = make_shard_oracle(self.instance, init.config, init.num_shards)

        from repro.dispatch import make_dispatcher  # lazy: registry import

        from repro.sharding.fleet_view import ShardFleetView

        self.view = ShardFleetView(self.fleet, init.shard_id, members, oracle=self.shard_oracle)
        self.inner = make_dispatcher(init.inner, init.config)
        self.inner.setup(self.instance, self.view)

    # ----------------------------------------------------------------- sync

    def _apply_plans(self, plans) -> None:
        for plan in plans:
            state = self.fleet.peek_state(plan.worker_id)
            route = Route(
                worker=state.worker,
                origin=plan.origin,
                start_time=plan.start_time,
                stops=list(plan.stops),
                concrete_path=plan.concrete_path,
            )
            state.replace_route(route)
            state.assigned_requests = {
                record.request.id: ServiceRecord(
                    request=record.request,
                    worker_id=plan.worker_id,
                    pickup_time=record.pickup_time,
                    dropoff_time=record.dropoff_time,
                )
                for record in plan.records
            }
            state.online = plan.online
            state.plan_version = plan.plan_version

    def _apply_moves(self, moves) -> None:
        """Install the front door's membership deltas (authoritative)."""
        grid = self.inner.grid
        members = self.view.members
        mine = self.shard_id
        for worker_id, shard_id in moves:
            previous = self.membership.get(worker_id, shard_id)
            self.membership[worker_id] = shard_id
            if previous == mine and shard_id != mine:
                members.discard(worker_id)
                grid.remove(worker_id)
            elif shard_id == mine and previous != mine:
                members.add(worker_id)

    def _advance_members(self) -> None:
        """Advance this shard's members to the clock; refresh their grid cells.

        The discarded drains mirror the bookkeeping the authoritative engine
        performs after its own advancement — replicas have no event heap, so
        completions, dirty plans and motion marks are simply consumed.
        """
        fleet = self.fleet
        grid = self.inner.grid
        for worker_id in sorted(self.view.members):
            state = fleet.state_of(worker_id)
            grid.update(worker_id, state.position)
        fleet.drain_completions()
        fleet.drain_dirty_plans()
        fleet.drain_moved()

    def _replay_advances(self, clocks) -> None:
        """Advance members through the authoritative ``advance_all`` sequence.

        Mirrors ``FleetState.advance_all`` restricted to this shard's members:
        direct ``advance_to`` per clock, completions consumed (replicas have
        no metrics). Clocks at or before a member's current anchor are no-ops,
        so plan snapshots applied just before (which are materialised at the
        command clock) are never rewound.
        """
        fleet = self.fleet
        states = fleet.states
        for clock in clocks:
            fleet.set_clock(clock)
            for worker_id in sorted(self.view.members):
                states[worker_id].advance_to(clock)

    def _prepare(self, command, advance: bool) -> None:
        self._apply_moves(command.moves)
        self._apply_plans(command.plans)
        if advance:
            self._replay_advances(getattr(command, "advance_clocks", ()))
        self.fleet.set_clock(command.clock)
        if advance:
            self._advance_members()

    def _housekeeping(self) -> None:
        """Consume fleet change-tracking after an inner-dispatcher call."""
        self.fleet.drain_completions()
        self.fleet.drain_dirty_plans()
        self.fleet.drain_moved()

    def _travelled_baseline(self) -> dict[int, float]:
        """Members' travelled costs before the inner call (see ``walked_cost``)."""
        states = self.fleet.states
        return {
            worker_id: states[worker_id].travelled_cost
            for worker_id in self.view.members
        }

    def _snapshot(self, worker_id: int, baseline: dict[int, float]) -> WorkerPlan:
        state = self.fleet.peek_state(worker_id)
        return plan_snapshot(
            state,
            walked_cost=state.travelled_cost
            - baseline.get(worker_id, state.travelled_cost),
        )

    # ------------------------------------------------------------- commands

    def handle_dispatch(self, command: DispatchCommand) -> DispatchReply:
        # batch inners defer — no candidate is touched, so no advancement
        self._prepare(command, advance=not self.inner.is_batched)
        baseline = self._travelled_baseline()
        outcome = self.inner.dispatch(command.request, command.clock)
        # deliveries stamped *during* the decision, in stamping order — the
        # pre-decision advancement already drained its own completions
        completed = tuple(
            record.request.id for record in self.fleet.drain_completions()
        )
        self._housekeeping()
        plan = None
        payload = None
        if outcome is not None:
            payload = OutcomePayload.from_outcome(outcome)
            if outcome.served and outcome.worker_id is not None:
                plan = self._snapshot(outcome.worker_id, baseline)
        return DispatchReply(
            outcome=payload,
            plan=plan,
            next_flush=self.inner.next_flush_time(),
            completed_ids=completed,
        )

    def handle_flush(self, command: FlushCommand) -> FlushReply:
        self._prepare(command, advance=True)
        baseline = self._travelled_baseline()
        # replay the window the front door buffered: deferrals read no fleet
        # state, so replaying them here is value-identical to interleaving
        for request, clock in command.deferrals:
            self.inner.dispatch(request, clock)
        outcomes = self.inner.flush(command.clock)
        completed = tuple(
            record.request.id for record in self.fleet.drain_completions()
        )
        self._housekeeping()
        plans: dict[int, WorkerPlan] = {}
        for outcome in outcomes:
            if outcome.served and outcome.worker_id is not None:
                plans[outcome.worker_id] = self._snapshot(outcome.worker_id, baseline)
        pending = tuple(request.id for request in self.inner.pending_requests) if (
            self.inner.is_batched
        ) else ()
        return FlushReply(
            outcomes=tuple(OutcomePayload.from_outcome(outcome) for outcome in outcomes),
            plans=plans,
            pending_ids=pending,
            next_flush=self.inner.next_flush_time(),
            completed_ids=completed,
        )

    def handle_cancel(self, command: CancelCommand) -> CancelReply:
        # the engine cancels without materialising positions; mirror that
        self._prepare(command, advance=False)
        removed = self.inner.cancel(command.request)
        self._housekeeping()
        return CancelReply(removed=removed, next_flush=self.inner.next_flush_time())

    def handle_add_worker(self, command: AddWorkerCommand) -> AckReply:
        worker = command.worker
        self.fleet.set_clock(command.clock)
        self._apply_moves(command.moves)
        state = self.fleet.add_worker(worker, at_time=command.clock)
        shard_id = self.partition.shard_of_vertex(state.position)
        self.membership[worker.id] = shard_id
        if shard_id == self.shard_id:
            self.view.members.add(worker.id)
            self.inner.grid.insert(worker.id, state.position)
        self.fleet.drain_moved()
        return AckReply(next_flush=self.inner.next_flush_time())

    def handle_network_update(self, command: NetworkUpdateCommand) -> UpdateReply:
        """Replay a live network mutation batch on this replica.

        Ordering mirrors the authoritative engine exactly:

        1. membership moves, then the ``advance_all`` clock sequence and
           member advancement to the command clock — all on the *old*
           topology, matching the engine's fleet materialisation before the
           mutation;
        2. the recorded mutations, then instance-oracle and shard-oracle
           ``refresh_topology`` (the instance oracle of the *authoritative*
           process refreshed first and saved the new-topology backend into
           the shared artifact store, so replicas warm-start when one is
           configured);
        3. only then the piggybacked plan snapshots: ``replace_route``
           re-times routes against the replica oracle, so the authoritative
           post-rebuild snapshots must meet the refreshed topology;
        4. a grid rebuild via the inner dispatcher's
           ``notify_network_changed``.

        The reply echoes the replica's post-replay network content hash; the
        front door treats a mismatch as worker death.
        """
        from repro.artifacts import network_content_hash
        from repro.exceptions import DispatchError

        update = command.update
        if update.ordinal != self.updates_applied:
            raise DispatchError(
                f"shard {self.shard_id} replica expected network update "
                f"#{self.updates_applied}, got #{update.ordinal}; replica is "
                "out of sync with the front-door journal"
            )
        self._apply_moves(command.moves)
        self._replay_advances(command.advance_clocks)
        self.fleet.set_clock(command.clock)
        self._advance_members()
        for mutation in update.mutations:
            mutation.apply(self.instance.network)
        self.instance.oracle.refresh_topology()
        if self.shard_oracle is not None:
            self.shard_oracle.refresh_topology()
        self._apply_plans(command.plans)
        self.inner.notify_network_changed()
        self._housekeeping()
        self.updates_applied += 1
        return UpdateReply(
            content_hash=network_content_hash(self.instance.network),
            next_flush=self.inner.next_flush_time(),
        )

    def handle_stats(self, command: StatsCommand) -> StatsReply:
        counters = self.instance.oracle.counters
        merged = {
            "distance_queries": counters.distance_queries,
            "path_queries": counters.path_queries,
            "lower_bound_queries": counters.lower_bound_queries,
            "dijkstra_runs": counters.dijkstra_runs,
            "backend_queries": dict(counters.backend_queries),
            "backend_settled": dict(counters.backend_settled),
        }
        if self.shard_oracle is not None:
            local = self.shard_oracle.counters
            merged["distance_queries"] += local.distance_queries
            merged["path_queries"] += local.path_queries
            merged["lower_bound_queries"] += local.lower_bound_queries
            merged["dijkstra_runs"] += local.dijkstra_runs
            for name, value in local.backend_queries.items():
                merged["backend_queries"][name] = (
                    merged["backend_queries"].get(name, 0) + value
                )
            for name, value in local.backend_settled.items():
                merged["backend_settled"][name] = (
                    merged["backend_settled"].get(name, 0) + value
                )
        return StatsReply(counters=merged)


def shard_worker_main(connection, init: ShardInit) -> None:
    """Entry point of a shard worker process: serve commands until shutdown."""
    import time as _time

    try:
        runtime = ShardWorkerRuntime(init)
    except Exception:  # noqa: BLE001 - surface the build failure to the front door
        connection.send(AckReply(error=traceback.format_exc()))
        connection.close()
        return
    handlers = {
        DispatchCommand: runtime.handle_dispatch,
        FlushCommand: runtime.handle_flush,
        CancelCommand: runtime.handle_cancel,
        AddWorkerCommand: runtime.handle_add_worker,
        NetworkUpdateCommand: runtime.handle_network_update,
        StatsCommand: runtime.handle_stats,
    }
    # chaos-harness fault plan: sleep before replying to selected commands,
    # making the front door's dispatch_timeout path deterministically testable
    delays = dict(init.delay_replies)
    ordinal = -1
    connection.send(AckReply())  # ready
    while True:
        try:
            command = connection.recv()
        except (EOFError, OSError):
            break
        ordinal += 1
        if isinstance(command, ShutdownCommand):
            connection.send(AckReply())
            break
        handler = handlers.get(type(command))
        if handler is None:
            connection.send(AckReply(error=f"unknown command {type(command).__name__}"))
            continue
        try:
            reply = handler(command)
        except Exception:  # noqa: BLE001 - ship the traceback instead of dying silently
            kind = type(command)
            error = traceback.format_exc()
            if kind is DispatchCommand:
                reply = DispatchReply(outcome=None, plan=None, next_flush=None, error=error)
            elif kind is FlushCommand:
                reply = FlushReply(
                    outcomes=(), plans={}, pending_ids=(), next_flush=None, error=error
                )
            elif kind is CancelCommand:
                reply = CancelReply(removed=False, next_flush=None, error=error)
            elif kind is NetworkUpdateCommand:
                reply = UpdateReply(error=error)
            else:
                reply = AckReply(error=error)
        pause = delays.pop(ordinal, None)
        if pause:
            _time.sleep(pause)
        try:
            connection.send(reply)
        except (BrokenPipeError, OSError):
            break
    connection.close()


def shard_worker_from_payload(connection, payload: bytes) -> None:
    """Entry point for respawned workers: unpickle a pre-serialised init.

    The supervisor pickles the :class:`ShardInit` synchronously on the
    thread that observed the worker's death, *before* handing off to the
    spawn thread — the live instance keeps mutating (network updates, added
    workers) while the respawn is in flight, and serialising it at schedule
    time is what pins the replica snapshot to the journal cursor recorded in
    the respawn slot.
    """
    import pickle

    shard_worker_main(connection, pickle.loads(payload))


__all__ = [
    "ShardWorkerRuntime",
    "make_shard_oracle",
    "plan_snapshot",
    "shard_worker_from_payload",
    "shard_worker_main",
]
