"""Front door of the shard-worker cluster: routing, escalation, resilience.

:class:`ClusterDispatcher` implements the full
:class:`~repro.dispatch.base.Dispatcher` interface by delegating each shard's
work to a long-lived worker *process* (one per spatial shard) over a duplex
pipe, instead of calling an in-process inner dispatcher. It mirrors
:class:`~repro.sharding.dispatcher.ShardedDispatcher` decision for decision:

* requests route to the shard containing their origin; a failed immediate
  dispatch **escalates** to the nearest adjacent shards and then globally, so
  a request is only rejected once every live shard has been considered;
* batch windows are **buffered** at the front door with the exact float
  arithmetic of :class:`~repro.dispatch.base.BatchDispatcher` — deferrals
  touch no fleet state, so they accumulate locally (their depth is the
  backpressure signal) and ship inside the flush command as ``(request,
  defer clock)`` pairs the worker replays, one round trip per window instead
  of one per request; cancelling a buffered request never crosses the pipe,
  and every reply piggybacks the worker's true ``next_flush_time`` to keep
  the mirror honest;
* fleet state is synchronised by shipping absolute per-worker **plan
  snapshots** keyed on a ``(plan_version, online)`` cursor per shard — only
  plans that changed since a shard was last commanded cross the pipe — plus
  **membership moves**: the front door re-buckets moved workers against the
  partition on the authoritative fleet (the exact mirror of
  ``ShardedDispatcher._resync``, run at the same decision points) and
  piggybacks the deltas, so each replica advances only its *own members* and
  per-command work stays proportional to the shard, not the fleet;
* live **network updates** (street closures/reopenings) broadcast as
  :class:`~repro.cluster.messages.NetworkUpdateCommand`: the engine's
  recorded edge mutations are journaled on the front door, shipped to every
  worker under a barrier acknowledgement hash-checked against the
  authoritative post-mutation network content hash, and replayed to
  respawned replicas at adoption — so replicas track topology changes
  exactly and recovery stays bit-identical across update windows.

Resilience (see :mod:`repro.cluster.recovery` for the machinery):

* **backpressure** — when a shard's deferred-request queue (buffered window
  plus worker-held re-deferrals) reaches ``max_pending``, new requests for it
  are admission-rejected with the explicit ``saturated`` rejection reason
  instead of queueing unboundedly;
* **retry with backoff** — transient send/recv hiccups are retried a bounded
  number of times with exponential backoff and deterministic jitter; only a
  dead process, a broken pipe, or ``dispatch_timeout`` expiring
  ``retry_attempts`` times marks the worker down;
* **degraded-mode failover** — a down shard keeps serving: its buffered
  window and worker-held re-deferrals stay *home*, and its requests execute
  in-process at the front door against the authoritative fleet (the same
  inner-dispatcher-over-fleet-view configuration the in-process sharded
  wrapper uses), so decisions — and end-of-run metrics — stay bit-identical
  to the fault-free run;
* **supervised recovery** — a :class:`~repro.cluster.recovery.WorkerSupervisor`
  respawns the dead worker on a background thread and the front door adopts
  it at the next dispatch/flush entry past ``restart_delay_s`` (simulated
  time): the shard's sync cursor is cleared so the rebuilt replica receives a
  full plan snapshot of the current membership with its first command;
* **clean shutdown** — :meth:`close` is idempotent, always joins (or
  terminates) every worker process *including* supervisor respawns in any
  state, and is wired into the service facade's ``drain()``/context-manager
  exits, so no run leaves orphans behind.
"""

from __future__ import annotations

import multiprocessing
import time as _time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.artifacts.hashing import network_content_hash
from repro.cluster.messages import (
    AddWorkerCommand,
    CancelCommand,
    DispatchCommand,
    FlushCommand,
    NetworkUpdate,
    NetworkUpdateCommand,
    ShardInit,
    ShutdownCommand,
    StatsCommand,
    StatsReply,
    WorkerPlan,
)
from repro.cluster.recovery import (
    HEALTH_CODES,
    TRANSIENT_ERRORS,
    DegradedShard,
    FaultInjector,
    RetryPolicy,
    ShardHealth,
    WorkerSupervisor,
)
from repro.cluster.worker import plan_snapshot, shard_worker_main
from repro.core.types import Request, Stop, Worker
from repro.dispatch.base import Dispatcher, DispatcherConfig, DispatchOutcome
from repro.exceptions import (
    ConfigurationError,
    DispatchError,
    UnsupportedNetworkUpdateError,
)
from repro.network.oracle import OracleCounters
from repro.sharding.partitioner import Partition, SpatialPartitioner
from repro.utils.rng import derive_spawned_seed, make_rng

if TYPE_CHECKING:
    from repro.core.instance import URPSMInstance
    from repro.simulation.fleet import FleetState


@dataclass
class _ShardHandle:
    """Front-door bookkeeping for one shard worker process."""

    shard_id: int
    process: multiprocessing.process.BaseProcess
    connection: object  # multiprocessing.connection.Connection
    alive: bool = True
    #: sync cursor: worker id -> (plan_version, online) as last shipped.
    cursor: dict[int, tuple[int, bool]] = field(default_factory=dict)
    #: mirror of the shard's BatchDispatcher window (None = no pending flush).
    next_flush: float | None = None
    #: the shard's open batch window, buffered front-door side until flush.
    window: list[tuple[Request, float]] = field(default_factory=list)
    #: deferred request ids the *worker* still holds (re-deferrals after a
    #: flush), in defer order.
    pending_ids: list[int] = field(default_factory=list)
    #: membership (worker, shard) deltas not yet shipped to this shard.
    pending_moves: list[tuple[int, int]] = field(default_factory=list)
    #: authoritative ``advance_all`` clocks not yet shipped to this shard —
    #: the replica replays member advancement through them (anchor floats are
    #: grouping-dependent, see ``DispatchCommand.advance_clocks``).
    pending_clocks: list[float] = field(default_factory=list)
    #: fire-and-forget commands (worker additions) awaiting their ack.
    pending_acks: int = 0
    dispatch_calls: int = 0
    #: serving path: ``up`` (process-backed), ``recovering`` (respawn in
    #: flight, serving degraded), ``degraded`` (in-process forever). A shard
    #: always serves — ``alive`` tracks only whether a worker process backs it.
    health: str = ShardHealth.UP
    #: commands successfully sent to this shard (fault-injection ordinals).
    commands: int = 0
    #: defer clock of the worker-held re-deferrals (the last flush clock) —
    #: the clock they re-enter the buffered window at if the worker dies.
    pending_clock: float = 0.0
    #: in-process failover executor while the shard is down.
    degraded: DegradedShard | None = None
    #: how many times this shard's worker has been respawned.
    incarnation: int = 0
    #: traceback of the last runtime error reply (observability only).
    last_error: str | None = None
    #: acknowledged replica network rebuilds (live broadcasts + adoption
    #: replays of journaled updates).
    replica_rebuilds: int = 0


class ClusterDispatcher(Dispatcher):
    """Routes requests to shard worker *processes*, escalating on failure.

    Args:
        config: shared dispatcher knobs (``num_shards``, ``shard_strategy``,
            ``shard_escalate_k``, ``shard_oracle_backend`` parameterise the
            sharding exactly as for the in-process sharded dispatcher).
        inner: registry name of the per-shard algorithm.
        num_shards / strategy / escalate_k: overrides of the config fields.
        seed: platform seed; per-worker-process streams are derived from it
            with :func:`~repro.utils.rng.derive_spawned_seed`.
        max_pending: bounded-queue backpressure — deferred requests tolerated
            per shard (buffered window plus worker-held re-deferrals) before
            admission-rejecting.
        dispatch_timeout: hard cap in seconds on waiting for one reply; the
            wait is retried ``retry_attempts`` times before the worker is
            declared dead.
        retry_attempts: bounded retries per pipe operation — transient send
            and receive errors, and reply-timeout windows — before escalating
            to mark-down.
        retry_backoff_s: base of the exponential retry backoff (the jitter
            stream is seeded, so retry timing is reproducible).
        max_restarts: respawn budget per shard; once exhausted, the shard
            serves degraded (in-process) for the rest of the session.
        restart_delay_s: *simulated* seconds after a death before a respawned
            worker may be adopted — recovery timing is workload-deterministic.
        fault_injector: chaos-harness seam (deterministic kill/transient/delay
            faults at per-shard command ordinals); ``None`` in production.
    """

    name = "cluster"
    #: shard routing is position-dependent (which shard answers first depends
    #: on where workers currently are), and the replicas re-derive exact
    #: positions deterministically — so the authoritative fleet must always
    #: be materialised, even at K=1. Consequence: at K=1 the in-process
    #: ``sharded:<inner>`` wrapper stays bit-locked to the *lazy* unsharded
    #: dispatcher (touch-driven advancement), a different float association
    #: for partial-advance anchors — decisions still match, and metrics agree
    #: to ~1e-9 relative instead of bit-for-bit. At K>1 both regimes
    #: materialise at every arrival and flush, so replays are bit-identical.
    requires_exact_positions = True
    #: live network updates are supported via the replica-sync protocol: the
    #: engine hands the recorded mutation batch to
    #: :meth:`apply_network_update`, which journals it and broadcasts a
    #: :class:`~repro.cluster.messages.NetworkUpdateCommand` to every shard
    #: worker under a barrier acknowledgement.
    supports_network_updates = True

    def notify_network_changed(self) -> None:
        """Refuse topology-change notifications outside the command flow.

        Worker processes hold pickled network replicas: a parent-side
        mutation that reaches the front door as a bare *notification* —
        without the :class:`~repro.network.graph.EdgeMutation` records to
        broadcast — would desynchronise every replica. The engine routes
        live updates through :meth:`apply_network_update` instead; anything
        else is a programming error surfaced as a typed exception.
        """
        raise UnsupportedNetworkUpdateError(
            "cluster serving cannot absorb a bare network-change "
            "notification: shard worker processes hold replica networks, so "
            "live mutations must flow through apply_network_update (the "
            "replica-sync NetworkUpdateCommand broadcast), not "
            "notify_network_changed"
        )

    def __init__(
        self,
        config: DispatcherConfig | None = None,
        inner: str = "pruneGreedyDP",
        num_shards: int | None = None,
        strategy: str | None = None,
        escalate_k: int | None = None,
        seed: int = 0,
        max_pending: int = 1024,
        dispatch_timeout: float = 60.0,
        retry_attempts: int = 3,
        retry_backoff_s: float = 0.05,
        max_restarts: int = 2,
        restart_delay_s: float = 0.0,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        super().__init__(config)
        if not isinstance(inner, str):
            raise ConfigurationError("cluster inner dispatcher must be a registry name")
        if inner.startswith(("sharded", "cluster")):
            raise ConfigurationError(f"cannot nest {inner!r} inside a cluster")
        self.inner = inner
        self.num_shards = num_shards if num_shards is not None else self.config.num_shards
        self.strategy = strategy if strategy is not None else self.config.shard_strategy
        self.escalate_k = (
            escalate_k if escalate_k is not None else self.config.shard_escalate_k
        )
        if self.num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {self.num_shards}")
        if retry_attempts < 1:
            raise ConfigurationError(f"retry_attempts must be >= 1, got {retry_attempts}")
        if retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        if max_restarts < 0:
            raise ConfigurationError(f"max_restarts must be >= 0, got {max_restarts}")
        if restart_delay_s < 0:
            raise ConfigurationError(
                f"restart_delay_s must be >= 0, got {restart_delay_s}"
            )
        self.seed = seed
        self.max_pending = max_pending
        self.dispatch_timeout = dispatch_timeout
        self.retry_policy = RetryPolicy(attempts=retry_attempts, backoff_s=retry_backoff_s)
        self.max_restarts = max_restarts
        self.restart_delay_s = restart_delay_s
        self.fault_injector = fault_injector
        self.name = f"cluster:{inner}"
        self.partition: Partition | None = None
        self._handles: list[_ShardHandle] = []
        self._closed = False
        self._started = False
        self._supervisor: WorkerSupervisor | None = None
        self._context = None
        #: retry-jitter stream, independent of all workload randomness.
        self._retry_rng = make_rng(derive_spawned_seed(seed, "cluster-retry"))
        #: authoritative Request objects by id (replies reference ids only).
        self._requests: dict[int, Request] = {}
        #: authoritative worker -> shard bucketing (kept by _resync_membership).
        self._membership: dict[int, int] = {}
        #: workers added after setup, with their add clocks — a respawned
        #: replica replays them (ShardInit.extra_workers + adoption catch-up).
        self._added_workers: list[tuple[Worker, float]] = []
        # routing counters (mirror of the in-process sharded dispatcher)
        self.local_hits = 0
        self.escalations = 0
        self.cross_shard_assignments = 0
        self.cross_shard_moves = 0
        self.global_fallbacks = 0
        self.rejections = 0
        # cluster-specific counters
        self.admission_rejections = 0
        self.worker_failures = 0
        self.commands_sent = 0
        # recovery counters + event log (ordering is test- and user-visible)
        self.worker_restarts = 0
        self.retries = 0
        self.degraded_dispatches = 0
        self.recovery_log: list[tuple[str, int]] = []
        # live network updates: cumulative journal + telemetry
        self._applied_updates: list[NetworkUpdate] = []
        self.network_updates_applied = 0
        self.update_ack_retries = 0

    # ------------------------------------------------------------- lifecycle

    def setup(self, instance: "URPSMInstance", fleet: "FleetState") -> None:
        """Partition the city and fork one worker process per shard."""
        self.instance = instance
        self.fleet = fleet
        self.oracle = instance.oracle
        self.partition = SpatialPartitioner(self.num_shards, self.strategy).partition(
            instance.network
        )
        membership: dict[int, int] = {}
        for worker_id in fleet.states:
            membership[worker_id] = self.partition.shard_of_vertex(
                fleet.peek_state(worker_id).position
            )
        self._membership = dict(membership)
        context = (
            multiprocessing.get_context("fork")
            if "fork" in multiprocessing.get_all_start_methods()
            else multiprocessing.get_context()
        )
        self._context = context
        self._supervisor = WorkerSupervisor(
            self,
            context,
            max_restarts=self.max_restarts,
            restart_delay_s=self.restart_delay_s,
        )
        self._handles = []
        try:
            for shard_id in range(self.num_shards):
                init = ShardInit(
                    shard_id=shard_id,
                    num_shards=self.num_shards,
                    inner=self.inner,
                    config=self.config,
                    partition=self.partition,
                    instance=instance,
                    membership=membership,
                    seed=derive_spawned_seed(self.seed, "cluster-shard", shard_id),
                    delay_replies=self._delays_for(shard_id),
                )
                parent, child = context.Pipe(duplex=True)
                process = context.Process(
                    target=shard_worker_main,
                    args=(child, init),
                    name=f"repro-shard-{shard_id}",
                    daemon=True,
                )
                process.start()
                child.close()
                handle = _ShardHandle(shard_id, process, parent)
                for worker_id in fleet.states:
                    state = fleet.peek_state(worker_id)
                    handle.cursor[worker_id] = (state.plan_version, state.online)
                self._handles.append(handle)
            for handle in self._handles:
                ready = self._recv(handle)
                if ready is None:
                    detail = f":\n{handle.last_error}" if handle.last_error else ""
                    raise DispatchError(
                        f"shard worker {handle.shard_id} died during startup{detail}"
                    )
        except Exception:
            self.close()
            raise
        self._started = True

    def _delays_for(self, shard_id: int) -> tuple[tuple[int, float], ...]:
        if self.fault_injector is None:
            return ()
        return tuple(self.fault_injector.delays_for(shard_id))

    def _respawn_init(self, shard_id: int, incarnation: int) -> ShardInit:
        """The rebuild payload for a respawned worker (authoritative state)."""
        assert self.partition is not None
        return ShardInit(
            shard_id=shard_id,
            num_shards=self.num_shards,
            inner=self.inner,
            config=self.config,
            partition=self.partition,
            instance=self.instance,
            membership=dict(self._membership),
            seed=derive_spawned_seed(
                self.seed, "cluster-shard", shard_id, "incarnation", incarnation
            ),
            extra_workers=tuple(self._added_workers),
            delay_replies=self._delays_for(shard_id),
            applied_updates=tuple(self._applied_updates),
        )

    def close(self) -> None:
        """Shut every worker process down; idempotent, never leaves orphans.

        Also joins the supervisor's respawn threads and reaps any respawned
        process that was never adopted — a shutdown may land while a shard is
        mid-recovery, and must still exit hang-free and orphan-free.
        """
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.stop()  # unblock in-flight spawn threads promptly
        for handle in self._handles:
            if handle.alive:
                try:
                    handle.connection.send(ShutdownCommand())
                except (BrokenPipeError, OSError):
                    pass
            handle.process.join(1.5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(5.0)
            handle.alive = False
            try:
                handle.connection.close()
            except OSError:
                pass
        if self._supervisor is not None:
            self._supervisor.close()

    def __enter__(self) -> "ClusterDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort reaping; close() is the real path
        try:
            self.close()
        except Exception:
            pass

    # --------------------------------------------------------- communication

    def _live(self) -> list[_ShardHandle]:
        """Process-backed shards (``up``); degraded shards serve in-process."""
        return [handle for handle in self._handles if handle.alive]

    def _log(self, event: str, shard_id: int) -> None:
        self.recovery_log.append((event, shard_id))

    def _send(self, handle: _ShardHandle, command) -> bool:
        """Send with bounded transient retries; ``False`` = worker marked down."""
        policy = self.retry_policy
        injector = self.fault_injector
        ordinal = handle.commands
        for attempt in range(policy.attempts):
            try:
                if injector is not None:
                    injector.before_send(handle, command, ordinal, attempt)
                handle.connection.send(command)
            except TRANSIENT_ERRORS:
                self.retries += 1
                self._log("retry", handle.shard_id)
                _time.sleep(policy.delay(attempt, self._retry_rng))
                continue
            except (BrokenPipeError, OSError):
                self._mark_dead(handle)
                return False
            handle.commands += 1
            self.commands_sent += 1
            if injector is not None:
                injector.after_send(handle, command, ordinal)
            return True
        self._mark_dead(handle)
        return False

    def _recv(self, handle: _ShardHandle):
        """Blocking receive with liveness polling; ``None`` = worker died.

        Each expired ``dispatch_timeout`` window burns one retry attempt
        (logged ``timeout`` then ``retry``); only after ``retry_attempts``
        expiries is the worker marked down — the timeout → retry → mark-down
        ordering the recovery log records. A runtime error reply also marks
        the worker down (its traceback lands in ``handle.last_error``) and
        fails over instead of raising.
        """
        policy = self.retry_policy
        injector = self.fault_injector
        timeouts_left = policy.attempts
        transient_left = policy.attempts
        deadline = _time.monotonic() + self.dispatch_timeout
        while True:
            try:
                if injector is not None:
                    injector.before_recv(handle)
                if handle.connection.poll(0.1):
                    reply = handle.connection.recv()
                    if getattr(reply, "error", None):
                        handle.last_error = reply.error
                        self._log("worker_error", handle.shard_id)
                        self._mark_dead(handle)
                        return None
                    return reply
            except TRANSIENT_ERRORS:
                transient_left -= 1
                if transient_left <= 0:
                    self._mark_dead(handle)
                    return None
                self.retries += 1
                self._log("retry", handle.shard_id)
                _time.sleep(
                    policy.delay(policy.attempts - transient_left, self._retry_rng)
                )
                continue
            except (EOFError, OSError):
                self._mark_dead(handle)
                return None
            if not handle.process.is_alive():
                # one last poll: the worker may have replied right before exiting
                try:
                    if handle.connection.poll(0):
                        continue
                except (EOFError, OSError):
                    pass
                self._mark_dead(handle)
                return None
            if _time.monotonic() > deadline:
                timeouts_left -= 1
                self._log("timeout", handle.shard_id)
                if timeouts_left <= 0:
                    self._mark_dead(handle)
                    return None
                self.retries += 1
                self._log("retry", handle.shard_id)
                deadline = _time.monotonic() + self.dispatch_timeout

    def _drain_acks(self, handle: _ShardHandle, *, block: bool) -> None:
        """Consume outstanding fire-and-forget replies (FIFO, in order).

        Non-blocking drains run opportunistically before each send (the
        backpressure accounting); blocking drains run before any round-trip
        receive, because replies share the pipe and arrive in command order.
        """
        while handle.alive and handle.pending_acks > 0:
            if block:
                reply = self._recv(handle)
                if reply is None:
                    return
            else:
                try:
                    if not handle.connection.poll(0):
                        return
                except (EOFError, OSError):
                    self._mark_dead(handle)
                    return
                reply = self._recv(handle)
                if reply is None:
                    return
            handle.pending_acks -= 1
            handle.next_flush = reply.next_flush

    def _roundtrip(self, handle: _ShardHandle, command):
        """Drain acks, send, and receive the command's own reply."""
        self._drain_acks(handle, block=True)
        if not handle.alive or not self._send(handle, command):
            return None
        return self._recv(handle)

    def _mark_dead(self, handle: _ShardHandle) -> None:
        """Reap a dead worker and fail its shard over to in-process serving.

        The shard's deferred work stays *home*: worker-held re-deferrals
        return to the front of the buffered window at their true defer clock
        (the last flush clock), and the already-scheduled flush resolves the
        whole window through the degraded executor — nothing is dropped,
        nothing re-routed, nothing decided twice.
        """
        if not handle.alive:
            return
        handle.alive = False
        handle.pending_acks = 0
        handle.pending_moves.clear()
        handle.pending_clocks.clear()
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(5.0)
        try:
            handle.connection.close()
        except OSError:
            pass
        if not self._started or self._closed:
            # startup failure or shutdown race: no failover machinery needed
            handle.health = ShardHealth.DEGRADED
            handle.next_flush = None
            return
        self.worker_failures += 1
        self._log("worker_down", handle.shard_id)
        orphans = [
            self._requests[request_id]
            for request_id in handle.pending_ids
            if request_id in self._requests
        ]
        handle.window[:0] = [(request, handle.pending_clock) for request in orphans]
        handle.pending_ids = []
        handle.degraded = DegradedShard(self, handle.shard_id)
        if self._supervisor is not None and self._supervisor.should_restart(handle):
            handle.health = ShardHealth.RECOVERING
            self._supervisor.schedule(handle, self.fleet.clock)
            self._log("respawn_scheduled", handle.shard_id)
        else:
            handle.health = ShardHealth.DEGRADED
            self._log("degraded_permanent", handle.shard_id)

    # --------------------------------------------------------------- recovery

    def _poll_recovery(self, now: float) -> None:
        """Adopt due respawns — the deterministic recovery gate.

        Runs at the head of every ``dispatch``/``flush`` entry: a shard whose
        respawn is past ``restart_delay_s`` (simulated time) joins the spawn
        thread and switches back to process-backed serving *before* the entry
        is routed, so recovery points are a pure function of the workload.
        """
        if self._supervisor is None or self._closed:
            return
        for handle in self._handles:
            if handle.health != ShardHealth.RECOVERING:
                continue
            slot = self._supervisor.claim(handle.shard_id, now)
            if slot is None:
                continue
            if slot.process is None or slot.connection is None:
                handle.last_error = slot.error
                self._log("respawn_failed", handle.shard_id)
                if self._supervisor.should_restart(handle):
                    self._supervisor.schedule(handle, now)
                    self._log("respawn_scheduled", handle.shard_id)
                else:
                    handle.health = ShardHealth.DEGRADED
                    self._log("degraded_permanent", handle.shard_id)
                continue
            self._adopt(handle, slot)

    def _adopt(self, handle: _ShardHandle, slot) -> None:
        """Install a rebuilt worker process on its shard handle.

        Clearing the sync cursor makes the next command ship a full plan
        snapshot of every current member — snapshots are absolute and
        anchored at the command clock, so the fresh replica re-anchors
        exactly; earlier advance clocks are no-ops by protocol. Membership
        drift and workers added since the respawn snapshot are shipped as a
        move diff and catch-up AddWorker commands (FIFO: they land before the
        first plan-bearing command).
        """
        degraded = handle.degraded
        handle.process = slot.process
        handle.connection = slot.connection
        self._supervisor.mark_adopted(slot.process)
        handle.alive = True
        handle.health = ShardHealth.UP
        handle.last_error = None
        handle.cursor.clear()
        handle.pending_moves.clear()
        handle.pending_clocks.clear()
        handle.pending_acks = 0
        # the degraded executor's surviving re-deferrals return to the
        # buffered window at their defer clock; the rebuilt worker replays
        # them inside the next flush command. All state transfer happens
        # *before* any send — if the rebuilt worker dies immediately, the
        # resulting _mark_dead must see a fully-owned window.
        if degraded is not None:
            handle.window[:0] = [
                (self._requests[request_id], handle.pending_clock)
                for request_id in degraded.pending_ids()
                if request_id in self._requests
            ]
        handle.pending_ids = []
        handle.degraded = None
        handle.pending_moves.extend(
            (worker_id, shard_id)
            for worker_id, shard_id in self._membership.items()
            if slot.membership.get(worker_id) != shard_id
        )
        self.worker_restarts += 1
        self._log("respawn_adopted", handle.shard_id)
        # replay network updates journaled after the respawn snapshot was
        # pickled: the rebuilt replica's network reflects exactly
        # ``slot.updates_count`` updates, and each replay is hash-checked so
        # a diverged replica is killed, never adopted. Empty sync payload —
        # the cursor was just cleared, so full member snapshots (re-timed on
        # the replica's refreshed oracle) ship with the next regular command.
        for update in self._applied_updates[slot.updates_count :]:
            reply = self._roundtrip(
                handle, NetworkUpdateCommand(self.fleet.clock, update)
            )
            if reply is None:
                return  # died again during adoption; _mark_dead failed it over
            if reply.content_hash != update.content_hash:
                handle.last_error = (
                    f"replica content hash {reply.content_hash!r} diverged from "
                    f"authoritative {update.content_hash!r} replaying update "
                    f"#{update.ordinal}"
                )
                self._log("update_hash_mismatch", handle.shard_id)
                self._mark_dead(handle)
                return
            handle.next_flush = reply.next_flush
            handle.replica_rebuilds += 1
            self._log("update_replayed", handle.shard_id)
        for worker, _ in self._added_workers[slot.extra_count :]:
            if not self._send(handle, AddWorkerCommand(self.fleet.clock, worker)):
                return  # died again during adoption; _mark_dead failed it over
            handle.pending_acks += 1

    # ------------------------------------------------------------- plan sync

    def _resync_membership(self) -> None:
        """Re-bucket moved workers; buffer the deltas for every live shard.

        The exact mirror of ``ShardedDispatcher._resync``, computed on the
        authoritative fleet at the same decision points (dispatch and flush),
        so replica membership never depends on replica-side advancement. The
        deltas ride on each shard's next command of any kind.
        """
        fleet = self.fleet
        partition = self.partition
        assert fleet is not None and partition is not None
        for worker_id in fleet.drain_moved():
            shard_id = partition.shard_of_vertex(fleet.peek_state(worker_id).position)
            previous = self._membership[worker_id]
            if shard_id != previous:
                self._membership[worker_id] = shard_id
                self.cross_shard_moves += 1
                # the receiving shard stopped hearing about this worker's plan
                # while it belonged elsewhere; forget its cursor stamp so the
                # current snapshot ships together with the move
                self._handles[shard_id].cursor.pop(worker_id, None)
                for handle in self._handles:
                    if handle.alive:
                        handle.pending_moves.append((worker_id, shard_id))
                    elif handle.degraded is not None:
                        handle.degraded.apply_move(worker_id, previous, shard_id)

    def _take_moves(self, handle: _ShardHandle) -> tuple[tuple[int, int], ...]:
        """Membership deltas to piggyback on ``handle``'s next command."""
        if not handle.pending_moves:
            return ()
        moves = tuple(handle.pending_moves)
        handle.pending_moves.clear()
        return moves

    def _note_advance_clock(self, now: float) -> None:
        """Record one authoritative ``advance_all`` clock for every shard.

        The engine materialises the whole fleet before each ``dispatch`` and
        ``flush`` call (``requires_exact_positions``), so those entry points
        are exactly the ``advance_all`` clock sequence the replicas must
        replay. Consecutive duplicates are no-op advances — skip them.
        """
        for handle in self._handles:
            if handle.alive and (
                not handle.pending_clocks or handle.pending_clocks[-1] != now
            ):
                handle.pending_clocks.append(now)

    def _take_clocks(self, handle: _ShardHandle) -> tuple[float, ...]:
        """Advance clocks to piggyback on ``handle``'s next advancing command."""
        if not handle.pending_clocks:
            return ()
        clocks = tuple(handle.pending_clocks)
        handle.pending_clocks.clear()
        return clocks

    def _sync_payload(self, handle: _ShardHandle) -> tuple[WorkerPlan, ...]:
        """Member plans changed since ``handle`` was last commanded.

        A replica only reads the plans of its *own members* (its decisions
        never touch other shards' workers), so each plan change crosses one
        pipe, not K — a worker migrating in gets its snapshot shipped with
        the move because ``_resync_membership`` dropped its cursor stamp.
        """
        fleet = self.fleet
        assert fleet is not None
        membership = self._membership
        shard_id = handle.shard_id
        changed: list[WorkerPlan] = []
        cursor = handle.cursor
        for worker_id in fleet.states:
            if membership.get(worker_id) != shard_id:
                continue
            state = fleet.peek_state(worker_id)
            stamp = (state.plan_version, state.online)
            if cursor.get(worker_id) != stamp:
                cursor[worker_id] = stamp
                changed.append(plan_snapshot(state))
        return tuple(changed)

    def _own_request(self, shipped: Request) -> Request:
        return self._requests.get(shipped.id, shipped)

    def _apply_plan(
        self, handle: _ShardHandle, plan: WorkerPlan
    ) -> "dict[int, ServiceRecord]":
        """Install a worker's new plan (computed by a replica) authoritatively.

        The replica ran the *real* inner dispatcher on bit-identical state, so
        its resulting route — anchor, stop sequence, concrete path — IS what
        an in-process run would have produced; the plan is adopted wholesale.
        Two pieces of bookkeeping need replaying rather than adopting:

        * the worker is first materialised to the clock along its *old* route
          (``state_of``), mirroring the replica's pre-decision advancement —
          that walk charges travelled cost and buffers completions on the
          authoritative side exactly as an in-process touch would;
        * movement the replica did *during* the decision is invisible here (a
          batch insertion can anchor a route in the past, and a later
          same-command touch walks the worker forward along the new legs,
          completing past-due stops) — ``plan.walked_cost`` carries that
          travelled delta, and service-record times completed replica-side
          are adopted.

        Deliveries completed during the decision are *returned* (request id →
        record) rather than buffered: the caller pushes them into the
        engine's completion buffer following the reply's ``completed_ids``
        stamping order, because metric means sum left-to-right.

        Stops and records are re-keyed onto the front door's own
        :class:`Request` objects so the engine's completion records and
        cancellation lookups keep referencing the instances it handed out.
        """
        from repro.core.route import Route
        from repro.simulation.fleet import ServiceRecord

        fleet = self.fleet
        assert fleet is not None
        state = fleet.state_of(plan.worker_id)
        current = state.route
        stops = [
            Stop(vertex=stop.vertex, request=self._own_request(stop.request), kind=stop.kind)
            for stop in plan.stops
        ]
        if plan.walked_cost != 0.0:
            # the replica moved the worker during the decision; its anchor is
            # the only correct one (the authoritative route cannot re-derive
            # legs of a plan it never saw)
            origin, start_time = plan.origin, plan.start_time
            state.travelled_cost += plan.walked_cost
        else:
            # anchors agree up to the last ULP; prefer the authoritative bits
            # (both fleets advanced to the same clock, but through different
            # step groupings, so the replica's floats can drift)
            origin, start_time = current.origin, current.start_time
        state.replace_route(
            Route(
                worker=state.worker,
                origin=origin,
                start_time=start_time,
                stops=stops,
                concrete_path=plan.concrete_path,
            )
        )
        records: dict[int, ServiceRecord] = {}
        completed: dict[int, ServiceRecord] = {}
        for record in plan.records:
            existing = state.assigned_requests.get(record.request.id)
            if existing is not None:
                if existing.pickup_time is None and record.pickup_time is not None:
                    existing.pickup_time = record.pickup_time
                if existing.dropoff_time is None and record.dropoff_time is not None:
                    existing.dropoff_time = record.dropoff_time
                    completed[record.request.id] = existing
                records[record.request.id] = existing
            else:
                fresh = ServiceRecord(
                    request=self._own_request(record.request),
                    worker_id=plan.worker_id,
                    pickup_time=record.pickup_time,
                    dropoff_time=record.dropoff_time,
                )
                if fresh.dropoff_time is not None:
                    # assigned and delivered within one command
                    completed[record.request.id] = fresh
                records[record.request.id] = fresh
            fleet._assignment_hint[record.request.id] = plan.worker_id
        state.assigned_requests = records
        # the shard that produced this plan already holds it; record the new
        # authoritative stamp so the next sync does not echo it back
        handle.cursor[plan.worker_id] = (state.plan_version, state.online)
        return completed

    def _push_completions(
        self, records: "dict[int, ServiceRecord]", ordered_ids: tuple[int, ...]
    ) -> None:
        """Buffer decision-time deliveries in the replica's stamping order."""
        if not records:
            return
        completions = self.fleet._completions
        for request_id in ordered_ids:
            record = records.pop(request_id, None)
            if record is not None:
                completions.append(record)
        # a delivery the replica did not report in order still counts once
        completions.extend(records.values())

    # --------------------------------------------------------------- running

    def dispatch(self, request: Request, now: float) -> DispatchOutcome | None:
        assert self.partition is not None and self.fleet is not None
        self._poll_recovery(now)
        self._note_advance_clock(now)
        self._resync_membership()
        self._requests[request.id] = request
        home = self.partition.shard_of_vertex(request.origin)
        handle = self._handles[home]
        if self.is_batched:
            # a down shard still buffers its own window — the degraded
            # executor (or the rebuilt worker) resolves it at the flush
            return self._defer_to(handle, request, now)
        outcome = self._dispatch_on(handle, request, now)
        if outcome.served:
            self.local_hits += 1
            return outcome
        if self.num_shards == 1:
            self.rejections += 1
            return outcome
        return self._escalate(request, now, home, outcome)

    def _dispatch_on(
        self, handle: _ShardHandle, request: Request, now: float
    ) -> DispatchOutcome:
        """Dispatch on one shard: worker round trip, or in-process failover.

        A worker that dies mid-command never mutated authoritative state (it
        only mutates through applied replies), so re-executing the decision
        degraded at the same clock on the same state reproduces exactly what
        the replica would have answered.
        """
        handle.dispatch_calls += 1
        if handle.health == ShardHealth.UP:
            reply = self._roundtrip(
                handle,
                DispatchCommand(
                    now,
                    request,
                    self._sync_payload(handle),
                    moves=self._take_moves(handle),
                    advance_clocks=self._take_clocks(handle),
                ),
            )
            if reply is not None:
                handle.next_flush = reply.next_flush
                outcome = reply.outcome.to_outcome(request)
                if outcome.served:
                    self._push_completions(
                        self._apply_plan(handle, reply.plan), reply.completed_ids
                    )
                return outcome
        if handle.degraded is None:  # defensive; _mark_dead builds it
            handle.degraded = DegradedShard(self, handle.shard_id)
        self.degraded_dispatches += 1
        self._log("degraded_dispatch", handle.shard_id)
        outcome = handle.degraded.dispatch(request, now)
        handle.next_flush = handle.degraded.inner.next_flush_time()
        return outcome

    def _defer_to(
        self, handle: _ShardHandle, request: Request, now: float
    ) -> DispatchOutcome | None:
        """Buffer a request into a shard's batch window (no pipe traffic).

        Deferrals read no fleet state, so the window accumulates front-door
        side and ships inside the flush command; its depth is the bounded
        queue the backpressure policy enforces.
        """
        if len(handle.window) + len(handle.pending_ids) >= self.max_pending:
            self.admission_rejections += 1
            self.rejections += 1
            return replace(self._unserved(request), rejection_reason="saturated")
        handle.dispatch_calls += 1
        handle.window.append((request, now))
        # exact float mirror of BatchDispatcher.defer
        if handle.next_flush is None:
            handle.next_flush = now + self.config.batch_interval
            if self._flush_scheduler is not None:
                self._flush_scheduler(handle.next_flush)
        return None

    @staticmethod
    def _unserved(request: Request) -> DispatchOutcome:
        return DispatchOutcome(request=request, served=False)

    def _escalate(
        self, request: Request, now: float, home: int, local: DispatchOutcome
    ) -> DispatchOutcome:
        """Retry on neighbouring shards, then globally.

        Every shard always serves — process-backed or degraded — so the
        escalation ladder is identical to the in-process sharded dispatcher's
        regardless of worker health.
        """
        self.escalations += 1
        neighbours, remaining = self._escalation_targets(request, home)
        candidates = local.candidates_considered
        insertions = local.insertions_evaluated
        decision_rejected = local.decision_rejected
        last = local
        for phase, shard_ids in enumerate((neighbours, remaining)):
            if phase == 1 and shard_ids:
                self.global_fallbacks += 1
            for shard_id in shard_ids:
                handle = self._handles[shard_id]
                attempt = self._dispatch_on(handle, request, now)
                candidates += attempt.candidates_considered
                insertions += attempt.insertions_evaluated
                decision_rejected = decision_rejected and attempt.decision_rejected
                last = attempt
                if attempt.served:
                    self.cross_shard_assignments += 1
                    return replace(
                        attempt,
                        candidates_considered=candidates,
                        insertions_evaluated=insertions,
                    )
        self.rejections += 1
        return replace(
            last,
            candidates_considered=candidates,
            insertions_evaluated=insertions,
            decision_rejected=decision_rejected,
        )

    def _escalation_targets(self, request: Request, home: int) -> tuple[list[int], list[int]]:
        """Identical ordering to the in-process sharded dispatcher."""
        partition = self.partition
        assert partition is not None
        csr = partition.network.csr
        origin_position = csr.position_of(request.origin)
        ordered = [
            int(shard_id)
            for shard_id in partition.shards_by_distance(
                float(csr.xs[origin_position]), float(csr.ys[origin_position])
            )
            if int(shard_id) != home
        ]
        adjacent = partition.shard_adjacency[home]
        neighbours = [s for s in ordered if s in adjacent][: self.escalate_k]
        remaining = [s for s in ordered if s not in neighbours]
        return neighbours, remaining

    # ------------------------------------------------------- batch protocol

    @property
    def is_batched(self) -> bool:
        from repro.dispatch import ALGORITHMS, BatchDispatcher  # lazy import cycle guard

        inner_class = ALGORITHMS.get(self.inner)
        return bool(inner_class is not None and issubclass(inner_class, BatchDispatcher))

    def next_flush_time(self) -> float | None:
        # degraded shards flush too (in-process), so every handle counts
        times = [
            handle.next_flush
            for handle in self._handles
            if handle.next_flush is not None
        ]
        return min(times) if times else None

    def flush(self, now: float) -> list[DispatchOutcome]:
        """Flush every due shard: parallel fan-out, deterministic apply order.

        Sync payloads for all due shards are computed *before* any command is
        sent (due shards never observe each other's flush results — their
        member sets are disjoint, exactly as in-process), then replies are
        received and applied in shard-id order, matching the in-process
        iteration order outcome for outcome. A shard that is down — or dies
        during this very flush — resolves its entire buffered window through
        the degraded executor at the same clock, in its same shard-id slot:
        the authoritative fleet only ever mutates when a reply is applied, so
        the re-execution decides each request exactly once, bit-identically.
        """
        self._poll_recovery(now)
        self._note_advance_clock(now)
        self._resync_membership()
        due: list[tuple[_ShardHandle, int, FlushCommand | None]] = []
        for handle in self._handles:
            if handle.health == ShardHealth.UP:
                self._drain_acks(handle, block=True)
            if handle.next_flush is None or handle.next_flush > now + 1e-9:
                continue
            if handle.health == ShardHealth.UP:
                due.append(
                    (
                        handle,
                        len(handle.window),
                        FlushCommand(
                            now,
                            self._sync_payload(handle),
                            deferrals=tuple(handle.window),
                            moves=self._take_moves(handle),
                            advance_clocks=self._take_clocks(handle),
                        ),
                    )
                )
            else:
                due.append((handle, len(handle.window), None))
        for handle, _, command in due:
            if command is not None and handle.health == ShardHealth.UP:
                self._send(handle, command)
        outcomes: list[DispatchOutcome] = []
        for handle, shipped, command in due:
            reply = None
            if command is not None and handle.health == ShardHealth.UP:
                reply = self._recv(handle)
            if reply is not None:
                # only drop what this command actually shipped, never
                # deferrals appended to the buffer while the reply was in flight
                del handle.window[:shipped]
                handle.next_flush = reply.next_flush
                handle.pending_ids = [
                    request_id
                    for request_id in reply.pending_ids
                    if request_id in self._requests
                ]
                handle.pending_clock = now
                fresh: dict[int, "ServiceRecord"] = {}
                for worker_id in sorted(reply.plans):
                    fresh.update(self._apply_plan(handle, reply.plans[worker_id]))
                self._push_completions(fresh, reply.completed_ids)
                for payload in reply.outcomes:
                    outcome = payload.to_outcome(
                        self._own_request_by_id(payload.request_id)
                    )
                    if outcome.served:
                        self.local_hits += 1
                    else:
                        self.rejections += 1
                    outcomes.append(outcome)
                continue
            # down shard (or death during this flush): the whole current
            # window — including re-deferrals _mark_dead just returned home —
            # resolves in-process, exactly once
            deferrals = tuple(handle.window)
            handle.window.clear()
            for outcome in self._flush_degraded(handle, deferrals, now):
                if outcome.served:
                    self.local_hits += 1
                else:
                    self.rejections += 1
                outcomes.append(outcome)
        return outcomes

    def _flush_degraded(
        self, handle: _ShardHandle, deferrals, now: float
    ) -> list[DispatchOutcome]:
        """Run one shard's flush through the in-process failover executor."""
        degraded = handle.degraded
        if degraded is None:  # defensive; _mark_dead builds it
            handle.degraded = degraded = DegradedShard(self, handle.shard_id)
        self.degraded_dispatches += len(deferrals)
        self._log("degraded_flush", handle.shard_id)
        outcomes = degraded.flush(deferrals, now)
        # mirror exactly what a worker reply would piggyback
        handle.next_flush = degraded.inner.next_flush_time()
        handle.pending_ids = degraded.pending_ids()
        handle.pending_clock = now
        return outcomes

    def _own_request_by_id(self, request_id: int) -> Request:
        request = self._requests.get(request_id)
        if request is None:
            raise DispatchError(f"unknown request id {request_id} in flush reply")
        return request

    def cancel(self, request: Request) -> bool:
        """Drop a deferred request; buffered windows cancel without a pipe trip.

        Only requests a worker still holds (re-deferrals surviving a flush)
        need the round trip; mirroring ``BatchDispatcher.cancel``, an emptied
        window keeps its scheduled flush (which then comes up empty).
        """
        for handle in self._handles:
            for index, (pending, _) in enumerate(handle.window):
                if pending.id == request.id:
                    del handle.window[index]
                    return True
        for handle in self._handles:
            if request.id not in handle.pending_ids:
                continue
            if handle.health != ShardHealth.UP:
                # the degraded executor holds the re-deferred window in-process
                removed = False
                if handle.degraded is not None:
                    removed = handle.degraded.cancel(request)
                    handle.next_flush = handle.degraded.inner.next_flush_time()
                if request.id in handle.pending_ids:
                    handle.pending_ids.remove(request.id)
                return removed
            reply = self._roundtrip(
                handle,
                CancelCommand(
                    self.fleet.clock,
                    request,
                    self._sync_payload(handle),
                    moves=self._take_moves(handle),
                ),
            )
            if reply is None:
                # worker died mid-cancel; _mark_dead returned its held window
                # to handle.window — re-scan resolves against the buffer
                return self.cancel(request)
            handle.next_flush = reply.next_flush
            if reply.removed and request.id in handle.pending_ids:
                handle.pending_ids.remove(request.id)
            return reply.removed
        return False

    def notify_worker_added(self, worker_id: int) -> None:
        """Broadcast the new worker to every replica (fire-and-forget).

        Down shards learn about the newcomer through their degraded executor
        immediately, and a later respawn replays it from ``_added_workers``
        via :class:`~repro.cluster.messages.ShardInit` catch-up.
        """
        assert self.fleet is not None and self.partition is not None
        state = self.fleet.peek_state(worker_id)
        # record the bucketing each replica will derive for the newcomer, so
        # the next membership resync does not echo it back as a move
        home = self.partition.shard_of_vertex(state.position)
        self._membership[worker_id] = home
        self._added_workers.append((state.worker, self.fleet.clock))
        for handle in self._handles:
            if handle.health == ShardHealth.UP:
                self._drain_acks(handle, block=False)
                command = AddWorkerCommand(
                    self.fleet.clock, state.worker, moves=self._take_moves(handle)
                )
                if self._send(handle, command):
                    handle.pending_acks += 1
                    handle.cursor[worker_id] = (state.plan_version, state.online)
            elif handle.degraded is not None and handle.shard_id == home:
                handle.degraded.add_member(worker_id, state.position)

    def apply_network_update(self, mutations, now: float) -> None:
        """Broadcast a live network mutation batch to every shard replica.

        Called by the engine *after* it mutated the authoritative network,
        refreshed the instance oracle and rebuilt every route — so the
        journal entry built here captures the post-mutation content hash and
        ``_sync_payload`` ships the post-rebuild route snapshots. The
        broadcast is a **barrier**: commands fan out to every UP shard, then
        acknowledgements are collected in shard order under the usual retry
        policy — a straggler burns ``retry_attempts`` timeout windows before
        its worker is marked down, and a replica whose post-replay content
        hash diverges from the authoritative one is killed rather than left
        serving on a stale map (both fail over to the degraded in-process
        executor, which shares the already-updated authoritative state).
        """
        assert self.fleet is not None and self.instance is not None
        self._poll_recovery(now)
        self._note_advance_clock(now)
        self._resync_membership()
        update = NetworkUpdate(
            ordinal=len(self._applied_updates),
            clock=now,
            mutations=tuple(mutations),
            content_hash=network_content_hash(self.instance.network),
        )
        # journal before broadcasting: any respawn scheduled from here on
        # snapshots an instance that already reflects this update
        self._applied_updates.append(update)
        self.network_updates_applied += 1
        retries_before = self.retries
        sent: list[_ShardHandle] = []
        for handle in self._handles:
            if handle.health != ShardHealth.UP:
                continue
            self._drain_acks(handle, block=True)
            if not handle.alive:
                continue
            command = NetworkUpdateCommand(
                now,
                update,
                plans=self._sync_payload(handle),
                moves=self._take_moves(handle),
                advance_clocks=self._take_clocks(handle),
            )
            if self._send(handle, command):
                self._log("update_sent", handle.shard_id)
                sent.append(handle)
        for handle in sent:
            reply = self._recv(handle)
            if reply is None:
                continue  # marked down; degraded failover notified below
            handle.next_flush = reply.next_flush
            if reply.content_hash != update.content_hash:
                handle.last_error = (
                    f"replica content hash {reply.content_hash!r} diverged from "
                    f"authoritative {update.content_hash!r} applying update "
                    f"#{update.ordinal}"
                )
                self._log("update_hash_mismatch", handle.shard_id)
                self._mark_dead(handle)
                continue
            handle.replica_rebuilds += 1
            self._log("update_ack", handle.shard_id)
        self.update_ack_retries += self.retries - retries_before
        # shards serving in-process (recovering or permanently degraded) run
        # on the authoritative fleet and oracle — already updated — and only
        # need their inner dispatcher's grid re-derived
        for handle in self._handles:
            if handle.health != ShardHealth.UP and handle.degraded is not None:
                handle.degraded.inner.notify_network_changed()
                self._log("update_degraded", handle.shard_id)

    # --------------------------------------------------------------- metrics

    def queue_depth(self) -> int:
        """Deferred requests awaiting a decision across all shards."""
        return sum(
            len(handle.window) + len(handle.pending_ids) for handle in self._handles
        )

    def memory_estimate_bytes(self) -> int:
        return 0  # worker grids live in the shard processes

    def oracle_counter_totals(self) -> OracleCounters | None:
        """Front-door oracle work + every live replica's (gathered via RPC).

        Replicas re-derive fleet materialisation locally, so these totals
        intentionally include that duplicated work — they describe what the
        cluster actually computed, not what a single process would have.
        """
        totals = OracleCounters.merge([self.oracle.counters])
        for handle in self._live():
            reply = self._roundtrip(handle, StatsCommand())
            if not isinstance(reply, StatsReply):
                continue
            counters = reply.counters
            totals.distance_queries += int(counters.get("distance_queries", 0))
            totals.path_queries += int(counters.get("path_queries", 0))
            totals.lower_bound_queries += int(counters.get("lower_bound_queries", 0))
            totals.dijkstra_runs += int(counters.get("dijkstra_runs", 0))
            for name, value in counters.get("backend_queries", {}).items():
                totals.backend_queries[name] = totals.backend_queries.get(name, 0) + value
            for name, value in counters.get("backend_settled", {}).items():
                totals.backend_settled[name] = totals.backend_settled.get(name, 0) + value
        shared = self.oracle.counters
        totals.distance_cache = shared.distance_cache
        totals.path_cache = shared.path_cache
        totals.backend = shared.backend
        totals.cache_bypassed = shared.cache_bypassed
        return totals

    def extra_metrics(self) -> dict[str, float]:
        assert self.partition is not None
        extra = {
            "cluster_shards": float(self.num_shards),
            "cluster_live_workers": float(len(self._live())),
            "cluster_local_hits": float(self.local_hits),
            "cluster_escalations": float(self.escalations),
            "cluster_cross_shard_assignments": float(self.cross_shard_assignments),
            "cluster_cross_shard_moves": float(self.cross_shard_moves),
            "cluster_global_fallbacks": float(self.global_fallbacks),
            "cluster_rejections": float(self.rejections),
            "cluster_admission_rejections": float(self.admission_rejections),
            "cluster_worker_failures": float(self.worker_failures),
            "cluster_worker_restarts": float(self.worker_restarts),
            "cluster_retries": float(self.retries),
            "cluster_degraded_dispatches": float(self.degraded_dispatches),
            "cluster_commands_sent": float(self.commands_sent),
            "cluster_network_updates": float(self.network_updates_applied),
            "cluster_update_ack_retries": float(self.update_ack_retries),
            "cluster_boundary_vertices": float(self.partition.num_boundary_vertices()),
        }
        for handle in self._handles:
            extra[f"cluster_shard{handle.shard_id}_dispatch_calls"] = float(
                handle.dispatch_calls
            )
            extra[f"cluster_shard{handle.shard_id}_health"] = HEALTH_CODES[
                handle.health
            ]
            extra[f"cluster_shard{handle.shard_id}_replica_rebuilds"] = float(
                handle.replica_rebuilds
            )
        return extra

    def shard_health(self) -> tuple[str, ...]:
        """Per-shard health, shard-id order (``up``/``recovering``/``degraded``)."""
        return tuple(handle.health for handle in self._handles)

    def child_processes(self) -> list:
        """Every live child this dispatcher is responsible for reaping."""
        processes = [
            handle.process
            for handle in self._handles
            if handle.process is not None and handle.process.is_alive()
        ]
        if self._supervisor is not None:
            processes.extend(
                process
                for process in self._supervisor.spawned()
                if process.is_alive()
            )
        return processes
