"""Wire protocol of the shard-worker cluster.

Every value crossing a worker-process boundary is one of the picklable
dataclasses below. The protocol is deliberately small:

* the front door ships **plan snapshots** (:class:`WorkerPlan`) and
  **membership moves** (``(worker, shard)`` re-bucketing deltas computed on
  the authoritative fleet) piggybacked on every command, so each worker
  process keeps a deterministic replica without a shared-memory fleet;
* workers answer with **outcome payloads** (:class:`OutcomePayload`) plus the
  new plan of the assigned worker, and always piggyback their inner
  dispatcher's ``next_flush_time`` so the front door mirrors the batch
  windows without extra round trips;
* replies carry an optional ``error`` traceback string — an exception inside
  a worker surfaces as a :class:`~repro.exceptions.DispatchError` at the
  front door instead of a silent hang.

Plan snapshots are *absolute* state (origin, start time, stops, service
records), so applying one and advancing a member to the command clock
reproduces exactly the state the authoritative fleet materialises —
advancement along planned routes is path-independent in time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instance import URPSMInstance
from repro.core.types import Request, Stop, Worker
from repro.dispatch.base import DispatcherConfig, DispatchOutcome
from repro.network.graph import EdgeMutation
from repro.sharding.partitioner import Partition


@dataclass(frozen=True, slots=True)
class RecordSnapshot:
    """One service record of a worker's plan (request + progress times)."""

    request: Request
    pickup_time: float | None
    dropoff_time: float | None


@dataclass(frozen=True, slots=True)
class WorkerPlan:
    """Absolute snapshot of one worker's plan, shipped on plan changes."""

    worker_id: int
    origin: int
    start_time: float
    stops: tuple[Stop, ...]
    records: tuple[RecordSnapshot, ...]
    online: bool
    plan_version: int
    concrete_path: tuple[int, ...] | None = None
    #: travelled cost the replica accumulated for this worker *during the
    #: command that produced the plan* (a batch insertion can anchor a route
    #: in the past, and a later same-command touch then walks the worker
    #: forward along the new legs). The front door replays advancement up to
    #: the command clock itself, so this delta is exactly the movement it
    #: cannot re-derive locally and must credit to the authoritative state.
    walked_cost: float = 0.0


@dataclass(frozen=True, slots=True)
class OutcomePayload:
    """A :class:`DispatchOutcome` minus the request object (the receiver has it)."""

    request_id: int
    served: bool
    worker_id: int | None
    increased_cost: float
    candidates_considered: int
    insertions_evaluated: int
    decision_rejected: bool

    @classmethod
    def from_outcome(cls, outcome: DispatchOutcome) -> "OutcomePayload":
        return cls(
            request_id=outcome.request.id,
            served=outcome.served,
            worker_id=outcome.worker_id,
            increased_cost=outcome.increased_cost,
            candidates_considered=outcome.candidates_considered,
            insertions_evaluated=outcome.insertions_evaluated,
            decision_rejected=outcome.decision_rejected,
        )

    def to_outcome(self, request: Request) -> DispatchOutcome:
        return DispatchOutcome(
            request=request,
            served=self.served,
            worker_id=self.worker_id,
            increased_cost=self.increased_cost,
            candidates_considered=self.candidates_considered,
            insertions_evaluated=self.insertions_evaluated,
            decision_rejected=self.decision_rejected,
        )


@dataclass(frozen=True, slots=True)
class ShardInit:
    """Everything a worker process needs to build its shard replica.

    A *respawned* worker (see :mod:`repro.cluster.recovery`) gets the same
    payload rebuilt from the authoritative front-door state: the current
    membership, plus ``extra_workers`` — workers that joined the fleet after
    the original fork, replayed into the fresh replica before it serves. The
    replica's exact member state then arrives with the first command (the
    front door clears the shard's sync cursor at adoption, so full plan
    snapshots ship), which is why the rebuild needs no fleet dump.
    """

    shard_id: int
    num_shards: int
    inner: str
    config: DispatcherConfig
    partition: Partition
    instance: URPSMInstance
    membership: dict[int, int]
    seed: int
    #: ``(worker, add clock)`` pairs for workers added since the instance was
    #: built — replayed by a respawned replica before serving.
    extra_workers: tuple[tuple[Worker, float], ...] = ()
    #: chaos-harness fault plan: ``(command ordinal, seconds)`` reply delays,
    #: keyed on the worker-side command counter of this incarnation.
    delay_replies: tuple[tuple[int, float], ...] = ()
    #: the front door's network-update journal prefix that is *already baked
    #: into* the pickled ``instance`` (a respawn snapshots the live, mutated
    #: network). The replica records ``len(applied_updates)`` as its update
    #: cursor and must NOT re-apply these; updates applied after the snapshot
    #: are replayed by the front door at adoption via
    #: :class:`NetworkUpdateCommand`.
    applied_updates: tuple["NetworkUpdate", ...] = ()


# ------------------------------------------------------------------ commands


@dataclass(frozen=True, slots=True)
class DispatchCommand:
    """Dispatch one request on the shard's inner dispatcher."""

    clock: float
    request: Request
    plans: tuple[WorkerPlan, ...]
    #: membership re-bucketing deltas since this shard was last commanded.
    moves: tuple[tuple[int, int], ...] = ()
    #: every clock the authoritative fleet ran ``advance_all`` at since this
    #: shard was last commanded (arrivals to *other* shards, deferred
    #: arrivals). Partial advancement's anchor arithmetic is grouping-
    #: dependent — ``start_time = arr[0] + moved_cost`` associates edge costs
    #: by advancement step — so the replica must advance its members at
    #: exactly the same clock sequence to keep its floats bit-identical.
    advance_clocks: tuple[float, ...] = ()


@dataclass(frozen=True, slots=True)
class FlushCommand:
    """Flush the shard's batch window at ``clock``.

    Deferrals are buffered at the front door (they touch no fleet state) and
    shipped here as ``(request, defer clock)`` pairs; the worker replays them
    through its inner's ``defer`` in order, reproducing the exact window the
    in-process dispatcher would have accumulated — one round trip per window
    instead of one per request.
    """

    clock: float
    plans: tuple[WorkerPlan, ...]
    deferrals: tuple[tuple[Request, float], ...] = ()
    moves: tuple[tuple[int, int], ...] = ()
    #: authoritative ``advance_all`` clock sequence (see ``DispatchCommand``);
    #: for a batch shard this covers every buffered arrival's clock.
    advance_clocks: tuple[float, ...] = ()


@dataclass(frozen=True, slots=True)
class CancelCommand:
    """Drop a deferred request from the shard's batch window."""

    clock: float
    request: Request
    plans: tuple[WorkerPlan, ...]
    moves: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True, slots=True)
class AddWorkerCommand:
    """A worker joined the live fleet; every replica registers it."""

    clock: float
    worker: Worker
    moves: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True, slots=True)
class NetworkUpdate:
    """One journaled live network update (a close/reopen batch).

    ``ordinal`` is the update's position in the front door's cumulative
    journal — replicas track their own cursor and reject gaps or duplicates,
    which turns lost-update bugs into immediate worker-down events instead
    of silent divergence. ``content_hash`` is the authoritative network's
    content hash *after* the mutations were applied; every replica echoes
    the hash it computes after replay, and a mismatch marks the worker down
    rather than letting it serve on a stale map.
    """

    ordinal: int
    clock: float
    mutations: tuple[EdgeMutation, ...]
    content_hash: str


@dataclass(frozen=True, slots=True)
class NetworkUpdateCommand:
    """Broadcast a live network update to a shard replica.

    Carries the same piggybacked sync payload as dispatch/flush commands:
    the replica first applies ``moves``, replays ``advance_clocks`` and
    advances members to ``clock`` on the *old* topology (mirroring the
    engine's ``advance_all`` before the mutation), then applies the
    mutations, refreshes its oracles, and only then applies ``plans`` — the
    authoritative post-rebuild route snapshots — so re-timing happens on the
    new topology. The reply is a barrier acknowledgement."""

    clock: float
    update: NetworkUpdate
    plans: tuple[WorkerPlan, ...] = ()
    moves: tuple[tuple[int, int], ...] = ()
    advance_clocks: tuple[float, ...] = ()


@dataclass(frozen=True, slots=True)
class StatsCommand:
    """Request the replica's oracle counters (end-of-run reporting)."""


@dataclass(frozen=True, slots=True)
class ShutdownCommand:
    """Clean shutdown: the worker acknowledges and exits its loop."""


# ------------------------------------------------------------------- replies


@dataclass(frozen=True, slots=True)
class DispatchReply:
    outcome: OutcomePayload | None
    plan: WorkerPlan | None
    next_flush: float | None
    #: request ids delivered *during* the decision, in the exact order the
    #: replica stamped them — the front door pushes the matching authoritative
    #: records into the engine's completion buffer in this order (metric
    #: means sum left-to-right, so completion order is value-significant).
    completed_ids: tuple[int, ...] = ()
    error: str | None = None


@dataclass(frozen=True, slots=True)
class FlushReply:
    outcomes: tuple[OutcomePayload, ...]
    #: final plan per worker that gained assignments during the flush.
    plans: dict[int, WorkerPlan]
    #: requests still deferred after the flush (re-deferrals), in order.
    pending_ids: tuple[int, ...]
    next_flush: float | None
    #: deliveries stamped during the flush, in replica stamping order (see
    #: :class:`DispatchReply`).
    completed_ids: tuple[int, ...] = ()
    error: str | None = None


@dataclass(frozen=True, slots=True)
class CancelReply:
    removed: bool
    next_flush: float | None
    error: str | None = None


@dataclass(frozen=True, slots=True)
class AckReply:
    next_flush: float | None = None
    error: str | None = None


@dataclass(frozen=True, slots=True)
class UpdateReply:
    """Barrier acknowledgement of a :class:`NetworkUpdateCommand`.

    ``content_hash`` is the replica's post-replay network content hash; the
    front door compares it against the authoritative hash in the update."""

    content_hash: str | None = None
    next_flush: float | None = None
    error: str | None = None


@dataclass(frozen=True, slots=True)
class StatsReply:
    counters: dict[str, object] = field(default_factory=dict)
    error: str | None = None


__all__ = [
    "AckReply",
    "AddWorkerCommand",
    "CancelCommand",
    "CancelReply",
    "DispatchCommand",
    "DispatchReply",
    "FlushCommand",
    "FlushReply",
    "NetworkUpdate",
    "NetworkUpdateCommand",
    "OutcomePayload",
    "RecordSnapshot",
    "ShardInit",
    "ShutdownCommand",
    "StatsCommand",
    "StatsReply",
    "UpdateReply",
    "WorkerPlan",
]
