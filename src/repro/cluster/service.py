"""`ClusterMatchingService` — the multiprocess front door of the platform.

The cluster facade *is* a :class:`~repro.service.facade.MatchingService`: the
same submit / cancel / advance_to / drain / snapshot session API, the same
typed responses, the same event-engine backend — the only difference is the
dispatcher, a :class:`~repro.cluster.dispatcher.ClusterDispatcher` delegating
each shard's matching work to a long-lived worker process.

Because worker processes are real resources, the cluster facade adds a
lifecycle: it is a context manager, :meth:`drain` always shuts the workers
down after collecting the result, and :meth:`close` can be called at any
point (idempotently) to reap them early.
"""

from __future__ import annotations

from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.recovery import FaultInjector
from repro.core.instance import URPSMInstance
from repro.exceptions import ConfigurationError
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle
from repro.service.facade import MatchingService
from repro.service.spec import PlatformSpec
from repro.simulation.metrics import SimulationResult


class ClusterMatchingService(MatchingService):
    """An online matching session served by shard worker processes.

    Args:
        instance: the URPSM instance (network, oracle, fleet, requests).
        dispatcher: the cluster front-door dispatcher. Build it with
            :meth:`ClusterDispatcher` directly, or use
            :meth:`ClusterMatchingService.from_spec` /
            :meth:`ClusterMatchingService.build` which assemble it for you.
        collect_completions: track waits / detour ratios of completions.
    """

    def __init__(
        self,
        instance: URPSMInstance,
        dispatcher: ClusterDispatcher,
        *,
        engine: str = "event",
        collect_completions: bool = True,
    ) -> None:
        if engine != "event":
            raise ConfigurationError("cluster serving requires engine='event'")
        if not isinstance(dispatcher, ClusterDispatcher):
            raise ConfigurationError(
                "ClusterMatchingService requires a ClusterDispatcher; got "
                f"{type(dispatcher).__name__}"
            )
        super().__init__(
            instance, dispatcher, engine=engine, collect_completions=collect_completions
        )

    # ------------------------------------------------------------ construction

    @classmethod
    def build(
        cls,
        instance: URPSMInstance,
        *,
        inner: str = "pruneGreedyDP",
        num_shards: int = 1,
        config=None,
        strategy: str | None = None,
        escalate_k: int | None = None,
        seed: int = 0,
        max_pending: int = 1024,
        dispatch_timeout: float = 60.0,
        retry_attempts: int = 3,
        retry_backoff_s: float = 0.05,
        max_restarts: int = 2,
        restart_delay_s: float = 0.0,
        fault_injector: FaultInjector | None = None,
        collect_completions: bool = True,
    ) -> "ClusterMatchingService":
        """Assemble a cluster session over ``instance`` with ``num_shards`` workers."""
        dispatcher = ClusterDispatcher(
            config,
            inner=inner,
            num_shards=num_shards,
            strategy=strategy,
            escalate_k=escalate_k,
            seed=seed,
            max_pending=max_pending,
            dispatch_timeout=dispatch_timeout,
            retry_attempts=retry_attempts,
            retry_backoff_s=retry_backoff_s,
            max_restarts=max_restarts,
            restart_delay_s=restart_delay_s,
            fault_injector=fault_injector,
        )
        return cls(instance, dispatcher, collect_completions=collect_completions)

    @classmethod
    def from_spec(
        cls,
        spec: PlatformSpec,
        *,
        network: RoadNetwork | None = None,
        oracle: DistanceOracle | None = None,
    ) -> "ClusterMatchingService":
        """Build the whole cluster platform from one :class:`PlatformSpec`.

        The sharding layout of ``spec.dispatcher`` (``num_shards``,
        ``shard_strategy``, ``shard_escalate_k``, ``shard_oracle_backend``)
        doubles as the worker-process layout; ``spec.dispatcher.algorithm``
        is the per-shard inner algorithm.
        """
        if spec.engine != "event":
            raise ConfigurationError("cluster serving requires engine='event'")
        spec.validate()
        instance = spec.build_instance(network=network, oracle=oracle)
        dispatcher = ClusterDispatcher(
            spec.dispatcher_config(),
            inner=spec.dispatcher.algorithm,
            num_shards=spec.dispatcher.num_shards,
            strategy=spec.dispatcher.shard_strategy,
            escalate_k=spec.dispatcher.shard_escalate_k,
            seed=spec.scenario.seed,
            max_pending=spec.cluster_max_pending,
            dispatch_timeout=spec.cluster_dispatch_timeout,
            retry_attempts=spec.cluster_retry_attempts,
            retry_backoff_s=spec.cluster_retry_backoff_s,
            max_restarts=spec.cluster_max_restarts,
            restart_delay_s=spec.cluster_restart_delay_s,
        )
        return cls(
            instance, dispatcher, collect_completions=spec.collect_completions
        )

    # --------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Shut all shard worker processes down (idempotent)."""
        dispatcher = self.dispatcher
        if isinstance(dispatcher, ClusterDispatcher):
            dispatcher.close()

    def drain(self) -> SimulationResult:
        """Resolve pending work, collect the result, then reap the workers.

        The result gathering (oracle counters) needs live workers, so the
        shutdown happens strictly after :meth:`MatchingService.drain`.
        """
        try:
            return super().drain()
        finally:
            self.close()

    def __enter__(self) -> "ClusterMatchingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ observability

    def _queue_depth(self) -> int:
        dispatcher = self.dispatcher
        if isinstance(dispatcher, ClusterDispatcher):
            return dispatcher.queue_depth()
        return 0

    def _recovery_stats(self) -> dict:
        dispatcher = self.dispatcher
        if not isinstance(dispatcher, ClusterDispatcher):
            return {}
        return {
            "worker_failures": dispatcher.worker_failures,
            "worker_restarts": dispatcher.worker_restarts,
            "retries": dispatcher.retries,
            "degraded_dispatches": dispatcher.degraded_dispatches,
            "shard_health": dispatcher.shard_health(),
            "update_ack_retries": dispatcher.update_ack_retries,
            "shard_replica_rebuilds": tuple(
                handle.replica_rebuilds for handle in dispatcher._handles
            ),
        }


__all__ = ["ClusterMatchingService"]
