"""Fault tolerance for the shard-worker cluster: worker death is transient.

Three cooperating pieces turn the front door's crash *detection* (PR 6) into
crash *recovery*:

* **failure classification + retry** — :class:`RetryPolicy` bounds how often a
  transient RPC hiccup (:class:`TransientRPCError`, ``InterruptedError``,
  ``BlockingIOError``) is retried with exponential backoff and deterministic
  jitter before escalating; only a dead process, a broken pipe, or an expired
  ``dispatch_timeout`` marks a worker down;
* **degraded-mode failover** — :class:`DegradedShard` serves a down shard's
  requests *in process* at the front door, running the same inner dispatcher
  over a :class:`~repro.sharding.fleet_view.ShardFleetView` of the
  authoritative fleet. Because the authoritative fleet is exactly the state a
  healthy replica would have reproduced, degraded decisions are bit-identical
  to the ones the lost worker would have made — a kill between batch windows
  leaves the replay's metrics bit-identical to the fault-free run;
* **supervised respawn** — :class:`WorkerSupervisor` rebuilds the worker
  process off the hot path (fork + replica build + ready handshake on a
  daemon thread) and the dispatcher *adopts* it at the first dispatch/flush
  entry whose simulated clock passes ``restart_delay_s``. Adoption clears the
  shard's sync cursor, so the next command ships a full plan snapshot of the
  current membership and the rebuilt replica re-anchors exactly — the same
  snapshot + membership + clock-replay protocol ``messages.py`` already
  defines, applied from scratch.

Recovery timing is a deterministic function of the simulated workload: spawn
latency is wall-clock, but nothing observes the new process until the
adoption gate joins the spawn thread at a simulated-clock boundary.
"""

from __future__ import annotations

import pickle
import threading
import time as _time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.worker import shard_worker_from_payload

if TYPE_CHECKING:
    import multiprocessing

    from repro.cluster.dispatcher import ClusterDispatcher, _ShardHandle
    from repro.core.types import Request
    from repro.dispatch.base import DispatchOutcome


class TransientRPCError(Exception):
    """A send/recv hiccup worth retrying before declaring the worker dead."""


#: exception classes treated as transient (retried with backoff). The OSError
#: subclasses must be tested before the generic fatal ``OSError`` clause.
TRANSIENT_ERRORS = (TransientRPCError, InterruptedError, BlockingIOError)


class ShardHealth:
    """Health states of one shard's serving path (plain strings, picklable)."""

    UP = "up"  #: process-backed: commands round-trip to the worker replica
    RECOVERING = "recovering"  #: worker died; respawn in flight, serving degraded
    DEGRADED = "degraded"  #: restart budget exhausted; serving in-process forever


#: numeric encoding for ``extra_metrics`` (floats only): up=2, recovering=1,
#: degraded=0 — higher is healthier.
HEALTH_CODES = {ShardHealth.UP: 2.0, ShardHealth.RECOVERING: 1.0, ShardHealth.DEGRADED: 0.0}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``attempts`` caps the total tries per operation (send attempts, reply
    timeout windows, transient receive errors — each bounded independently,
    so one command waits at most ``attempts × dispatch_timeout`` before the
    worker is marked down). Jitter draws from a dedicated seeded stream, so
    retry timing never perturbs any workload randomness.
    """

    attempts: int = 3
    backoff_s: float = 0.05
    max_backoff_s: float = 0.5

    def delay(self, attempt: int, rng) -> float:
        base = min(self.max_backoff_s, self.backoff_s * (2.0**attempt))
        return base * (0.5 + 0.5 * float(rng.random()))


class FaultInjector:
    """Deterministic fault-injection seam of the front door (chaos harness).

    The production dispatcher calls these hooks around every pipe operation;
    the default implementation does nothing. ``ordinal`` is the per-shard
    command counter (how many commands were successfully sent to that shard
    before this one), so faults anchor to exact protocol points regardless of
    wall-clock timing. ``delays_for`` is threaded into each worker's
    :class:`~repro.cluster.messages.ShardInit` as reply delays keyed on the
    worker-side command ordinal (per incarnation).
    """

    def delays_for(self, shard_id: int) -> tuple[tuple[int, float], ...]:
        return ()

    def before_send(self, handle, command, ordinal: int, attempt: int) -> None:
        """Runs before each send attempt; may raise :class:`TransientRPCError`."""

    def after_send(self, handle, command, ordinal: int) -> None:
        """Runs after a successful send (mid-round-trip fault point)."""

    def before_recv(self, handle) -> None:
        """Runs on each receive poll; may raise :class:`TransientRPCError`."""


class DegradedShard:
    """In-process failover executor for one down shard.

    Runs the shard's inner dispatcher directly against the authoritative
    fleet through a :class:`ShardFleetView` — the exact configuration the
    in-process :class:`~repro.sharding.dispatcher.ShardedDispatcher` uses —
    so decisions (and therefore metrics) are bit-identical to what the lost
    worker replica would have produced on its mirrored state. Completions
    and plan changes land directly on the authoritative fleet; no plan
    re-application is needed.
    """

    def __init__(self, dispatcher: "ClusterDispatcher", shard_id: int) -> None:
        from repro.dispatch import make_dispatcher  # lazy: registry import
        from repro.sharding.fleet_view import ShardFleetView

        members = {
            worker_id
            for worker_id, shard in dispatcher._membership.items()
            if shard == shard_id
        }
        self.shard_id = shard_id
        self.view = ShardFleetView(dispatcher.fleet, shard_id, members)
        self.inner = make_dispatcher(dispatcher.inner, dispatcher.config)
        self.inner.setup(dispatcher.instance, self.view)

    def sync(self) -> None:
        """Refresh member grid cells from the (already materialised) fleet.

        Mirrors the worker replica's ``_advance_members``: the engine advanced
        the authoritative fleet to the decision clock before calling the
        dispatcher (``requires_exact_positions``), so positions are exact.
        """
        grid = self.inner.grid
        fleet = self.view.fleet
        for worker_id in sorted(self.view.members):
            grid.update(worker_id, fleet.state_of(worker_id).position)

    def dispatch(self, request: "Request", now: float) -> "DispatchOutcome":
        self.sync()
        return self.inner.dispatch(request, now)

    def flush(self, deferrals, now: float) -> "list[DispatchOutcome]":
        """Replay a buffered window and flush — the mirror of ``handle_flush``."""
        self.sync()
        for request, clock in deferrals:
            self.inner.dispatch(request, clock)
        return self.inner.flush(now)

    def cancel(self, request: "Request") -> bool:
        return self.inner.cancel(request)

    def apply_move(self, worker_id: int, previous: int, shard_id: int) -> None:
        """Install one membership delta (mirror of the replica's ``_apply_moves``)."""
        if previous == self.shard_id and shard_id != self.shard_id:
            self.view.members.discard(worker_id)
            self.inner.grid.remove(worker_id)
        elif shard_id == self.shard_id and previous != self.shard_id:
            self.view.members.add(worker_id)  # grid cell set on the next sync

    def add_member(self, worker_id: int, position: int) -> None:
        if worker_id in self.view.members:
            return
        self.view.members.add(worker_id)
        self.inner.grid.insert(worker_id, position)

    def pending_ids(self) -> list[int]:
        if not self.inner.is_batched:
            return []
        return [request.id for request in self.inner.pending_requests]


@dataclass
class RespawnSlot:
    """One in-flight respawn: the thread doing the work plus its result."""

    shard_id: int
    #: simulated clock before which the rebuilt worker must not be adopted.
    not_before: float
    #: authoritative membership at schedule time (adoption ships the diff).
    membership: dict[int, int]
    #: how many ``_added_workers`` the respawn init already carries.
    extra_count: int
    #: front-door network-update journal length at schedule time — the init
    #: snapshot reflects exactly this many updates; adoption replays the rest.
    updates_count: int = 0
    thread: threading.Thread | None = None
    process: "multiprocessing.process.BaseProcess | None" = None
    connection: object | None = None
    error: str | None = None


class WorkerSupervisor:
    """Respawns dead shard workers off the dispatch hot path.

    ``schedule`` (called by the dispatcher when it marks a worker down)
    builds and pickles the :class:`~repro.cluster.messages.ShardInit`
    snapshot synchronously — pinning the replica to the front door's
    network-update journal cursor before the live instance can mutate
    further — then forks the replacement on a daemon thread: spawn the
    process, wait for its ready ack. ``claim`` — called from the dispatcher's
    deterministic adoption gate — joins that thread (blocking if the spawn is
    still in flight, so adoption order depends only on simulated time) and
    hands the result back. Every process ever spawned is tracked until
    adopted, so :meth:`close` can reap stragglers no matter where a shutdown
    interrupts the life cycle.
    """

    def __init__(
        self,
        dispatcher: "ClusterDispatcher",
        context,
        *,
        max_restarts: int = 2,
        restart_delay_s: float = 0.0,
        spawn_timeout_s: float = 120.0,
    ) -> None:
        self.dispatcher = dispatcher
        self.context = context
        self.max_restarts = max_restarts
        self.restart_delay_s = restart_delay_s
        self.spawn_timeout_s = spawn_timeout_s
        self._slots: dict[int, RespawnSlot] = {}
        self._spawned: list = []  # processes not yet adopted (reaped at close)
        self._lock = threading.Lock()
        self._stopping = False

    # ------------------------------------------------------------- scheduling

    def should_restart(self, handle: "_ShardHandle") -> bool:
        return not self._stopping and handle.incarnation < self.max_restarts

    def schedule(self, handle: "_ShardHandle", death_clock: float) -> None:
        """Kick off an asynchronous respawn of ``handle``'s worker process."""
        dispatcher = self.dispatcher
        handle.incarnation += 1
        init = dispatcher._respawn_init(handle.shard_id, handle.incarnation)
        # Serialise the init snapshot NOW, on the scheduling thread: the live
        # instance keeps mutating (network updates, added workers) while the
        # spawn thread runs, and a torn snapshot would poison the replica.
        # The journal cursor recorded below is therefore exact: the payload
        # reflects precisely ``updates_count`` applied updates.
        payload = pickle.dumps(init, protocol=pickle.HIGHEST_PROTOCOL)
        slot = RespawnSlot(
            shard_id=handle.shard_id,
            not_before=death_clock + self.restart_delay_s,
            membership=dict(init.membership),
            extra_count=len(init.extra_workers),
            updates_count=len(init.applied_updates),
        )
        thread = threading.Thread(
            target=self._spawn,
            args=(init.shard_id, payload, slot),
            name=f"repro-respawn-{handle.shard_id}",
            daemon=True,
        )
        slot.thread = thread
        self._slots[handle.shard_id] = slot
        thread.start()

    def _spawn(self, shard_id: int, payload: bytes, slot: RespawnSlot) -> None:
        process = None
        parent = None
        try:
            parent, child = self.context.Pipe(duplex=True)
            process = self.context.Process(
                target=shard_worker_from_payload,
                args=(child, payload),
                name=f"repro-shard-{shard_id}-r{self.dispatcher._handles[shard_id].incarnation}",
                daemon=True,
            )
            process.start()
            child.close()
            with self._lock:
                self._spawned.append(process)
            ready = None
            deadline = _time.monotonic() + self.spawn_timeout_s
            while _time.monotonic() < deadline and not self._stopping:
                if parent.poll(0.1):
                    ready = parent.recv()
                    break
                if not process.is_alive():
                    break
            if ready is None:
                slot.error = "respawned shard worker never became ready"
            elif ready.error:
                slot.error = ready.error
            else:
                slot.process = process
                slot.connection = parent
                return
        except Exception:  # noqa: BLE001 - surfaced to the adoption gate
            slot.error = traceback.format_exc()
        # failed spawn: clean up whatever exists
        if parent is not None:
            try:
                parent.close()
            except OSError:
                pass
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join(5.0)

    # --------------------------------------------------------------- adoption

    def claim(self, shard_id: int, now: float) -> RespawnSlot | None:
        """Join and return the shard's respawn if it is due at ``now``.

        Blocks until the spawn thread finishes — adoption happens at a
        simulated-clock boundary, so whether the wall-clock spawn was fast or
        slow never changes *when* (in simulation time) the worker returns.
        """
        slot = self._slots.get(shard_id)
        if slot is None or now + 1e-9 < slot.not_before:
            return None
        if slot.thread is not None:
            slot.thread.join()
        del self._slots[shard_id]
        return slot

    def mark_adopted(self, process) -> None:
        with self._lock:
            if process in self._spawned:
                self._spawned.remove(process)

    # --------------------------------------------------------------- shutdown

    def stop(self) -> None:
        """Ask in-flight spawn threads to give up (they poll every 0.1 s)."""
        self._stopping = True

    def close(self) -> None:
        """Join every spawn thread and reap every unadopted child process."""
        self._stopping = True
        for slot in list(self._slots.values()):
            if slot.thread is not None:
                slot.thread.join(self.spawn_timeout_s + 5.0)
        self._slots.clear()
        with self._lock:
            spawned, self._spawned = list(self._spawned), []
        for process in spawned:
            if process.is_alive():
                process.terminate()
            process.join(5.0)

    def spawned(self) -> list:
        with self._lock:
            return list(self._spawned)

    def threads_alive(self) -> int:
        return sum(
            1
            for slot in self._slots.values()
            if slot.thread is not None and slot.thread.is_alive()
        )


__all__ = [
    "DegradedShard",
    "FaultInjector",
    "HEALTH_CODES",
    "RespawnSlot",
    "RetryPolicy",
    "ShardHealth",
    "TRANSIENT_ERRORS",
    "TransientRPCError",
    "WorkerSupervisor",
]
