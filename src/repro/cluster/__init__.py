"""Multiprocess shard-worker serving cluster.

The K spatial shards of the sharded dispatcher run as long-lived worker
processes behind a front door exposing the standard
:class:`~repro.service.facade.MatchingService` session API:

* :class:`~repro.cluster.service.ClusterMatchingService` — the facade;
* :class:`~repro.cluster.dispatcher.ClusterDispatcher` — routing, batch
  window mirroring, escalation-by-message-passing, backpressure, crash
  detection and clean shutdown;
* :mod:`repro.cluster.worker` — the per-shard worker-process runtime
  (deterministic full-fleet replica + inner dispatcher);
* :mod:`repro.cluster.messages` — the picklable wire protocol.

Cluster replays are metric-identical (served rate, unified cost, waits,
detours) to the in-process :class:`~repro.sharding.dispatcher.
ShardedDispatcher` at the same K — enforced by ``tests/cluster`` and by the
equivalence gate of ``benchmarks/bench_throughput.py``.
"""

from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.service import ClusterMatchingService

__all__ = ["ClusterDispatcher", "ClusterMatchingService"]
