"""Multiprocess shard-worker serving cluster.

The K spatial shards of the sharded dispatcher run as long-lived worker
processes behind a front door exposing the standard
:class:`~repro.service.facade.MatchingService` session API:

* :class:`~repro.cluster.service.ClusterMatchingService` — the facade;
* :class:`~repro.cluster.dispatcher.ClusterDispatcher` — routing, batch
  window mirroring, escalation-by-message-passing, backpressure, crash
  detection and clean shutdown;
* :mod:`repro.cluster.worker` — the per-shard worker-process runtime
  (deterministic full-fleet replica + inner dispatcher);
* :mod:`repro.cluster.messages` — the picklable wire protocol;
* :mod:`repro.cluster.recovery` — the self-healing layer: transient-error
  retry with backoff (:class:`~repro.cluster.recovery.RetryPolicy`),
  in-process degraded-mode failover
  (:class:`~repro.cluster.recovery.DegradedShard`), supervised respawn
  (:class:`~repro.cluster.recovery.WorkerSupervisor`), and the deterministic
  fault-injection seam (:class:`~repro.cluster.recovery.FaultInjector`) the
  chaos harness plugs into.

Cluster replays are metric-identical (served rate, unified cost, waits,
detours) to the in-process :class:`~repro.sharding.dispatcher.
ShardedDispatcher` at the same K — enforced by ``tests/cluster`` and by the
equivalence gate of ``benchmarks/bench_throughput.py``. Worker death is
*transient*: a kill between batch windows leaves the replay bit-identical to
the fault-free run (enforced by ``tests/cluster/test_recovery.py`` and
``benchmarks/bench_chaos.py``).
"""

from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.recovery import (
    DegradedShard,
    FaultInjector,
    RetryPolicy,
    ShardHealth,
    TransientRPCError,
    WorkerSupervisor,
)
from repro.cluster.service import ClusterMatchingService

__all__ = [
    "ClusterDispatcher",
    "ClusterMatchingService",
    "DegradedShard",
    "FaultInjector",
    "RetryPolicy",
    "ShardHealth",
    "TransientRPCError",
    "WorkerSupervisor",
]
