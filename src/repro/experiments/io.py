"""Persistence of experiment results: JSON, CSV and Markdown reports.

The benchmark harness prints its series to stdout; longer campaigns want the
raw numbers on disk. This module serialises
:class:`~repro.simulation.metrics.SimulationResult` objects and whole
:class:`~repro.experiments.figures.FigureResult` sweeps to JSON or CSV, and can
render the Markdown blocks used in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable

from repro.experiments.figures import FigureResult
from repro.experiments.reporting import FIGURE_METRICS, figure_summary_rows
from repro.experiments.runner import SweepPoint
from repro.simulation.metrics import SimulationResult

SCHEMA_VERSION = 1


# --------------------------------------------------------------------- results


def result_to_dict(result: SimulationResult) -> dict:
    """Serialise one simulation result (dataclass -> JSON-compatible dict)."""
    payload = asdict(result)
    payload["served_rate"] = result.served_rate
    payload["response_time_s"] = result.response_time_seconds
    return payload


def result_from_dict(payload: dict) -> SimulationResult:
    """Inverse of :func:`result_to_dict` (derived fields are recomputed)."""
    known = {field: payload[field] for field in SimulationResult.__dataclass_fields__ if field in payload}
    return SimulationResult(**known)


def save_results_json(results: Iterable[SimulationResult], path: str | Path) -> None:
    """Write a list of simulation results to a JSON file."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "results": [result_to_dict(result) for result in results],
    }
    with destination.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_results_json(path: str | Path) -> list[SimulationResult]:
    """Read simulation results previously written by :func:`save_results_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"unsupported results schema version: {payload.get('schema_version')!r}")
    return [result_from_dict(entry) for entry in payload.get("results", [])]


# --------------------------------------------------------------------- figures


def figure_to_dict(figure: FigureResult) -> dict:
    """Serialise a figure sweep (points plus per-algorithm results)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "figure": figure.figure,
        "parameter": figure.parameter,
        "points": [
            {
                "value": point.value,
                "city": point.city,
                "results": [result_to_dict(result) for result in point.results],
            }
            for point in figure.points
        ],
    }


def figure_from_dict(payload: dict) -> FigureResult:
    """Inverse of :func:`figure_to_dict`."""
    if payload.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"unsupported figure schema version: {payload.get('schema_version')!r}")
    figure = FigureResult(figure=payload["figure"], parameter=payload["parameter"])
    for entry in payload.get("points", []):
        point = SweepPoint(parameter=figure.parameter, value=entry["value"], city=entry["city"])
        point.results = [result_from_dict(item) for item in entry.get("results", [])]
        figure.points.append(point)
    return figure


def save_figure_json(figure: FigureResult, path: str | Path) -> None:
    """Write a figure sweep to JSON."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", encoding="utf-8") as handle:
        json.dump(figure_to_dict(figure), handle, indent=2, sort_keys=True)


def load_figure_json(path: str | Path) -> FigureResult:
    """Read a figure sweep previously written by :func:`save_figure_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return figure_from_dict(json.load(handle))


def save_figure_csv(figure: FigureResult, path: str | Path) -> None:
    """Write the flattened figure rows (one per city/value/algorithm) as CSV."""
    rows = figure_summary_rows(figure)
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        destination.write_text("", encoding="utf-8")
        return
    columns = list(rows[0].keys())
    with destination.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)


# ------------------------------------------------------------------- markdown


def figure_to_markdown(figure: FigureResult) -> str:
    """Render a figure sweep as the Markdown tables used in ``EXPERIMENTS.md``."""
    lines: list[str] = [f"### {figure.figure} — sweep over `{figure.parameter}`", ""]
    algorithms = figure.algorithms()
    for city in figure.cities():
        values = [point.value for point in figure.points if point.city == city]
        for metric, label in FIGURE_METRICS:
            lines.append(f"**{city} — {label}**")
            lines.append("")
            header = "| algorithm | " + " | ".join(str(value) for value in values) + " |"
            separator = "|" + "---|" * (len(values) + 1)
            lines.extend([header, separator])
            for algorithm in algorithms:
                series = dict(figure.series(city, algorithm, metric))
                cells = [_format_markdown_value(series.get(value)) for value in values]
                lines.append(f"| {algorithm} | " + " | ".join(cells) + " |")
            lines.append("")
    return "\n".join(lines)


def _format_markdown_value(value: float | None) -> str:
    if value is None:
        return "—"
    if abs(value) >= 10_000:
        return f"{value:.3e}"
    if abs(value) < 1:
        return f"{value:.3f}"
    return f"{value:.4g}"
