"""Experiment configuration: the paper's parameter grid (Table 5) and scaled presets.

The paper sweeps five parameters around a bold default (Table 5):

==============================  ===============================  =========
Parameter                       Values                           Default
==============================  ===============================  =========
Grid size ``g`` (km)            1, 2, 3, 4, 5                    2
Deadline ``e_r`` (min)          5, 10, 15, 20, 25                10
Worker capacity ``K_w``         3, 4, 6, 10, 20                  4
Weight ``alpha``                1                                1
Penalty ``p_r`` (x dis(o,d))    Chengdu: 2,5,10,20,30            10
                                NYC: 10,20,30,40,50
Fleet size ``|W|``              Chengdu: 2k,5k,10k,20k,30k       10k
                                NYC: 10k,20k,30k,40k,50k         30k
==============================  ===============================  =========

The synthetic cities are far smaller than the real datasets, so fleet sizes are
scaled down proportionally while keeping the 1:2.5 ratio between the two cities
and the relative spread of each sweep. Three scale presets are provided:
``tiny`` (unit/integration tests), ``small`` (benchmark harness) and ``medium``
(longer stand-alone runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.scenarios import ScenarioConfig

# Paper sweep values (Table 5).
PAPER_GRID_KM = [1.0, 2.0, 3.0, 4.0, 5.0]
PAPER_DEADLINE_MINUTES = [5.0, 10.0, 15.0, 20.0, 25.0]
PAPER_WORKER_CAPACITY = [3, 4, 6, 10, 20]
PAPER_PENALTY_FACTORS = {
    "chengdu-like": [2.0, 5.0, 10.0, 20.0, 30.0],
    "nyc-like": [10.0, 20.0, 30.0, 40.0, 50.0],
}
PAPER_WORKER_COUNTS = {
    "chengdu-like": [2_000, 5_000, 10_000, 20_000, 30_000],
    "nyc-like": [10_000, 20_000, 30_000, 40_000, 50_000],
}
PAPER_DEFAULTS = {
    "grid_km": 2.0,
    "deadline_minutes": 10.0,
    "worker_capacity": 4,
    "alpha": 1.0,
    "penalty_factor": 10.0,
}

#: Algorithms compared in every figure of Section 6.
PAPER_ALGORITHMS = ["tshare", "kinetic", "pruneGreedyDP", "batch", "GreedyDP"]


@dataclass(frozen=True)
class ScalePreset:
    """How much to shrink the paper's workload for a given running-time budget."""

    name: str
    requests: dict[str, int]
    workers: dict[str, list[int]]
    default_workers: dict[str, int]
    repetitions: int = 1

    def worker_sweep(self, city: str) -> list[int]:
        """Fleet-size sweep for ``city`` under this preset."""
        return self.workers[city]


SCALES: dict[str, ScalePreset] = {
    "tiny": ScalePreset(
        name="tiny",
        requests={"chengdu-like": 80, "nyc-like": 100, "small-grid": 60, "random": 60},
        workers={
            "chengdu-like": [5, 10, 15, 20, 30],
            "nyc-like": [10, 15, 20, 30, 40],
            "small-grid": [4, 8, 12, 16, 20],
            "random": [4, 8, 12, 16, 20],
        },
        default_workers={"chengdu-like": 15, "nyc-like": 20, "small-grid": 10, "random": 10},
    ),
    "small": ScalePreset(
        name="small",
        requests={"chengdu-like": 250, "nyc-like": 300, "small-grid": 150, "random": 150},
        workers={
            "chengdu-like": [10, 20, 40, 60, 80],
            "nyc-like": [20, 40, 60, 80, 100],
            "small-grid": [10, 20, 30, 40, 50],
            "random": [10, 20, 30, 40, 50],
        },
        default_workers={"chengdu-like": 40, "nyc-like": 60, "small-grid": 30, "random": 30},
    ),
    "medium": ScalePreset(
        name="medium",
        requests={"chengdu-like": 1200, "nyc-like": 2000, "small-grid": 500, "random": 500},
        workers={
            "chengdu-like": [40, 100, 200, 400, 600],
            "nyc-like": [100, 200, 300, 400, 500],
            "small-grid": [20, 40, 80, 120, 160],
            "random": [20, 40, 80, 120, 160],
        },
        default_workers={"chengdu-like": 200, "nyc-like": 300, "small-grid": 80, "random": 80},
    ),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """A complete experiment: cities, algorithms, scale and base scenario knobs."""

    cities: tuple[str, ...] = ("chengdu-like", "nyc-like")
    algorithms: tuple[str, ...] = tuple(PAPER_ALGORITHMS)
    scale: str = "small"
    seed: int = 2018
    grid_km: float = PAPER_DEFAULTS["grid_km"]
    deadline_minutes: float = PAPER_DEFAULTS["deadline_minutes"]
    worker_capacity: int = PAPER_DEFAULTS["worker_capacity"]
    penalty_factor: float = PAPER_DEFAULTS["penalty_factor"]
    alpha: float = PAPER_DEFAULTS["alpha"]
    extra_scenario_fields: dict = field(default_factory=dict)

    def preset(self) -> ScalePreset:
        """The scale preset named by :attr:`scale`."""
        return SCALES[self.scale]

    def base_scenario(self, city: str) -> ScenarioConfig:
        """Default (Table 5 bold) scenario for ``city`` at the configured scale."""
        preset = self.preset()
        return ScenarioConfig(
            city=city,
            num_workers=preset.default_workers[city],
            num_requests=preset.requests[city],
            worker_capacity=self.worker_capacity,
            deadline_minutes=self.deadline_minutes,
            penalty_factor=self.penalty_factor,
            alpha=self.alpha,
            grid_km=self.grid_km,
            seed=self.seed,
            **self.extra_scenario_fields,
        )

    # ------------------------------------------------------------- sweeps

    def worker_sweep(self, city: str) -> list[int]:
        """Fleet sizes swept in Figure 3 for ``city``."""
        return self.preset().worker_sweep(city)

    def capacity_sweep(self) -> list[int]:
        """Worker capacities swept in Figure 4."""
        return list(PAPER_WORKER_CAPACITY)

    def grid_sweep(self) -> list[float]:
        """Grid sizes (km) swept in Figure 5."""
        return list(PAPER_GRID_KM)

    def deadline_sweep(self) -> list[float]:
        """Deadlines (minutes) swept in Figure 6."""
        return list(PAPER_DEADLINE_MINUTES)

    def penalty_sweep(self, city: str) -> list[float]:
        """Penalty factors swept in Figure 7 for ``city``."""
        return list(PAPER_PENALTY_FACTORS.get(city, PAPER_PENALTY_FACTORS["chengdu-like"]))
