"""Plain-text reporting of experiment results.

The paper presents its evaluation as line plots (Figures 3-7); the benchmark
harness prints the same series as aligned text tables so they can be eyeballed
in a terminal or diffed between runs, and recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence  # noqa: F401 - Sequence used in signatures

from repro.experiments.figures import FigureResult
from repro.simulation.metrics import SimulationResult

#: metrics plotted in every figure of the paper, in presentation order.
FIGURE_METRICS = [
    ("unified_cost", "Unified cost"),
    ("served_rate", "Served rate"),
    ("response_time_s", "Response time (s)"),
]


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(rendered[index]) for rendered in rendered_rows))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(value.ljust(width) for value, width in zip(rendered, widths))
        for rendered in rendered_rows
    ]
    return "\n".join([header, separator, *body])


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_results(results: Iterable[SimulationResult]) -> str:
    """Render a flat comparison table of simulation results.

    The oracle cache statistics (surfaced into ``extra`` by the metrics
    collector) are appended when present so the LRU effectiveness — doubled
    by the symmetric ``(min, max)`` keys — is visible next to the query
    counts.
    """
    rows = [result.as_row() for result in results]
    columns = [
        "algorithm",
        "instance",
        "unified_cost",
        "served_rate",
        "response_time_s",
        "distance_queries",
        "index_memory_bytes",
    ]
    for cache_column in ("distance_cache_hit_rate", "path_cache_hit_rate"):
        if any(cache_column in row for row in rows):
            columns.append(cache_column)
    # sharded runs: routing counters next to the shared metrics
    for sharding_column in (
        "sharding_shards",
        "sharding_local_hits",
        "sharding_escalations",
        "sharding_cross_shard_assignments",
    ):
        if any(sharding_column in row for row in rows):
            columns.append(sharding_column)
    # cluster runs: self-healing telemetry (failures, restarts, retries,
    # requests served in-process while a shard was down, live network
    # updates broadcast to replicas and the retries their acks burned)
    for recovery_column in (
        "cluster_worker_failures",
        "cluster_worker_restarts",
        "cluster_retries",
        "cluster_degraded_dispatches",
        "cluster_network_updates",
        "cluster_update_ack_retries",
    ):
        if any(recovery_column in row for row in rows):
            columns.append(recovery_column)
    return format_table(rows, columns)


def format_figure(figure: FigureResult) -> str:
    """Render one figure as per-city, per-metric series tables (paper layout)."""
    blocks: list[str] = [f"== {figure.figure}: sweep over {figure.parameter} =="]
    algorithms = figure.algorithms()
    for city in figure.cities():
        for metric, label in FIGURE_METRICS:
            rows = []
            values = [point.value for point in figure.points if point.city == city]
            for algorithm in algorithms:
                series = dict(figure.series(city, algorithm, metric))
                row: dict[str, object] = {"algorithm": algorithm}
                for value in values:
                    row[str(value)] = series.get(value, float("nan"))
                rows.append(row)
            blocks.append(f"-- {city} / {label} --")
            blocks.append(format_table(rows))
    return "\n".join(blocks)


def render_series_chart(
    series: Mapping[str, Sequence[tuple[float | int | str, float]]],
    width: int = 40,
    title: str = "",
) -> str:
    """Render one metric of several algorithms as horizontal ASCII bars.

    Args:
        series: mapping ``algorithm -> [(parameter value, metric value), ...]``
            as produced by :meth:`FigureResult.series`.
        width: width of the longest bar in characters.
        title: optional heading line.

    The chart uses one row per (algorithm, parameter value) pair and scales all
    bars to the global maximum, which makes relative comparisons (the thing the
    paper's figures convey) readable directly in a terminal or log file.
    """
    rows: list[tuple[str, float]] = []
    for algorithm, points in series.items():
        for value, metric in points:
            rows.append((f"{algorithm} @ {value}", float(metric)))
    if not rows:
        return "(no data)"
    maximum = max(metric for _, metric in rows)
    scale = (width / maximum) if maximum > 0 else 0.0
    label_width = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    for label, metric in rows:
        bar = "#" * max(int(round(metric * scale)), 0)
        lines.append(f"{label.ljust(label_width)} | {bar} {_format_value(metric)}")
    return "\n".join(lines)


def figure_summary_rows(figure: FigureResult) -> list[dict[str, object]]:
    """Flatten a figure into one row per (city, value, algorithm) for EXPERIMENTS.md."""
    rows: list[dict[str, object]] = []
    for point in figure.points:
        for result in point.results:
            row = result.as_row()
            row.update({"figure": figure.figure, "parameter": figure.parameter, "value": point.value,
                        "city": point.city})
            rows.append(row)
    return rows
