"""Experiment runner: evaluate several dispatchers on shared scenarios.

The runner keeps the expensive artefacts (road network, distance oracle) shared
across the algorithms being compared — the paper does the same by letting every
algorithm use the same graph, shortest-path labels and LRU cache — and returns
one :class:`~repro.simulation.metrics.SimulationResult` per (scenario,
algorithm) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.core.instance import URPSMInstance
from repro.dispatch import make_dispatcher
from repro.dispatch.base import DispatcherConfig
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle
from repro.simulation.metrics import SimulationResult
from repro.simulation.simulator import run_simulation
from repro.workloads.scenarios import ScenarioConfig, build_instance, build_network, make_oracle


@dataclass
class SweepPoint:
    """One point of a parameter sweep: a label, a scenario, and its results."""

    parameter: str
    value: float | int | str
    city: str
    results: list[SimulationResult] = field(default_factory=list)
    #: replicate index when the sweep runs each value under several workload
    #: seeds (the parallel runner); single-seed sweeps leave it at 0.
    replicate: int = 0

    def result_for(self, algorithm: str) -> SimulationResult | None:
        """Result of ``algorithm`` at this point, if present."""
        for result in self.results:
            if result.algorithm == algorithm:
                return result
        return None


class ScenarioRunner:
    """Builds instances (caching the city) and runs algorithm comparisons.

    Args:
        dispatcher_config: knobs shared by every dispatcher.
        engine: simulation engine to drive (``"event"`` by default; scenarios
            with cancellation or shift dynamics require it).
    """

    def __init__(
        self, dispatcher_config: DispatcherConfig | None = None, engine: str = "event"
    ) -> None:
        self.dispatcher_config = dispatcher_config or DispatcherConfig()
        self.engine = engine
        self._network_cache: dict[tuple[str, int], RoadNetwork] = {}
        self._oracle_cache: dict[tuple, DistanceOracle] = {}
        #: how many times each (city, city seed) was actually *built* — sweeps
        #: assert this stays at one build per distinct city.
        self.network_builds: dict[tuple[str, int], int] = {}
        self.oracle_builds: dict[tuple, int] = {}

    # --------------------------------------------------------------- caches

    def network_for(self, config: ScenarioConfig) -> RoadNetwork:
        """Road network of the scenario's city, cached per (city, city seed).

        The key uses :attr:`ScenarioConfig.effective_city_seed`, so sweep
        points that vary the workload seed while pinning ``city_seed`` (as
        the parallel sweep planner does) share one network build.
        """
        key = (config.city, config.effective_city_seed)
        if key not in self._network_cache:
            self._network_cache[key] = build_network(config)
            self.network_builds[key] = self.network_builds.get(key, 0) + 1
        return self._network_cache[key]

    def oracle_for(self, config: ScenarioConfig) -> DistanceOracle:
        """Distance oracle over the scenario's network, cached per city + mode."""
        key = (
            config.city,
            config.effective_city_seed,
            config.use_hub_labels,
            config.oracle_precompute,
        )
        if key not in self._oracle_cache:
            self._oracle_cache[key] = make_oracle(self.network_for(config), config)
            self.oracle_builds[key] = self.oracle_builds.get(key, 0) + 1
        return self._oracle_cache[key]

    def instance_for(self, config: ScenarioConfig) -> URPSMInstance:
        """Build the URPSM instance of ``config`` reusing cached network/oracle."""
        return build_instance(config, network=self.network_for(config), oracle=self.oracle_for(config))

    # ---------------------------------------------------------------- running

    def compare(
        self,
        config: ScenarioConfig,
        algorithms: Sequence[str],
        grid_cell_metres: float | None = None,
    ) -> list[SimulationResult]:
        """Run every algorithm on a freshly built instance of ``config``."""
        results: list[SimulationResult] = []
        cell_metres = grid_cell_metres if grid_cell_metres is not None else config.grid_km * 1000.0
        for algorithm in algorithms:
            instance = self.instance_for(config)
            dispatcher_config = replace(self.dispatcher_config, grid_cell_metres=cell_metres)
            dispatcher = make_dispatcher(algorithm, dispatcher_config)
            results.append(run_simulation(instance, dispatcher, engine=self.engine))
        return results

    def sweep(
        self,
        parameter: str,
        values: Iterable[float | int | str],
        base_config: ScenarioConfig,
        algorithms: Sequence[str],
    ) -> list[SweepPoint]:
        """Sweep ``parameter`` over ``values`` and compare ``algorithms`` at each point.

        ``parameter`` must be a field of :class:`ScenarioConfig` (e.g.
        ``num_workers``, ``worker_capacity``, ``deadline_minutes``,
        ``penalty_factor``, ``grid_km``).
        """
        points: list[SweepPoint] = []
        for value in values:
            config = base_config.with_overrides(**{parameter: value})
            point = SweepPoint(parameter=parameter, value=value, city=config.city)
            point.results = self.compare(config, algorithms)
            points.append(point)
        return points
