"""Experiment runner: evaluate several dispatchers on shared scenarios.

The runner keeps the expensive artefacts (road network, distance oracle) shared
across the algorithms being compared — the paper does the same by letting every
algorithm use the same graph, shortest-path labels and LRU cache — and returns
one :class:`~repro.simulation.metrics.SimulationResult` per (scenario,
algorithm) pair.

Every run is executed by replaying the workload through a
:class:`~repro.service.facade.MatchingService` built from the runner's
:class:`~repro.service.spec.PlatformSpec` — batch experiments exercise exactly
the online-serving code path. The pre-service constructor signature
(``ScenarioRunner(dispatcher_config, engine=...)``) still works but is
deprecated in favour of ``ScenarioRunner(platform=PlatformSpec(...))``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.instance import URPSMInstance
from repro.dispatch.base import DispatcherConfig
from repro.dispatch.registry import DispatcherSpec
from repro.exceptions import ConfigurationError
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle
from repro.service.facade import MatchingService
from repro.service.spec import PlatformSpec
from repro.simulation.metrics import SimulationResult
from repro.workloads.scenarios import ScenarioConfig, build_instance, build_network, make_oracle


@dataclass
class SweepPoint:
    """One point of a parameter sweep: a label, a scenario, and its results."""

    parameter: str
    value: float | int | str
    city: str
    results: list[SimulationResult] = field(default_factory=list)
    #: replicate index when the sweep runs each value under several workload
    #: seeds (the parallel runner); single-seed sweeps leave it at 0.
    replicate: int = 0

    def result_for(self, algorithm: str) -> SimulationResult | None:
        """Result of ``algorithm`` at this point, if present."""
        for result in self.results:
            if result.algorithm == algorithm:
                return result
        return None


class ScenarioRunner:
    """Builds instances (caching the city) and runs algorithm comparisons.

    Preferred construction::

        ScenarioRunner(platform=PlatformSpec(dispatcher=..., engine=...))

    The platform spec supplies the dispatcher knobs (sharding layout, batch
    window, ...) and the engine; each :meth:`compare` call supplies the
    scenario and the algorithm names.

    Args:
        dispatcher_config: *(deprecated)* knobs shared by every dispatcher.
        engine: *(deprecated)* simulation engine to drive.
        platform: the platform spec; scenario fields of the spec are ignored
            (scenarios are per-call), dispatcher + engine fields apply.
    """

    def __init__(
        self,
        dispatcher_config: DispatcherConfig | None = None,
        engine: str | None = None,
        *,
        platform: PlatformSpec | None = None,
    ) -> None:
        if platform is not None and (dispatcher_config is not None or engine is not None):
            raise ConfigurationError(
                "pass either platform= or the deprecated (dispatcher_config, engine) "
                "pair, not both"
            )
        if platform is None:
            if dispatcher_config is not None or engine is not None:
                warnings.warn(
                    "ScenarioRunner(dispatcher_config=..., engine=...) is deprecated; "
                    "construct with ScenarioRunner(platform=PlatformSpec(dispatcher="
                    "DispatcherSpec(...), engine=...))",
                    DeprecationWarning,
                    stacklevel=2,
                )
            dispatcher = (
                DispatcherSpec.from_config(dispatcher_config)
                if dispatcher_config is not None
                else DispatcherSpec()
            )
            platform = PlatformSpec(dispatcher=dispatcher, engine=engine or "event")
        self.platform = platform.validate()
        self._network_cache: dict[tuple[str, int], RoadNetwork] = {}
        self._oracle_cache: dict[tuple, DistanceOracle] = {}
        #: how many times each (city, city seed) was actually *built* — sweeps
        #: assert this stays at one build per distinct city.
        self.network_builds: dict[tuple[str, int], int] = {}
        self.oracle_builds: dict[tuple, int] = {}

    # ------------------------------------------------------------ back-compat

    @property
    def engine(self) -> str:
        """Simulation engine driven by every run (from the platform spec)."""
        return self.platform.engine

    @property
    def dispatcher_config(self) -> DispatcherConfig:
        """Materialised dispatcher knobs (from the platform spec)."""
        return self.platform.dispatcher_config()

    # --------------------------------------------------------------- caches

    def network_for(self, config: ScenarioConfig) -> RoadNetwork:
        """Road network of the scenario's city, cached per (city, city seed).

        The key uses :attr:`ScenarioConfig.effective_city_seed`, so sweep
        points that vary the workload seed while pinning ``city_seed`` (as
        the parallel sweep planner does) share one network build.
        """
        key = (config.city, config.effective_city_seed)
        if key not in self._network_cache:
            self._network_cache[key] = build_network(config)
            self.network_builds[key] = self.network_builds.get(key, 0) + 1
        return self._network_cache[key]

    def oracle_for(self, config: ScenarioConfig) -> DistanceOracle:
        """Distance oracle over the scenario's network, cached per city + mode.

        When the scenario attaches a preprocessing store, the memo key also
        carries the *resolved* store path and the network's content hash:
        two spellings of one directory share an oracle, while distinct
        stores — or a ``file:`` city whose extract changed between runs —
        never serve each other's cached entry.
        """
        artifact_key: tuple[str, str] | None = None
        if config.oracle_artifact_dir is not None:
            from pathlib import Path

            from repro.artifacts import network_content_hash

            artifact_key = (
                str(Path(config.oracle_artifact_dir).resolve()),
                network_content_hash(self.network_for(config)),
            )
        key = (
            config.city,
            config.effective_city_seed,
            config.use_hub_labels,
            config.oracle_precompute,
            config.oracle_backend,
            artifact_key,
        )
        if key not in self._oracle_cache:
            self._oracle_cache[key] = make_oracle(self.network_for(config), config)
            self.oracle_builds[key] = self.oracle_builds.get(key, 0) + 1
        return self._oracle_cache[key]

    def instance_for(self, config: ScenarioConfig) -> URPSMInstance:
        """Build the URPSM instance of ``config`` reusing cached network/oracle."""
        return build_instance(config, network=self.network_for(config), oracle=self.oracle_for(config))

    # ---------------------------------------------------------------- running

    def compare(
        self,
        config: ScenarioConfig,
        algorithms: Sequence[str | DispatcherSpec],
        grid_cell_metres: float | None = None,
    ) -> list[SimulationResult]:
        """Run every algorithm on a freshly built instance of ``config``.

        Each run constructs a :class:`MatchingService` and replays the
        workload through it. ``algorithms`` entries may be registry names
        (``"sharded:<inner>"`` included) or full :class:`DispatcherSpec`
        values. Names inherit the runner's dispatcher knobs with the
        scenario-derived grid cell (the historical semantics); a full spec is
        taken as-is — its pinned ``grid_cell_metres`` wins, and only an
        unpinned (``None``) cell is filled from the scenario.
        """
        results: list[SimulationResult] = []
        cell_metres = grid_cell_metres if grid_cell_metres is not None else config.grid_km * 1000.0
        for algorithm in algorithms:
            instance = self.instance_for(config)
            if isinstance(algorithm, DispatcherSpec):
                spec = algorithm
                dispatcher_config = spec.to_config(default_grid_cell_metres=cell_metres)
            else:
                spec = self.platform.dispatcher.with_algorithm(algorithm)
                dispatcher_config = spec.to_config()
                dispatcher_config.grid_cell_metres = cell_metres
            service = MatchingService(
                instance,
                spec.build(config=dispatcher_config),
                engine=self.platform.engine,
                collect_completions=self.platform.collect_completions,
            )
            results.append(service.replay())
        return results

    def sweep(
        self,
        parameter: str,
        values: Iterable[float | int | str],
        base_config: ScenarioConfig,
        algorithms: Sequence[str],
    ) -> list[SweepPoint]:
        """Sweep ``parameter`` over ``values`` and compare ``algorithms`` at each point.

        ``parameter`` must be a field of :class:`ScenarioConfig` (e.g.
        ``num_workers``, ``worker_capacity``, ``deadline_minutes``,
        ``penalty_factor``, ``grid_km``).
        """
        points: list[SweepPoint] = []
        for value in values:
            config = base_config.with_overrides(**{parameter: value})
            point = SweepPoint(parameter=parameter, value=value, city=config.city)
            point.results = self.compare(config, algorithms)
            points.append(point)
        return points
