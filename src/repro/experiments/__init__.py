"""Experiment harness reproducing every table and figure of the paper's evaluation."""

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_ALGORITHMS,
    PAPER_DEADLINE_MINUTES,
    PAPER_GRID_KM,
    PAPER_PENALTY_FACTORS,
    PAPER_WORKER_CAPACITY,
    PAPER_WORKER_COUNTS,
    SCALES,
    ScalePreset,
)
from repro.experiments.figures import (
    FIGURES,
    FigureResult,
    figure3_workers,
    figure4_capacity,
    figure5_grid_size,
    figure6_deadline,
    figure7_penalty,
)
from repro.experiments.io import (
    load_figure_json,
    load_results_json,
    save_figure_csv,
    save_figure_json,
    save_results_json,
)
from repro.experiments.reporting import (
    figure_summary_rows,
    format_figure,
    format_results,
    format_table,
    render_series_chart,
)
from repro.experiments.runner import ScenarioRunner, SweepPoint
from repro.experiments.tables import table4_datasets, table5_parameters

__all__ = [
    "ExperimentConfig",
    "PAPER_ALGORITHMS",
    "PAPER_DEADLINE_MINUTES",
    "PAPER_GRID_KM",
    "PAPER_PENALTY_FACTORS",
    "PAPER_WORKER_CAPACITY",
    "PAPER_WORKER_COUNTS",
    "SCALES",
    "ScalePreset",
    "FIGURES",
    "FigureResult",
    "figure3_workers",
    "figure4_capacity",
    "figure5_grid_size",
    "figure6_deadline",
    "figure7_penalty",
    "figure_summary_rows",
    "format_figure",
    "format_results",
    "format_table",
    "render_series_chart",
    "load_figure_json",
    "load_results_json",
    "save_figure_csv",
    "save_figure_json",
    "save_results_json",
    "ScenarioRunner",
    "SweepPoint",
    "table4_datasets",
    "table5_parameters",
]
