"""Per-figure reproduction harness (Figures 3-7 of the paper).

Each ``figure*`` function runs the corresponding parameter sweep for the
requested cities and algorithms and returns a :class:`FigureResult` holding,
for every (city, parameter value, algorithm), the three metrics plotted in the
paper: unified cost, served rate and response time (plus the auxiliary counters
discussed in the text: saved shortest-distance queries and grid-index memory).

The functions are shared by the benchmark harness in ``benchmarks/`` and by
stand-alone scripts in ``examples/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ScenarioRunner, SweepPoint


@dataclass
class FigureResult:
    """All series of one figure."""

    figure: str
    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, city: str, algorithm: str, metric: str) -> list[tuple[float | int | str, float]]:
        """The (parameter value, metric) series of one algorithm in one city.

        ``metric`` is any key of
        :meth:`repro.simulation.metrics.SimulationResult.as_row`.
        """
        series: list[tuple[float | int | str, float]] = []
        for point in self.points:
            if point.city != city:
                continue
            result = point.result_for(algorithm)
            if result is None:
                continue
            series.append((point.value, float(result.as_row()[metric])))
        return series

    def cities(self) -> list[str]:
        """Cities present in the figure."""
        seen: list[str] = []
        for point in self.points:
            if point.city not in seen:
                seen.append(point.city)
        return seen

    def algorithms(self) -> list[str]:
        """Algorithms present in the figure."""
        seen: list[str] = []
        for point in self.points:
            for result in point.results:
                if result.algorithm not in seen:
                    seen.append(result.algorithm)
        return seen


def _run_sweep(
    figure: str,
    parameter: str,
    values_per_city: dict[str, Sequence[float | int]],
    experiment: ExperimentConfig,
    runner: ScenarioRunner | None = None,
) -> FigureResult:
    runner = runner or ScenarioRunner()
    result = FigureResult(figure=figure, parameter=parameter)
    for city in experiment.cities:
        base = experiment.base_scenario(city)
        values = values_per_city[city]
        result.points.extend(
            runner.sweep(parameter, values, base, list(experiment.algorithms))
        )
    return result


def figure3_workers(
    experiment: ExperimentConfig, runner: ScenarioRunner | None = None
) -> FigureResult:
    """Figure 3: vary the number of workers ``|W|``."""
    values = {city: experiment.worker_sweep(city) for city in experiment.cities}
    return _run_sweep("figure3", "num_workers", values, experiment, runner)


def figure4_capacity(
    experiment: ExperimentConfig, runner: ScenarioRunner | None = None
) -> FigureResult:
    """Figure 4: vary the worker capacity ``K_w``."""
    values = {city: experiment.capacity_sweep() for city in experiment.cities}
    return _run_sweep("figure4", "worker_capacity", values, experiment, runner)


def figure5_grid_size(
    experiment: ExperimentConfig, runner: ScenarioRunner | None = None
) -> FigureResult:
    """Figure 5: vary the grid-index cell size ``g`` (km)."""
    values = {city: experiment.grid_sweep() for city in experiment.cities}
    return _run_sweep("figure5", "grid_km", values, experiment, runner)


def figure6_deadline(
    experiment: ExperimentConfig, runner: ScenarioRunner | None = None
) -> FigureResult:
    """Figure 6: vary the delivery deadline ``e_r`` (minutes after release)."""
    values = {city: experiment.deadline_sweep() for city in experiment.cities}
    return _run_sweep("figure6", "deadline_minutes", values, experiment, runner)


def figure7_penalty(
    experiment: ExperimentConfig, runner: ScenarioRunner | None = None
) -> FigureResult:
    """Figure 7: vary the penalty factor ``p_r / dis(o_r, d_r)``."""
    values = {city: experiment.penalty_sweep(city) for city in experiment.cities}
    return _run_sweep("figure7", "penalty_factor", values, experiment, runner)


FIGURES = {
    "figure3": figure3_workers,
    "figure4": figure4_capacity,
    "figure5": figure5_grid_size,
    "figure6": figure6_deadline,
    "figure7": figure7_penalty,
}
"""Registry of figure-reproduction functions keyed by figure name."""
