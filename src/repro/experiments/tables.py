"""Table reproductions: dataset statistics (Table 4) and parameter grid (Table 5)."""

from __future__ import annotations

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_DEADLINE_MINUTES,
    PAPER_DEFAULTS,
    PAPER_GRID_KM,
    PAPER_PENALTY_FACTORS,
    PAPER_WORKER_CAPACITY,
    PAPER_WORKER_COUNTS,
)
from repro.workloads.scenarios import dataset_statistics


def table4_datasets(experiment: ExperimentConfig) -> list[dict[str, float]]:
    """Table 4: #requests, #vertices, #edges of every dataset (synthetic stand-ins)."""
    rows: list[dict[str, float]] = []
    for city in experiment.cities:
        config = experiment.base_scenario(city)
        rows.append(dataset_statistics(config))
    return rows


def table5_parameters(experiment: ExperimentConfig) -> list[dict[str, object]]:
    """Table 5: the swept parameter values with defaults (paper values + our scale)."""
    preset = experiment.preset()
    rows: list[dict[str, object]] = [
        {
            "parameter": "grid size g (km)",
            "paper_values": PAPER_GRID_KM,
            "paper_default": PAPER_DEFAULTS["grid_km"],
            "our_values": experiment.grid_sweep(),
        },
        {
            "parameter": "deadline e_r (min)",
            "paper_values": PAPER_DEADLINE_MINUTES,
            "paper_default": PAPER_DEFAULTS["deadline_minutes"],
            "our_values": experiment.deadline_sweep(),
        },
        {
            "parameter": "capacity K_w",
            "paper_values": PAPER_WORKER_CAPACITY,
            "paper_default": PAPER_DEFAULTS["worker_capacity"],
            "our_values": experiment.capacity_sweep(),
        },
        {
            "parameter": "weight alpha",
            "paper_values": [1],
            "paper_default": 1,
            "our_values": [experiment.alpha],
        },
    ]
    for city in experiment.cities:
        rows.append(
            {
                "parameter": f"penalty p_r (x dis) [{city}]",
                "paper_values": PAPER_PENALTY_FACTORS.get(city, []),
                "paper_default": PAPER_DEFAULTS["penalty_factor"],
                "our_values": experiment.penalty_sweep(city),
            }
        )
        rows.append(
            {
                "parameter": f"number of workers |W| [{city}]",
                "paper_values": PAPER_WORKER_COUNTS.get(city, []),
                "paper_default": PAPER_WORKER_COUNTS.get(city, [0, 0, 0])[2],
                "our_values": preset.worker_sweep(city),
            }
        )
    return rows
