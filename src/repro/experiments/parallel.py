"""Parallel execution of experiment sweeps over a process pool.

A parameter sweep is a grid of independent simulation runs — (parameter
value × algorithm × replicate seed) — and nothing about a run depends on any
other, so large sweeps should use every core. :class:`ParallelSweepRunner`

* expands the grid into :class:`SweepTask` values with **deterministic
  per-point seeds** derived through :func:`repro.utils.rng.derive_spawned_seed`
  (SeedSequence spawn keys addressed by ``(parameter, value, replicate)``),
  so a task's outcome is a pure function of the task — identical whether it
  runs serially, in any process, or in any order;
* pins every task's ``city_seed`` to the base scenario's seed so all
  replicates of a city share one road-network/oracle build (the per-process
  :class:`~repro.experiments.runner.ScenarioRunner` memoizes them);
* runs the tasks either inline (``jobs=1`` — also the reference for the
  serial/parallel equivalence tests) or over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

Wall-clock fields of a :class:`~repro.simulation.metrics.SimulationResult`
(response time, dispatch seconds) legitimately differ between processes;
:func:`metric_fingerprint` extracts the deterministic subset that serial and
parallel execution must agree on exactly.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import astuple, dataclass, field
from typing import Iterable, Sequence

from repro.dispatch.base import DispatcherConfig
from repro.dispatch.registry import DispatcherSpec
from repro.experiments.runner import ScenarioRunner, SweepPoint
from repro.service.spec import PlatformSpec
from repro.simulation.metrics import SimulationResult
from repro.utils.rng import derive_spawned_seed
from repro.workloads.scenarios import ScenarioConfig


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of sweep work: a scenario, one algorithm, one seed."""

    parameter: str
    value: float | int | str
    replicate: int
    algorithm: str
    config: ScenarioConfig
    engine: str = "event"
    dispatcher_config: DispatcherConfig = field(default_factory=DispatcherConfig)
    #: force the sharded wrapper even at num_shards=1 (the exactness wrapper);
    #: carried separately because DispatcherConfig has no such flag.
    sharded: bool = False
    collect_completions: bool = True


def run_sweep_task(task: SweepTask) -> SimulationResult:
    """Execute one sweep task (module level so process pools can pickle it).

    Each worker process keeps one :class:`ScenarioRunner` per (engine,
    dispatcher config), so network and oracle construction is memoized per
    city *across* the tasks the process executes. The memoized oracle's LRU
    caches are cleared before the run: a task's reported cache hit rates must
    not depend on which tasks happened to share its process earlier.
    """
    runner = _process_runner(task)
    runner.oracle_for(task.config).clear_caches()
    return runner.compare(task.config, [task.algorithm])[0]


_PROCESS_RUNNERS: dict[tuple, ScenarioRunner] = {}


def _process_runner(task: SweepTask) -> ScenarioRunner:
    key = (
        task.engine,
        astuple(task.dispatcher_config),
        task.sharded,
        task.collect_completions,
    )
    runner = _PROCESS_RUNNERS.get(key)
    if runner is None:
        runner = ScenarioRunner(
            platform=PlatformSpec(
                dispatcher=DispatcherSpec.from_config(
                    task.dispatcher_config, sharded=task.sharded
                ),
                engine=task.engine,
                collect_completions=task.collect_completions,
            )
        )
        _PROCESS_RUNNERS[key] = runner
    return runner


def metric_fingerprint(result: SimulationResult) -> dict[str, float | int | str]:
    """The deterministic subset of a result (excludes wall-clock timings)."""
    return {
        "algorithm": result.algorithm,
        "instance": result.instance_name,
        "total_requests": result.total_requests,
        "served": result.served_requests,
        "rejected": result.rejected_requests,
        "cancelled": result.cancelled_requests,
        "unified_cost": round(result.unified_cost, 9),
        "total_travel_cost": round(result.total_travel_cost, 9),
        "total_penalty": round(result.total_penalty, 9),
        "distance_queries": result.distance_queries,
        "lower_bound_queries": result.lower_bound_queries,
        "candidates_considered": result.candidates_considered,
        "insertions_evaluated": result.insertions_evaluated,
    }


class ParallelSweepRunner:
    """Fans independent sweep tasks out over a process pool.

    Args:
        dispatcher_config: knobs shared by every dispatcher.
        engine: simulation engine to drive.
        jobs: worker processes; 1 runs everything inline, ``None`` uses the
            machine's CPU count.
        platform: alternative to (dispatcher_config, engine): take both from
            a :class:`~repro.service.spec.PlatformSpec`.
    """

    def __init__(
        self,
        dispatcher_config: DispatcherConfig | None = None,
        engine: str = "event",
        jobs: int | None = None,
        *,
        platform: PlatformSpec | None = None,
    ) -> None:
        self.sharded = False
        self.collect_completions = True
        if platform is not None:
            dispatcher_config = platform.dispatcher_config()
            engine = platform.engine
            self.sharded = platform.dispatcher.sharded
            self.collect_completions = platform.collect_completions
        self.dispatcher_config = dispatcher_config or DispatcherConfig()
        self.engine = engine
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)

    # --------------------------------------------------------------- planning

    def plan(
        self,
        parameter: str,
        values: Iterable[float | int | str],
        base_config: ScenarioConfig,
        algorithms: Sequence[str],
        replicates: int = 1,
    ) -> list[SweepTask]:
        """Expand the sweep grid into tasks with derived per-point seeds.

        Every (value, replicate) point gets its own workload seed via
        SeedSequence spawn keys; ``city_seed`` is pinned to the base seed so
        all points of one city share a single network build. Algorithms at
        the same point share the point's seed (they compare on the same
        instance, like :meth:`ScenarioRunner.compare`). Sweeping ``seed`` or
        ``city_seed`` itself suspends the derivation — the swept value *is*
        the randomness knob, so it must reach the scenario untouched (and
        replicates, which would all repeat the same run, are rejected).
        """
        sweeps_randomness = parameter in ("seed", "city_seed")
        if sweeps_randomness and replicates > 1:
            raise ValueError(
                f"sweeping {parameter!r} already varies the randomness; "
                "replicates > 1 would repeat identical runs"
            )
        tasks: list[SweepTask] = []
        for value in values:
            swept = base_config.with_overrides(**{parameter: value})
            for replicate in range(replicates):
                if sweeps_randomness:
                    point_config = swept
                else:
                    point_config = swept.with_overrides(
                        seed=derive_spawned_seed(
                            base_config.seed, "sweep", parameter, str(value), replicate
                        ),
                        city_seed=base_config.effective_city_seed,
                    )
                for algorithm in algorithms:
                    tasks.append(
                        SweepTask(
                            parameter=parameter,
                            value=value,
                            replicate=replicate,
                            algorithm=algorithm,
                            config=point_config,
                            engine=self.engine,
                            dispatcher_config=self.dispatcher_config,
                            sharded=self.sharded,
                            collect_completions=self.collect_completions,
                        )
                    )
        return tasks

    # ---------------------------------------------------------------- running

    def run(self, tasks: Sequence[SweepTask]) -> list[SimulationResult]:
        """Run ``tasks`` and return their results in task order."""
        if self.jobs <= 1 or len(tasks) <= 1:
            return [run_sweep_task(task) for task in tasks]
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(tasks))) as executor:
            return list(executor.map(run_sweep_task, tasks))

    def sweep(
        self,
        parameter: str,
        values: Iterable[float | int | str],
        base_config: ScenarioConfig,
        algorithms: Sequence[str],
        replicates: int = 1,
    ) -> list[SweepPoint]:
        """Plan, run, and group the results into reporting-ready sweep points."""
        tasks = self.plan(parameter, values, base_config, algorithms, replicates)
        results = self.run(tasks)
        points: list[SweepPoint] = []
        by_key: dict[tuple, SweepPoint] = {}
        for task, result in zip(tasks, results):
            key = (task.value, task.replicate)
            point = by_key.get(key)
            if point is None:
                point = SweepPoint(
                    parameter=parameter,
                    value=task.value,
                    city=task.config.city,
                    replicate=task.replicate,
                )
                by_key[key] = point
                points.append(point)
            point.results.append(result)
        return points
