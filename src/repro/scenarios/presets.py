"""Named scenario presets.

A small library of ready-made :class:`~repro.scenarios.program.ScenarioProgram`
values covering the structured situations the paper's experiments gesture at
but a scalar config cannot express: mixed-capacity fleets, demand shocks,
street closures and concurrent multi-class workloads. Presets are looked up
by name with did-you-mean suggestions, mirroring the dispatcher registry.
"""

from __future__ import annotations

import difflib

from repro.exceptions import ConfigurationError
from repro.scenarios.program import (
    DemandSurge,
    FleetClass,
    NetworkDisruption,
    ScenarioProgram,
    WorkloadClass,
)

SCENARIO_PRESETS: dict[str, ScenarioProgram] = {
    "baseline": ScenarioProgram(
        name="baseline",
        description="Empty program: exactly the base config, bit-for-bit.",
    ),
    "mixed-fleet": ScenarioProgram(
        name="mixed-fleet",
        description=(
            "Heterogeneous fleet: two-seat sedans, four-seat taxis on "
            "staggered shifts, and a few six-seat vans."
        ),
        fleet=(
            FleetClass(name="sedan", count=40, capacity=2, hotspot_share=0.6),
            FleetClass(name="taxi", count=50, capacity=4, shift_hours=2.0),
            FleetClass(name="van", count=10, capacity=6, hotspot_share=0.3),
        ),
    ),
    "concert-surge": ScenarioProgram(
        name="concert-surge",
        description=(
            "A concert lets out mid-horizon: a tight burst of trips from one "
            "venue with short deadlines."
        ),
        surges=(
            DemandSurge(
                name="concert",
                start_hours=2.0,
                duration_minutes=20.0,
                count=120,
                deadline_minutes=12.0,
                spread_fraction=0.02,
            ),
        ),
    ),
    "airport-bank": ScenarioProgram(
        name="airport-bank",
        description=(
            "Two arrival banks an hour apart: moderate bursts from one "
            "airport-like origin cluster, wider deadlines, larger parties."
        ),
        surges=(
            DemandSurge(
                name="bank-1",
                start_hours=1.0,
                duration_minutes=30.0,
                count=60,
                deadline_minutes=20.0,
                capacity=2,
                spread_fraction=0.02,
            ),
            DemandSurge(
                name="bank-2",
                start_hours=2.0,
                duration_minutes=30.0,
                count=60,
                deadline_minutes=20.0,
                capacity=2,
                spread_fraction=0.02,
            ),
        ),
    ),
    "street-closures": ScenarioProgram(
        name="street-closures",
        description=(
            "Rolling roadworks: three streets close early and reopen after "
            "an hour; two more close permanently mid-horizon."
        ),
        disruptions=(
            NetworkDisruption(
                name="roadworks", start_hours=0.5, duration_minutes=60.0, edge_count=3
            ),
            NetworkDisruption(name="collapse", start_hours=2.0, edge_count=2),
        ),
    ),
    "multi-class": ScenarioProgram(
        name="multi-class",
        description=(
            "Unified platform workload: ridesharing, food delivery (tight "
            "deadlines, unit capacity) and parcels (loose deadlines) served "
            "concurrently by one fleet."
        ),
        workload=(
            WorkloadClass(name="ridesharing", count=800),
            WorkloadClass(
                name="food", count=400, deadline_minutes=8.0, capacity=1, penalty_factor=14.0
            ),
            WorkloadClass(
                name="parcel", count=300, deadline_minutes=30.0, capacity=1, penalty_factor=6.0
            ),
        ),
    ),
    "rush-hour-chaos": ScenarioProgram(
        name="rush-hour-chaos",
        description=(
            "Kitchen sink: mixed fleet, multi-class workload, a surge and a "
            "temporary closure in the same run."
        ),
        fleet=(
            FleetClass(name="taxi", count=60, capacity=4, shift_hours=2.5),
            FleetClass(name="van", count=15, capacity=6),
            FleetClass(name="courier", count=25, capacity=1, hotspot_share=0.7),
        ),
        workload=(
            WorkloadClass(name="ridesharing", count=700),
            WorkloadClass(name="food", count=350, deadline_minutes=9.0, capacity=1),
        ),
        surges=(
            DemandSurge(
                name="stadium",
                start_hours=1.5,
                duration_minutes=25.0,
                count=100,
                deadline_minutes=12.0,
            ),
        ),
        disruptions=(
            NetworkDisruption(
                name="parade", start_hours=1.0, duration_minutes=90.0, edge_count=2
            ),
        ),
    ),
}
"""Preset registry; every value passes :meth:`ScenarioProgram.validate`."""


def list_presets() -> list[str]:
    """Sorted names of the available scenario presets."""
    return sorted(SCENARIO_PRESETS)


def suggest_presets(name: str, limit: int = 3) -> list[str]:
    """Close-match preset names for a typo'd ``name`` (may be empty)."""
    return difflib.get_close_matches(name, list_presets(), n=limit, cutoff=0.4)


def get_preset(name: str) -> ScenarioProgram:
    """Look up a preset by name, suggesting close matches on a miss."""
    try:
        return SCENARIO_PRESETS[name]
    except KeyError:
        suggestions = suggest_presets(name)
        hint = f"; did you mean {', '.join(suggestions)}?" if suggestions else ""
        raise ConfigurationError(
            f"unknown scenario preset {name!r}{hint} "
            f"(available: {', '.join(list_presets())})"
        ) from None


__all__ = ["SCENARIO_PRESETS", "get_preset", "list_presets", "suggest_presets"]
