"""Declarative scenario programs: heterogeneous fleets, demand shocks,
network disruption and multi-class workloads on top of :class:`PlatformSpec`.

A :class:`ScenarioProgram` is a plain value (serialisable to JSON/TOML, a
preset registry included) describing *structured, time-varying* inputs that
the scalar :class:`~repro.workloads.scenarios.ScenarioConfig` knobs cannot
express. :func:`compile_program` lowers a program onto a base config into a
ready-to-serve :class:`~repro.core.instance.URPSMInstance` plus a timeline of
scheduled road-network mutations; :func:`run_program` drives the compiled
scenario through the :class:`~repro.service.facade.MatchingService`
incremental protocol, so the serving code path runs scenario programs
unchanged. :mod:`repro.scenarios.stress` turns the same machinery into a
seeded fuzzer sweeping random programs against every registry dispatcher.
"""

from repro.scenarios.compile import CompiledScenario, EdgeSpec, NetworkAction, compile_program
from repro.scenarios.presets import (
    SCENARIO_PRESETS,
    get_preset,
    list_presets,
    suggest_presets,
)
from repro.scenarios.program import (
    DemandSurge,
    FleetClass,
    NetworkDisruption,
    ScenarioProgram,
    WorkloadClass,
)
from repro.scenarios.runner import ScenarioRunResult, run_program
from repro.scenarios.stress import (
    StressReport,
    default_stress_dispatchers,
    generate_stress_scenario,
    run_stress,
)

__all__ = [
    "CompiledScenario",
    "DemandSurge",
    "EdgeSpec",
    "FleetClass",
    "NetworkAction",
    "NetworkDisruption",
    "SCENARIO_PRESETS",
    "ScenarioProgram",
    "ScenarioRunResult",
    "StressReport",
    "WorkloadClass",
    "compile_program",
    "default_stress_dispatchers",
    "generate_stress_scenario",
    "get_preset",
    "list_presets",
    "run_program",
    "run_stress",
    "suggest_presets",
]
