"""The declarative scenario-program value types.

A :class:`ScenarioProgram` layers four structured, time-varying components on
top of a scalar :class:`~repro.workloads.scenarios.ScenarioConfig`:

* **fleet classes** — heterogeneous worker classes (2-seat cars, couriers,
  high-capacity vans) sharing one city, each with its own count, capacity
  and shift profile. A non-empty ``fleet`` *replaces* the config's scalar
  fleet (``num_workers`` / ``worker_capacity``).
* **workload classes** — concurrent request classes (ridesharing + food +
  parcel) with per-class deadlines, capacities and penalty factors. A
  non-empty ``workload`` replaces the config's scalar request stream.
* **demand surges** — spatially concentrated request bursts at scheduled
  times (a concert lets out, an airport arrival bank), *added* to the
  base/workload stream.
* **network disruptions** — scheduled street closures (and reopenings)
  applied as live :class:`~repro.network.graph.RoadNetwork` mutations
  mid-run.

Programs are frozen dataclasses with ``from_dict``/``to_dict`` and JSON/TOML
file loading, mirroring :class:`~repro.service.spec.PlatformSpec`; unknown
mapping keys fail with close-match suggestions.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

from repro.dispatch.registry import unknown_fields_error
from repro.exceptions import ConfigurationError


def _component_from_dict(cls, kind: str, data: dict):
    known = {component_field.name for component_field in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise unknown_fields_error(kind, unknown, known)
    return cls(**data)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class FleetClass:
    """One heterogeneous worker class (e.g. ``sedan``, ``courier``, ``van``).

    Attributes:
        name: class label (unique within a program).
        count: number of workers of this class.
        capacity: fixed capacity ``K_w`` of every worker in the class (unlike
            the scalar fleet's Gaussian draw, a class *is* its capacity).
        shift_hours: staggered duty-window length for this class in hours
            (0 = the whole horizon).
        hotspot_share: fraction of the class initially placed near demand
            hotspots.
    """

    name: str
    count: int
    capacity: int = 4
    shift_hours: float = 0.0
    hotspot_share: float = 0.5

    def validate(self) -> "FleetClass":
        _require(bool(self.name), "fleet class name must be non-empty")
        _require(self.count >= 0, f"fleet class {self.name!r}: count must be >= 0, got {self.count}")
        _require(
            self.capacity >= 1,
            f"fleet class {self.name!r}: capacity must be >= 1, got {self.capacity}",
        )
        _require(
            self.shift_hours >= 0.0,
            f"fleet class {self.name!r}: shift_hours must be >= 0, got {self.shift_hours}",
        )
        _require(
            0.0 <= self.hotspot_share <= 1.0,
            f"fleet class {self.name!r}: hotspot_share must be within [0, 1], "
            f"got {self.hotspot_share}",
        )
        return self


@dataclass(frozen=True)
class WorkloadClass:
    """One concurrent request class (e.g. ``ridesharing``, ``food``, ``parcel``).

    Attributes:
        name: class label (unique within a program).
        count: number of requests of this class over the horizon.
        deadline_minutes: service window; ``None`` inherits the base config.
        penalty_factor: rejection-penalty factor; ``None`` inherits.
        capacity: fixed ``K_r`` per request (1 for food/parcel); ``None``
            draws from the NYC passenger-count distribution like the base
            stream.
    """

    name: str
    count: int
    deadline_minutes: float | None = None
    penalty_factor: float | None = None
    capacity: int | None = None

    def validate(self) -> "WorkloadClass":
        _require(bool(self.name), "workload class name must be non-empty")
        _require(
            self.count >= 0, f"workload class {self.name!r}: count must be >= 0, got {self.count}"
        )
        if self.deadline_minutes is not None:
            _require(
                self.deadline_minutes > 0,
                f"workload class {self.name!r}: deadline_minutes must be positive, "
                f"got {self.deadline_minutes}",
            )
        if self.penalty_factor is not None:
            _require(
                self.penalty_factor >= 0,
                f"workload class {self.name!r}: penalty_factor must be >= 0, "
                f"got {self.penalty_factor}",
            )
        if self.capacity is not None:
            _require(
                self.capacity >= 1,
                f"workload class {self.name!r}: capacity must be >= 1, got {self.capacity}",
            )
        return self


@dataclass(frozen=True)
class DemandSurge:
    """A spatially concentrated request burst at a scheduled time.

    Origins cluster tightly around one seeded surge centre (the venue);
    destinations disperse city-wide — the "concert lets out" shape.

    Attributes:
        name: surge label (unique within a program); surge requests are
            tracked under the class label ``surge:<name>``.
        start_hours: burst window start, hours from t=0.
        duration_minutes: burst window length.
        count: requests injected inside the window.
        deadline_minutes: per-request service window; ``None`` inherits.
        capacity: fixed ``K_r``; ``None`` draws from the NYC distribution.
        spread_fraction: origin spread around the surge centre as a fraction
            of the city's bounding-box diagonal (small = concentrated).
    """

    name: str
    start_hours: float
    duration_minutes: float
    count: int
    deadline_minutes: float | None = None
    capacity: int | None = None
    spread_fraction: float = 0.03

    def validate(self) -> "DemandSurge":
        _require(bool(self.name), "surge name must be non-empty")
        _require(
            self.start_hours >= 0,
            f"surge {self.name!r}: start_hours must be >= 0, got {self.start_hours}",
        )
        _require(
            self.duration_minutes > 0,
            f"surge {self.name!r}: duration_minutes must be positive, "
            f"got {self.duration_minutes}",
        )
        _require(self.count >= 0, f"surge {self.name!r}: count must be >= 0, got {self.count}")
        if self.deadline_minutes is not None:
            _require(
                self.deadline_minutes > 0,
                f"surge {self.name!r}: deadline_minutes must be positive, "
                f"got {self.deadline_minutes}",
            )
        if self.capacity is not None:
            _require(
                self.capacity >= 1,
                f"surge {self.name!r}: capacity must be >= 1, got {self.capacity}",
            )
        _require(
            0.0 < self.spread_fraction <= 1.0,
            f"surge {self.name!r}: spread_fraction must be within (0, 1], "
            f"got {self.spread_fraction}",
        )
        return self


@dataclass(frozen=True)
class NetworkDisruption:
    """A scheduled street closure (with optional reopening).

    Concrete edges are resolved at compile time around a seeded focus
    vertex, skipping candidates whose removal would disconnect the network,
    so runtime application never strands a committed trip.

    Attributes:
        name: disruption label (unique within a program).
        start_hours: closure time, hours from t=0.
        duration_minutes: minutes until the streets reopen; ``None`` keeps
            them closed for the rest of the run.
        edge_count: number of streets closed together.
    """

    name: str
    start_hours: float
    duration_minutes: float | None = None
    edge_count: int = 1

    def validate(self) -> "NetworkDisruption":
        _require(bool(self.name), "disruption name must be non-empty")
        _require(
            self.start_hours >= 0,
            f"disruption {self.name!r}: start_hours must be >= 0, got {self.start_hours}",
        )
        if self.duration_minutes is not None:
            _require(
                self.duration_minutes > 0,
                f"disruption {self.name!r}: duration_minutes must be positive, "
                f"got {self.duration_minutes}",
            )
        _require(
            self.edge_count >= 1,
            f"disruption {self.name!r}: edge_count must be >= 1, got {self.edge_count}",
        )
        return self


@dataclass(frozen=True)
class ScenarioProgram:
    """A declarative scenario: fleet + workload + surges + disruptions.

    The empty program (all components empty) compiles to exactly the base
    config's instance, so plain runs are the degenerate case — and stay
    bit-for-bit reproducible through the scenario layer.
    """

    name: str = "custom"
    description: str = ""
    fleet: tuple[FleetClass, ...] = ()
    workload: tuple[WorkloadClass, ...] = ()
    surges: tuple[DemandSurge, ...] = ()
    disruptions: tuple[NetworkDisruption, ...] = ()

    # -------------------------------------------------------------- accessors

    @property
    def is_empty(self) -> bool:
        """Whether the program adds nothing on top of the base config."""
        return not (self.fleet or self.workload or self.surges or self.disruptions)

    def without_disruptions(self) -> "ScenarioProgram":
        """This program with the network disruptions stripped.

        Cluster serving cannot absorb live network mutations (worker
        processes hold replica networks); the stress harness uses this to
        keep cluster combinations in the sweep.
        """
        return replace(self, disruptions=())

    # -------------------------------------------------------------- validation

    def validate(self) -> "ScenarioProgram":
        """Check every component; returns ``self`` so calls can be chained."""
        _require(bool(self.name), "program name must be non-empty")
        for kind, components in (
            ("fleet class", self.fleet),
            ("workload class", self.workload),
            ("surge", self.surges),
            ("disruption", self.disruptions),
        ):
            seen: set[str] = set()
            for component in components:
                component.validate()
                if component.name in seen:
                    raise ConfigurationError(
                        f"duplicate {kind} name {component.name!r} in program {self.name!r}"
                    )
                seen.add(component.name)
        if self.fleet and all(component.count == 0 for component in self.fleet):
            raise ConfigurationError(
                f"program {self.name!r}: fleet classes define zero workers in total"
            )
        return self

    # ------------------------------------------------------------ serialisation

    def to_dict(self) -> dict:
        """Plain-data representation (exact inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioProgram":
        """Build a validated program from a plain mapping (JSON/TOML payloads)."""
        known = {program_field.name for program_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise unknown_fields_error("scenario program", unknown, known)
        component_types = {
            "fleet": (FleetClass, "fleet class"),
            "workload": (WorkloadClass, "workload class"),
            "surges": (DemandSurge, "surge"),
            "disruptions": (NetworkDisruption, "disruption"),
        }
        kwargs: dict = {}
        for key, value in data.items():
            if key in component_types:
                component_cls, kind = component_types[key]
                if not isinstance(value, (list, tuple)):
                    raise ConfigurationError(f"{key!r} must be a list of {kind} mappings")
                kwargs[key] = tuple(
                    _component_from_dict(component_cls, kind, item) for item in value
                )
            else:
                kwargs[key] = value
        return cls(**kwargs).validate()

    @classmethod
    def from_file(cls, path: str | Path) -> "ScenarioProgram":
        """Load a program from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".json":
            data = json.loads(path.read_text(encoding="utf-8"))
        elif suffix == ".toml":
            import tomllib

            data = tomllib.loads(path.read_text(encoding="utf-8"))
        else:
            raise ConfigurationError(
                f"unsupported scenario program format {suffix!r} ({path}); "
                "use .json or .toml"
            )
        if not isinstance(data, dict):
            raise ConfigurationError(f"scenario program file {path} must contain a mapping")
        return cls.from_dict(data)

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Serialise to JSON; also writes ``path`` when given."""
        payload = json.dumps(self.to_dict(), indent=indent) + "\n"
        if path is not None:
            Path(path).write_text(payload, encoding="utf-8")
        return payload


__all__ = [
    "DemandSurge",
    "FleetClass",
    "NetworkDisruption",
    "ScenarioProgram",
    "WorkloadClass",
]
